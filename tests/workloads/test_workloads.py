"""Tests for workload generation: determinism, parameter validation, and
structural properties of the generated streams."""

import pytest

from repro.errors import WorkloadError
from repro.core.relation import RelationType
from repro.core.sentences import run
from repro.historical.state import HistoricalState
from repro.snapshot.state import SnapshotState
from repro.storage import DeltaBackend, FullCopyBackend, backends_agree
from repro.workloads import (
    StateGenerator,
    UpdateStream,
    churn_stream,
    command_history,
    default_schema,
    populate_backends,
    random_historical_state,
    random_operation_stream,
    random_snapshot_state,
)


class TestGenerators:
    def test_default_schema(self):
        schema = default_schema(3)
        assert schema.names == ("key", "a1", "a2")

    def test_default_schema_validation(self):
        with pytest.raises(WorkloadError):
            default_schema(0)

    def test_deterministic_by_seed(self):
        a = random_snapshot_state(20, seed=7)
        b = random_snapshot_state(20, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_snapshot_state(20, seed=7)
        b = random_snapshot_state(20, seed=8)
        assert a != b

    def test_historical_states_valid(self):
        state = random_historical_state(15, seed=3)
        assert isinstance(state, HistoricalState)
        assert all(not t.valid_time.is_empty() for t in state.tuples)

    def test_rows_match_schema_domains(self):
        gen = StateGenerator(seed=1)
        state = gen.snapshot_state(10)
        for t in state.tuples:
            assert isinstance(t["key"], int)
            assert isinstance(t["a1"], str)


class TestUpdateStream:
    def test_length(self):
        states = churn_stream(12, cardinality=10, churn=0.2, seed=0)
        assert len(states) == 12

    def test_replayable(self):
        s1 = churn_stream(10, cardinality=10, churn=0.3, seed=4)
        s2 = churn_stream(10, cardinality=10, churn=0.3, seed=4)
        assert s1 == s2

    def test_zero_churn_is_constant(self):
        # churn 0 still forces one change per step (max(1, ...)), so use
        # the states to check cardinality stability instead
        states = churn_stream(10, cardinality=50, churn=0.0, seed=2)
        sizes = [len(s) for s in states]
        assert max(sizes) - min(sizes) <= 10

    def test_consecutive_states_differ_by_churn(self):
        states = churn_stream(10, cardinality=100, churn=0.2, seed=5)
        for previous, current in zip(states, states[1:]):
            changed = len(previous.tuples ^ current.tuples)
            # ~20 tuples churned => at most ~40 atoms differ (plus noise
            # from random collisions)
            assert changed <= 50

    def test_historical_mode(self):
        states = churn_stream(
            5, cardinality=8, churn=0.3, seed=1, historical=True
        )
        assert all(isinstance(s, HistoricalState) for s in states)

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            UpdateStream(0)
        with pytest.raises(WorkloadError):
            UpdateStream(5, churn=1.5)
        with pytest.raises(WorkloadError):
            UpdateStream(5, cardinality=0)

    def test_growth(self):
        states = list(
            UpdateStream(
                10, cardinality=10, churn=0.1, growth=5, seed=0
            ).states()
        )
        assert len(states[-1]) > len(states[0])


class TestHistories:
    def test_command_history_builds_database(self):
        stream = UpdateStream(8, cardinality=10, churn=0.2, seed=3)
        commands = command_history(stream, "r")
        db = run(commands)
        assert db.transaction_number == 9
        assert db.require("r").rtype is RelationType.ROLLBACK
        assert db.require("r").history_length == 8

    def test_command_history_temporal_for_historical_streams(self):
        stream = UpdateStream(
            4, cardinality=6, churn=0.2, seed=3, historical=True
        )
        commands = command_history(stream, "t")
        db = run(commands)
        assert db.require("t").rtype is RelationType.TEMPORAL

    def test_populate_backends_aligns(self):
        states = churn_stream(10, cardinality=10, churn=0.3, seed=9)
        backends = [FullCopyBackend(), DeltaBackend()]
        databases = populate_backends(backends, states)
        assert all(
            d.transaction_number == len(states) + 1 for d in databases
        )
        assert backends_agree(
            backends, [("r", t) for t in range(0, 13)]
        )

    def test_operation_stream_deterministic(self):
        a = random_operation_stream(30, seed=6)
        b = random_operation_stream(30, seed=6)
        assert [repr(x) for x in a] == [repr(y) for y in b]

    def test_operation_stream_length(self):
        assert len(random_operation_stream(25, seed=0)) == 25
