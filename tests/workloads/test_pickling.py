"""Picklability and seed reconstruction of the workload machinery.

The multi-process load driver ships generator/workload configs to
spawned worker processes, so these objects must (a) survive pickle,
(b) *continue* their random sequence after unpickling, and (c) rebuild
identically from plain-data configs — one integer reproduces any run."""

from __future__ import annotations

import pickle

from repro.workloads.generators import StateGenerator, default_schema
from repro.workloads.sentences import EXECUTE, QUERY, SentenceWorkload


class TestStateGeneratorPickling:
    def test_config_round_trip_is_initial_state(self, test_seed):
        generator = StateGenerator(
            default_schema(3), seed=test_seed % 2**31, key_space=40
        )
        config = generator.config()
        assert config["seed"] == generator.seed
        rebuilt = StateGenerator.from_config(config)
        for _ in range(3):
            assert (
                generator.snapshot_state(5).tuples
                == rebuilt.snapshot_state(5).tuples
            )

    def test_pickle_continues_the_sequence(self, test_seed):
        """An unpickled generator resumes mid-stream, not from seed 0."""
        seed = test_seed % 2**31
        original = StateGenerator(default_schema(2), seed=seed)
        twin = StateGenerator(default_schema(2), seed=seed)
        for _ in range(4):  # advance both identically
            original.snapshot_state(3)
            twin.snapshot_state(3)
        resumed = pickle.loads(pickle.dumps(original))
        for _ in range(3):
            assert (
                resumed.snapshot_state(4).tuples
                == twin.snapshot_state(4).tuples
            )

    def test_spawn_derives_independent_reproducible_seeds(self, test_seed):
        seed = test_seed % 2**31
        parent = StateGenerator(default_schema(2), seed=seed)
        children = [parent.spawn(i) for i in range(8)]
        assert len({c.seed for c in children}) == 8
        assert all(c.seed != parent.seed for c in children)
        # reproducible: the same spawn index always yields the same seed
        assert parent.spawn(3).seed == StateGenerator(
            default_schema(2), seed=seed
        ).spawn(3).seed
        # and the child streams are deterministic
        assert (
            parent.spawn(3).snapshot_state(4).tuples
            == parent.spawn(3).snapshot_state(4).tuples
        )


class TestSentenceWorkloadPickling:
    def test_schedule_is_deterministic(self, test_seed):
        seed = test_seed % 2**31
        a = SentenceWorkload(seed=seed, namespace="w", length=20)
        b = SentenceWorkload(seed=seed, namespace="w", length=20)
        assert a.items() == b.items()
        assert len(a) == len(a.items())
        assert list(iter(a)) == a.items()

    def test_pickle_ships_the_recipe_not_the_schedule(self, test_seed):
        workload = SentenceWorkload(
            seed=test_seed % 2**31, namespace="w", length=15
        )
        schedule = workload.items()  # populate the memo
        payload = pickle.dumps(workload)
        # the pickle must stay recipe-sized: parameters only, no
        # rendered sentence texts
        assert len(payload) < 500
        clone = pickle.loads(payload)
        assert clone.items() == schedule

    def test_defines_precede_reads_and_writes(self, test_seed):
        workload = SentenceWorkload(
            seed=test_seed % 2**31,
            namespace="n",
            relations=3,
            length=10,
        )
        items = workload.items()
        # prelude: one define + one seed write per relation
        for index in range(3):
            kind, source = items[2 * index]
            assert kind == EXECUTE and "define_relation" in source
            kind, source = items[2 * index + 1]
            assert kind == EXECUTE and source.startswith("modify_state")
        assert len(items) == 3 * 2 + 10

    def test_read_fraction_extremes(self, test_seed):
        seed = test_seed % 2**31
        reads = SentenceWorkload(seed=seed, read_fraction=1.0, length=10)
        body = reads.items()[2:]
        assert all(kind == QUERY for kind, _ in body)
        writes = SentenceWorkload(seed=seed, read_fraction=0.0, length=10)
        body = writes.items()[2:]
        assert all(kind == EXECUTE for kind, _ in body)

    def test_namespacing_prefixes_every_relation(self, test_seed):
        workload = SentenceWorkload(
            seed=test_seed % 2**31, namespace="p3c7", relations=2
        )
        for _, source in workload.items():
            assert "p3c7_r" in source
