"""The metrics registry: instruments, switch, export."""

from __future__ import annotations

import json

import pytest

from repro.obsv import registry as obsv_registry
from repro.obsv.registry import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert registry.counter("a.b").value == 5

    def test_counter_identity_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7.5)
        assert registry.gauge("g").value == 7.5

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["median"] == 3.0

    def test_empty_histogram_summary(self):
        assert Histogram().summary() == {"count": 0, "sum": 0.0}

    def test_histogram_reservoir_is_bounded(self):
        histogram = Histogram()
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._recent) == Histogram.RESERVOIR_SIZE

    def test_timer_observes_monotonic_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        histogram = registry.histogram("t")
        assert histogram.count == 1
        assert histogram.total >= 0.0


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"] == {"c": 2}
        assert parsed["gauges"] == {"g": 1.5}
        assert parsed["histograms"]["h"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 0}
        assert snapshot["histograms"]["h"] == {"count": 0, "sum": 0.0}
        # identity survives: cached references keep recording
        assert registry.counter("c") is counter
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1

    def test_names_lists_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h")
        assert sorted(registry.names()) == ["c", "g", "h"]


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obsv_registry.enabled()
        assert isinstance(obsv_registry.get(), NullRegistry)

    def test_null_registry_absorbs_everything(self):
        null = NullRegistry()
        null.counter("c").inc(5)
        null.gauge("g").set(2)
        null.histogram("h").observe(1.0)
        with null.timer("t"):
            pass
        assert null.counter("c").value == 0
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_enable_disable_cycle(self):
        registry = obsv_registry.enable()
        try:
            assert obsv_registry.enabled()
            assert obsv_registry.get() is registry
            registry.counter("c").inc()
            assert registry.counter("c").value == 1
        finally:
            obsv_registry.disable()
        assert not obsv_registry.enabled()
        assert isinstance(obsv_registry.get(), NullRegistry)

    def test_enable_installs_expression_observer(self):
        from repro.core import expressions

        assert expressions._OBSERVER is None
        obsv_registry.enable()
        try:
            assert expressions._OBSERVER is not None
        finally:
            obsv_registry.disable()
        assert expressions._OBSERVER is None

    def test_enable_with_explicit_registry(self):
        mine = MetricsRegistry()
        try:
            assert obsv_registry.enable(mine) is mine
            assert obsv_registry.get() is mine
        finally:
            obsv_registry.disable()

    def test_enable_is_idempotent(self):
        first = obsv_registry.enable()
        try:
            first.counter("kept").inc()
            second = obsv_registry.enable()
            assert second is first
            assert second.counter("kept").value == 1
        finally:
            obsv_registry.disable()


@pytest.mark.parametrize("kind", ["counter", "gauge", "histogram"])
def test_snapshot_is_sorted_by_name(kind):
    registry = MetricsRegistry()
    instrument = getattr(registry, kind)
    instrument("z.last")
    instrument("a.first")
    section = {
        "counter": "counters",
        "gauge": "gauges",
        "histogram": "histograms",
    }[kind]
    assert list(registry.snapshot()[section]) == ["a.first", "z.last"]
