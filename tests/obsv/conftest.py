"""Fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obsv import registry as obsv_registry
from repro.obsv.registry import MetricsRegistry


@pytest.fixture
def metrics():
    """A freshly enabled registry, guaranteed to be disabled afterwards
    so no other test runs with ambient instrumentation."""
    registry = obsv_registry.enable(MetricsRegistry())
    try:
        yield registry
    finally:
        obsv_registry.disable()
