"""Cross-layer metric emission: expressions, storage, concurrency, lang.

Each test drives a real workload with metrics enabled (the ``metrics``
fixture) and asserts on the recorded instrument values — i.e. these are
integration tests of every instrumented hot path.
"""

from __future__ import annotations

import pytest

from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Difference,
    Rollback,
    Select,
    Union,
    evaluate_memoized,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.concurrency.manager import TransactionManager
from repro.lang.session import Session
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    VersionedDatabase,
)

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def _state(rows):
    return SnapshotState(KV, [list(r) for r in rows])


def _database():
    return run(
        [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(_state([(1, 1), (2, 2)]))),
        ]
    )


class TestExpressionMetrics:
    def test_nodes_evaluated_counts_every_node(self, metrics):
        database = _database()
        metrics.reset()  # drop counts from building the fixture database
        expression = Union(
            Rollback("r", NOW), Const(_state([(9, 9)]))
        )  # 3 nodes
        expression.evaluate(database)
        counters = metrics.snapshot()["counters"]
        assert counters["expr.nodes_evaluated"] == 3
        assert counters["expr.rollback_evaluations"] == 1

    def test_rollback_fanout(self, metrics):
        database = _database()
        metrics.reset()
        source = Rollback("r", NOW)
        # E − σ(E): the plain evaluator touches ρ twice
        Difference(
            source, Select(source, Comparison(attr("k"), "=", lit(1)))
        ).evaluate(database)
        assert (
            metrics.snapshot()["counters"]["expr.rollback_evaluations"] == 2
        )

    def test_memoization_hit_rate(self, metrics):
        database = _database()
        source = Rollback("r", NOW)
        expression = Difference(
            source, Select(source, Comparison(attr("k"), "=", lit(1)))
        )
        metrics.reset()
        result = evaluate_memoized(expression, database)
        counters = metrics.snapshot()["counters"]
        # the second ρ occurrence is served from the memo cache
        assert counters["expr.memo_hits"] == 1
        # Difference, first ρ, Select — each computed once
        assert counters["expr.memo_misses"] == 3
        assert result == expression.evaluate(database)

    def test_disabled_emits_nothing(self):
        from repro.obsv import registry as obsv_registry

        database = _database()
        Rollback("r", NOW).evaluate(database)
        assert obsv_registry.get().snapshot()["counters"] == {}


class TestStorageMetrics:
    def test_replay_length_histogram(self, metrics):
        # fast paths off: this test measures the raw replay instrumentation
        vdb = VersionedDatabase(
            DeltaBackend(hot_reads=False, cache_capacity=0)
        )
        vdb.execute(DefineRelation("r", "rollback"))
        for i in range(6):
            vdb.set_state("r", _state([(j, j) for j in range(i + 1)]))
        # probe the oldest version: replays 0 deltas; newest: 5
        vdb.state_at("r", 2)
        vdb.state_at("r", 7)
        histogram = metrics.snapshot()["histograms"][
            "storage.forward-delta.replay_length"
        ]
        assert histogram["count"] == 2
        assert histogram["min"] == 0
        assert histogram["max"] == 5

    def test_hot_reads_and_cache_counters(self, metrics):
        vdb = VersionedDatabase(DeltaBackend())
        vdb.execute(DefineRelation("r", "rollback"))
        for i in range(6):
            vdb.set_state("r", _state([(j, j) for j in range(i + 1)]))
        vdb.state_at("r", 7)  # newest version: hot read, no replay
        vdb.state_at("r", 3)  # old version: replayed, then cached
        vdb.state_at("r", 3)  # served from the state cache
        counters = metrics.snapshot()["counters"]
        assert counters["storage.forward-delta.hot_reads"] == 1
        assert counters["storage.cache.misses"] == 1
        assert counters["storage.cache.hits"] == 1
        histogram = metrics.snapshot()["histograms"][
            "storage.forward-delta.replay_length"
        ]
        # only the one cold probe touched physical version records
        assert histogram["max"] == histogram["min"] > 0

    def test_checkpoint_hits_and_misses(self, metrics):
        vdb = VersionedDatabase(CheckpointDeltaBackend(2))
        vdb.execute(DefineRelation("r", "rollback"))
        for i in range(4):
            vdb.set_state("r", _state([(i, i)]))
        # versions at txns 2..5; checkpoints at versions 0 and 2
        vdb.state_at("r", 2)  # version 0: checkpoint hit
        vdb.state_at("r", 3)  # version 1: miss (1 replay)
        vdb.state_at("r", 4)  # version 2: checkpoint hit
        counters = metrics.snapshot()["counters"]
        assert counters["storage.checkpoint-delta.checkpoint_hits"] == 2
        assert counters["storage.checkpoint-delta.checkpoint_misses"] == 1

    def test_installs_and_atoms(self, metrics):
        vdb = VersionedDatabase(DeltaBackend())
        vdb.execute(DefineRelation("r", "rollback"))
        vdb.set_state("r", _state([(1, 1), (2, 2)]))
        vdb.set_state("r", _state([(1, 1)]))
        counters = metrics.snapshot()["counters"]
        assert counters["storage.forward-delta.installs"] == 2
        assert counters["storage.forward-delta.atoms_installed"] == 3
        assert counters["versioned_db.commands_executed"] == 1


class TestConcurrencyMetrics:
    def test_commit_and_latency(self, metrics):
        manager = TransactionManager(EMPTY_DATABASE)
        manager.run(
            lambda txn: txn.stage(DefineRelation("r", "rollback"))
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["concurrency.commits"] == 1
        assert (
            snapshot["histograms"]["concurrency.validate_seconds"]["count"]
            == 1
        )
        assert (
            snapshot["histograms"]["concurrency.commit_seconds"]["count"]
            == 1
        )

    def test_abort_counted(self, metrics):
        manager = TransactionManager(_database())
        victim = manager.begin()
        victim.read(Rollback("r", NOW))
        other = manager.begin()
        other.stage(ModifyState("r", Const(_state([(5, 5)]))))
        manager.commit(other)
        with pytest.raises(Exception):
            manager.commit(victim)
        assert metrics.snapshot()["counters"]["concurrency.aborts"] == 1


class TestLangMetrics:
    def test_statements_and_queries_counted(self, metrics):
        session = Session()
        session.execute("define_relation(r, rollback)")
        session.execute_command(
            ModifyState("r", Const(_state([(1, 1)])))
        )
        session.query("rollback(r, now)")
        counters = metrics.snapshot()["counters"]
        assert counters["lang.statements_executed"] == 2
        assert counters["lang.queries"] == 1
