"""InstrumentedBackend: transparent observation of any backend."""

from __future__ import annotations

import pytest

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.obsv import registry as obsv_registry
from repro.obsv.instrumented import InstrumentedBackend
from repro.obsv.registry import MetricsRegistry
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    VersionedDatabase,
    backends_agree,
)

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])

BACKENDS = [
    FullCopyBackend,
    DeltaBackend,
    ReverseDeltaBackend,
    lambda: CheckpointDeltaBackend(4),
    TupleTimestampBackend,
]


def _state(rows):
    return SnapshotState(KV, [list(r) for r in rows])


def _drive(vdb: VersionedDatabase, updates: int = 6) -> None:
    vdb.execute(DefineRelation("r", "rollback"))
    for i in range(updates):
        vdb.execute(
            ModifyState(
                "r", Union(Rollback("r", NOW), Const(_state([(i, i)])))
            )
        )


class TestDelegation:
    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_wrapped_backend_is_observation_equivalent(self, make_backend):
        plain = make_backend()
        wrapped = InstrumentedBackend(make_backend(), MetricsRegistry())
        for backend in (plain, wrapped):
            _drive(VersionedDatabase(backend))
        probes = [("r", txn) for txn in range(0, 9)]
        assert backends_agree([plain, wrapped], probes)

    def test_name_and_inner(self):
        inner = FullCopyBackend()
        wrapped = InstrumentedBackend(inner)
        assert wrapped.inner is inner
        assert wrapped.name == "instrumented(full-copy)"

    def test_has_delegates(self):
        wrapped = InstrumentedBackend(FullCopyBackend(), MetricsRegistry())
        _drive(VersionedDatabase(wrapped), updates=1)
        assert wrapped.has("r")
        assert not wrapped.has("missing")


class TestRecording:
    def test_counts_and_latencies(self):
        registry = MetricsRegistry()
        wrapped = InstrumentedBackend(DeltaBackend(), registry)
        _drive(VersionedDatabase(wrapped), updates=5)
        wrapped.state_at("r", 3)
        counters = registry.snapshot()["counters"]
        assert counters["backend.forward-delta.create_calls"] == 1
        assert counters["backend.forward-delta.install_calls"] == 5
        # each update installs i+1 atoms: 1+2+3+4+5
        assert counters["backend.forward-delta.atoms_installed"] == 15
        # 5 rollback reads during updates + 1 explicit probe
        assert counters["backend.forward-delta.state_at_calls"] == 6
        histograms = registry.snapshot()["histograms"]
        assert histograms["backend.forward-delta.state_at_seconds"]["count"] == 6
        assert histograms["backend.forward-delta.install_seconds"]["count"] == 5

    def test_record_space_writes_gauges(self):
        registry = MetricsRegistry()
        wrapped = InstrumentedBackend(FullCopyBackend(), registry)
        _drive(VersionedDatabase(wrapped), updates=3)
        wrapped.record_space()
        gauges = registry.snapshot()["gauges"]
        assert gauges["backend.full-copy.stored_atoms"] == 1 + 2 + 3
        assert gauges["backend.full-copy.stored_versions"] == 3

    def test_default_sink_is_noop_while_disabled(self):
        assert not obsv_registry.enabled()
        wrapped = InstrumentedBackend(FullCopyBackend())
        _drive(VersionedDatabase(wrapped), updates=2)
        # nothing recorded anywhere: the process registry is the null sink
        assert obsv_registry.get().snapshot()["counters"] == {}

    def test_default_sink_follows_global_switch(self, metrics):
        wrapped = InstrumentedBackend(FullCopyBackend())
        _drive(VersionedDatabase(wrapped), updates=2)
        counters = metrics.snapshot()["counters"]
        assert counters["backend.full-copy.install_calls"] == 2
        # the inner backend's own hooks fire too, under storage.*
        assert counters["storage.full-copy.installs"] == 2
