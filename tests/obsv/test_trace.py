"""EXPLAIN-style traces: same results as plain evaluation, plus the
operator tree with timings."""

from __future__ import annotations

from repro.core.commands import DefineRelation, ModifyState, Sequence
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Difference,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.obsv.trace import format_trace, trace_command, trace_evaluate
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def _state(rows):
    return SnapshotState(KV, [list(r) for r in rows])


def _database():
    return run(
        [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(_state([(1, 1), (2, 2), (3, 3)]))),
        ]
    )


class TestTraceEvaluate:
    def test_result_matches_plain_evaluation(self):
        database = _database()
        expression = Union(
            Difference(
                Rollback("r", NOW),
                Select(
                    Rollback("r", NOW),
                    Comparison(attr("k"), "=", lit(1)),
                ),
            ),
            Const(_state([(9, 9)])),
        )
        result, trace = trace_evaluate(expression, database)
        assert result == expression.evaluate(database)
        assert trace.rows == len(result)

    def test_tree_shape_mirrors_expression(self):
        database = _database()
        expression = Project(
            Union(Rollback("r", NOW), Const(_state([(7, 7)]))), ["k"]
        )
        _, trace = trace_evaluate(expression, database)
        assert trace.operator == "Project"
        assert [child.operator for child in trace.children] == ["Union"]
        union = trace.children[0]
        assert [child.operator for child in union.children] == [
            "Rollback",
            "Const",
        ]

    def test_timings_accumulate(self):
        database = _database()
        expression = Union(Rollback("r", NOW), Const(_state([(7, 7)])))
        _, trace = trace_evaluate(expression, database)
        assert trace.self_seconds >= 0.0
        assert trace.total_seconds >= trace.self_seconds
        assert trace.total_seconds >= sum(
            child.total_seconds for child in trace.children
        )

    def test_empty_set_leaf_reports_no_rows(self):
        database = run([DefineRelation("empty", "rollback")])
        _, trace = trace_evaluate(Rollback("empty", NOW), database)
        assert trace.rows is None

    def test_to_dict_is_json_shaped(self):
        database = _database()
        _, trace = trace_evaluate(
            Union(Rollback("r", NOW), Const(_state([(7, 7)]))), database
        )
        payload = trace.to_dict()
        assert payload["operator"] == "Union"
        assert len(payload["children"]) == 2
        assert payload["total_seconds"] >= payload["self_seconds"]


class TestTraceCommand:
    def test_modify_state_traced_and_database_identical(self):
        database = _database()
        command = ModifyState(
            "r", Union(Rollback("r", NOW), Const(_state([(9, 9)])))
        )
        traced_db, trace = trace_command(command, database)
        assert traced_db == command.execute(database)
        assert trace.txn_after == trace.txn_before + 1
        assert trace.expression is not None
        assert trace.expression.operator == "Union"

    def test_define_relation_has_no_expression_trace(self):
        new_db, trace = trace_command(
            DefineRelation("r", "rollback"), EMPTY_DATABASE
        )
        assert trace.expression is None
        assert new_db.transaction_number == 1

    def test_noop_modify_state_is_traced_as_noop(self):
        # unbound identifier: paper semantics no-op, no expression trace
        new_db, trace = trace_command(
            ModifyState("ghost", Const(_state([(1, 1)]))), EMPTY_DATABASE
        )
        assert new_db is EMPTY_DATABASE or new_db == EMPTY_DATABASE
        assert trace.expression is None
        assert trace.txn_after == trace.txn_before

    def test_sequence_nests_subtraces(self):
        command = Sequence(
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(_state([(1, 1)]))),
        )
        new_db, trace = trace_command(command, EMPTY_DATABASE)
        assert new_db.transaction_number == 2
        assert trace.command == "sequence"
        assert len(trace.children) == 2
        assert trace.children[1].expression is not None


class TestFormatting:
    def test_format_expression_trace(self):
        database = _database()
        _, trace = trace_evaluate(
            Union(Rollback("r", NOW), Const(_state([(7, 7)]))), database
        )
        text = format_trace(trace)
        assert "∪" in text
        assert "rows=4" in text
        assert "self=" in text and "total=" in text

    def test_format_command_trace(self):
        database = _database()
        _, trace = trace_command(
            ModifyState(
                "r", Union(Rollback("r", NOW), Const(_state([(9, 9)])))
            ),
            database,
        )
        text = format_trace(trace)
        assert text.startswith("modify_state(r")
        assert "txn 2 → 3" in text
