"""Cross-module integration tests: end-to-end scenarios that weave the
language, the Quel calculus, storage backends, the optimizer and the
temporal layer together."""

import pytest

from repro import (
    Attribute,
    Const,
    DefineRelation,
    HistoricalState,
    INTEGER,
    ModifyState,
    NOW,
    Project,
    Rollback,
    STRING,
    Schema,
    Select,
    SnapshotState,
    Union,
    run,
)
from repro.core.expressions import is_empty_set
from repro.lang import Session, parse_expression
from repro.optimizer import estimate_cost, optimize
from repro.optimizer.equivalence import states_equal
from repro.quel import QuelTranslator, parse_statement
from repro.snapshot.predicates import Comparison, attr, lit
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    VersionedDatabase,
    backends_agree,
)
from repro.workloads import UpdateStream, command_history


class TestLanguageOverBackends:
    """The same concrete-syntax program, executed via the in-memory core
    semantics and via every physical backend, must agree everywhere."""

    PROGRAM_LINES = [
        "define_relation(dept, rollback)",
        'modify_state(dept, state (name: string, floor: integer)'
        ' { ("cs", 3), ("math", 2) })',
        'modify_state(dept, rollback(dept, now) union '
        'state (name: string, floor: integer) { ("physics", 1) })',
        'modify_state(dept, rollback(dept, now) minus '
        'select [floor = 2] (rollback(dept, now)))',
    ]

    def test_all_backends_match_core(self):
        from repro.lang.parser import parse_command

        commands = [parse_command(line) for line in self.PROGRAM_LINES]
        core_db = run(commands)

        backends = [
            FullCopyBackend(),
            DeltaBackend(),
            ReverseDeltaBackend(),
            CheckpointDeltaBackend(2),
            TupleTimestampBackend(),
        ]
        for backend in backends:
            vdb = VersionedDatabase(backend)
            vdb.execute_all(commands)
            assert vdb.transaction_number == core_db.transaction_number
            for txn in range(0, core_db.transaction_number + 1):
                core_state = core_db.require("dept").find_state(txn)
                backend_state = vdb.state_at("dept", txn)
                if is_empty_set(core_state):
                    assert backend_state is None
                else:
                    assert backend_state == core_state
        probes = [("dept", t) for t in range(0, 6)]
        assert backends_agree(backends, probes)


class TestQuelThroughOptimizer:
    """Quel-translated queries run identically before and after
    optimization."""

    def test_retrieve_optimized(self):
        schema = Schema(
            [
                Attribute("name", STRING),
                Attribute("dept", STRING),
                Attribute("salary", INTEGER),
            ]
        )
        translator = QuelTranslator({"emp": schema})
        commands = [DefineRelation("emp", "rollback")]
        for name, dept, salary in [
            ("ann", "cs", 90),
            ("bob", "math", 70),
            ("cat", "cs", 80),
        ]:
            commands.append(
                translator.translate(
                    parse_statement(
                        f'append to emp (name = "{name}", '
                        f'dept = "{dept}", salary = {salary})'
                    )
                )
            )
        db = run(commands)

        query = translator.translate_retrieve(
            parse_statement(
                'retrieve (name) from emp where dept = "cs" '
                "and salary > 85"
            )
        )
        optimized = optimize(query, {"emp": schema})
        assert states_equal(query.evaluate(db), optimized.evaluate(db))
        assert query.evaluate(db).sorted_rows() == [("ann",)]


class TestSessionWithTemporalData:
    def test_bitemporal_session(self):
        session = Session()
        session.execute(
            """
            define_relation(positions, temporal);
            modify_state(positions,
                state (who: string) { ("ann") @ [0, 10) });
            modify_state(positions,
                state (who: string) { ("ann") @ [0, 10),
                                      ("bob") @ [5, forever) });
            """
        )
        # rollback (transaction time) then timeslice (valid time)
        old = session.query("rollback(positions, 2)")
        assert len(old) == 1
        new = session.query(
            "derive [validat(valid, 7) ; ] (rollback(positions, now))"
        )
        assert {t.value.values[0] for t in new.tuples} == {"ann", "bob"}

    def test_parsed_expression_equals_constructed(self):
        parsed = parse_expression(
            'project [name] (select [rank = "full"] (rollback(f, now)))'
        )
        constructed = Project(
            Select(
                Rollback("f", NOW),
                Comparison(attr("rank"), "=", lit("full")),
            ),
            ["name"],
        )
        assert parsed == constructed


class TestWorkloadPipeline:
    """Generated workload -> commands -> core database -> queries,
    with the optimizer and cost model in the loop."""

    def test_full_pipeline(self):
        stream = UpdateStream(12, cardinality=30, churn=0.25, seed=42)
        commands = command_history(stream, "data")
        db = run(commands)

        catalog = {"data": stream.schema}
        query = Select(
            Union(Rollback("data", 5), Rollback("data", NOW)),
            Comparison(attr("key"), "<", lit(5000)),
        )
        optimized = optimize(query, catalog)
        assert states_equal(query.evaluate(db), optimized.evaluate(db))
        assert estimate_cost(optimized, {"data": 30}) <= estimate_cost(
            query, {"data": 30}
        )

    def test_history_is_immutable_under_queries(self):
        stream = UpdateStream(6, cardinality=10, churn=0.5, seed=1)
        commands = command_history(stream, "data")
        db = run(commands)
        snapshot_before = {
            txn: db.require("data").find_state(txn) for txn in range(9)
        }
        # hammer the database with queries
        for txn in range(0, 8):
            Rollback("data", txn).evaluate(db)
        for txn, state in snapshot_before.items():
            after = db.require("data").find_state(txn)
            assert (
                after is state or after == state
            )  # identical content, untouched


class TestBitemporalEndToEnd:
    """A miniature of the paper's Section 4 scenario: one fact whose
    *recorded* history and *real-world* history both change."""

    def test_two_time_dimensions(self):
        k = Schema([Attribute("who", STRING)])
        h1 = HistoricalState.from_rows(k, [(["ann"], [(10, 20)])])
        # later we learn ann actually served longer
        h2 = HistoricalState.from_rows(k, [(["ann"], [(10, 30)])])
        db = run(
            [
                DefineRelation("chairs", "temporal"),
                ModifyState("chairs", Const(h1)),
                ModifyState("chairs", Const(h2)),
            ]
        )
        # as of transaction 2 the database believed [10, 20)
        belief_then = Rollback("chairs", 2).evaluate(db)
        assert not belief_then.snapshot_at(25)
        # the current belief covers chronon 25
        belief_now = Rollback("chairs", NOW).evaluate(db)
        assert belief_now.snapshot_at(25)
        # and the superseded belief is still available — nothing is lost
        assert belief_then == h1
