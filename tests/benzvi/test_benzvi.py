"""Tests for the Ben-Zvi baseline and the paper's claim C7: Time-View is
the composition of rollback and valid-time selection."""

import pytest

from repro.errors import StorageError
from repro.benzvi.bridge import (
    OperationKind,
    TemporalOperation,
    apply_operations,
)
from repro.benzvi.relation import TRMRelation
from repro.benzvi.timeview import time_view, time_view_expression
from repro.core.expressions import is_empty_set
from repro.historical.intervals import Interval
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.workloads.histories import random_operation_stream

K = Schema([Attribute("k", INTEGER)])


class TestTRMRelation:
    def test_insert_registers_version(self):
        r = TRMRelation(K)
        v = r.insert([1], Interval(0, 10), txn=1)
        assert v.is_current
        assert v.registered == 1
        assert len(r) == 1

    def test_logical_delete_closes_registration(self):
        r = TRMRelation(K)
        r.insert([1], Interval(0, 10), txn=1)
        closed = r.logical_delete([1], txn=3)
        assert closed == 1
        (v,) = r.versions
        assert not v.is_current
        assert v.superseded == 3
        # the version record itself is never destroyed
        assert r.stored_versions() == 1

    def test_delete_missing_raises(self):
        r = TRMRelation(K)
        with pytest.raises(StorageError):
            r.logical_delete([1], txn=1)

    def test_modify_effective_supersedes(self):
        r = TRMRelation(K)
        r.insert([1], Interval(0, 10), txn=1)
        r.modify_effective([1], Interval(5, 20), txn=2)
        assert r.stored_versions() == 2
        assert len(r.current_versions()) == 1
        assert r.current_versions()[0].effective == Interval(5, 20)

    def test_registered_at(self):
        r = TRMRelation(K)
        v = r.insert([1], Interval(0, 10), txn=2)
        r.logical_delete([1], txn=5)
        assert not v.registered_at(1)
        assert v.registered_at(2)
        assert v.registered_at(4)
        assert not v.registered_at(5)


class TestTimeView:
    @pytest.fixture
    def relation(self):
        r = TRMRelation(K)
        r.insert([1], Interval(0, 10), txn=1)   # believed from txn 1
        r.insert([2], Interval(5, 15), txn=2)   # believed from txn 2
        r.logical_delete([1], txn=3)            # belief in 1 retracted
        return r

    def test_rolls_back_and_slices(self, relation):
        # as of txn 2 both facts are believed; valid time 7 covers both
        assert time_view(relation, 7, 2) == SnapshotState(K, [[1], [2]])

    def test_transaction_time_dimension(self, relation):
        # as of txn 3 the belief in fact 1 is retracted
        assert time_view(relation, 7, 3) == SnapshotState(K, [[2]])

    def test_valid_time_dimension(self, relation):
        # valid time 2 precedes fact 2's effective interval
        assert time_view(relation, 2, 2) == SnapshotState(K, [[1]])

    def test_before_everything(self, relation):
        assert time_view(relation, 7, 0).is_empty()


class TestEquivalenceWithPaperLanguage:
    """C7: time_view(R, tv, tt) == timeslice_tv(δ_validat(ρ̂(R, tt)))."""

    @pytest.mark.parametrize("seed", range(4))
    def test_full_grid(self, seed):
        operations = random_operation_stream(
            30, fact_space=8, horizon=60, seed=seed
        )
        trm, db = apply_operations(K, operations)
        for txn_time in range(0, db.transaction_number + 2):
            for valid_time in range(0, 60, 7):
                benzvi = time_view(trm, valid_time, txn_time)
                expression = time_view_expression(
                    "r", valid_time, txn_time
                )
                historical = expression.evaluate(db)
                if is_empty_set(historical):
                    ours = SnapshotState.empty(K)
                else:
                    ours = historical.snapshot_at(valid_time)
                assert benzvi == ours, (
                    f"mismatch at tt={txn_time} tv={valid_time}"
                )

    def test_ours_is_strictly_more_general(self):
        """The paper's expression returns full valid-time information;
        Time-View's output has already lost it."""
        operations = [
            TemporalOperation(
                OperationKind.INSERT, (1,), Interval(0, 50)
            )
        ]
        trm, db = apply_operations(K, operations)
        historical = time_view_expression("r", 10, 2).evaluate(db)
        (t,) = historical.tuples
        # the historical result still knows the full period ...
        assert t.valid_time.covers(49)
        # ... while Time-View returns only the membership bit
        assert time_view(trm, 10, 2) == SnapshotState(K, [[1]])


class TestBridge:
    def test_operation_validation(self):
        with pytest.raises(StorageError):
            TemporalOperation(OperationKind.INSERT, (1,))  # no interval

    def test_aligned_transaction_numbers(self):
        operations = [
            TemporalOperation(OperationKind.INSERT, (1,), Interval(0, 9)),
            TemporalOperation(OperationKind.INSERT, (2,), Interval(3, 7)),
        ]
        trm, db = apply_operations(K, operations)
        assert db.transaction_number == 3  # define + 2 ops
        assert [v.registered for v in trm.versions] == [2, 3]

    def test_stream_generator_is_applicable(self):
        # the seeded generator never deletes/modifies absent facts
        operations = random_operation_stream(100, seed=7)
        trm, db = apply_operations(Schema([Attribute("k", INTEGER)]),
                                   operations)
        assert db.transaction_number == len(operations) + 1
