"""Tests for temporal update statements (append/delete/terminate over
temporal relations)."""

import pytest

from repro.errors import ParseError, TranslationError
from repro.core.commands import DefineRelation
from repro.core.expressions import Rollback
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.quel.temporal import (
    TemporalAppend,
    TemporalDelete,
    TemporalQuelTranslator,
    Terminate,
    parse_temporal_statement,
)
from repro.snapshot.attributes import STRING, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple

CHAIRS = Schema([Attribute("who", STRING)])


@pytest.fixture
def translator():
    return TemporalQuelTranslator({"chairs": CHAIRS})


def build_db(translator, sources):
    commands = [DefineRelation("chairs", "temporal")]
    for source in sources:
        commands.append(
            translator.translate(parse_temporal_statement(source))
        )
    return run(commands)


def valid_time_of(db, who):
    state = Rollback("chairs", NOW).evaluate(db)
    return state.valid_time_of(SnapshotTuple(CHAIRS, [who]))


class TestParsing:
    def test_temporal_append(self):
        statement = parse_temporal_statement(
            'append to chairs (who = "ann") valid [0, 10) + [15, forever)'
        )
        assert isinstance(statement, TemporalAppend)
        assert statement.valid == PeriodSet([(0, 10), (15, FOREVER)])

    def test_delete(self):
        statement = parse_temporal_statement(
            'delete from chairs where who = "ann"'
        )
        assert isinstance(statement, TemporalDelete)

    def test_terminate(self):
        statement = parse_temporal_statement(
            'terminate chairs where who = "ann" at 25'
        )
        assert isinstance(statement, Terminate)
        assert statement.chronon == 25

    def test_terminate_without_where(self):
        statement = parse_temporal_statement("terminate chairs at 5")
        assert statement.where is None

    def test_append_requires_valid_clause(self):
        with pytest.raises(ParseError):
            parse_temporal_statement('append to chairs (who = "ann")')

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_temporal_statement("replace chairs (who = 1)")


class TestTranslationValidation:
    def test_unknown_relation(self, translator):
        with pytest.raises(TranslationError, match="catalog"):
            translator.translate(
                TemporalAppend("ghosts", {"who": "x"}, PeriodSet([(0, 1)]))
            )

    def test_wrong_attributes(self, translator):
        with pytest.raises(TranslationError, match="unknown"):
            translator.translate(
                TemporalAppend(
                    "chairs",
                    {"who": "x", "age": 3},
                    PeriodSet([(0, 1)]),
                )
            )

    def test_empty_valid_rejected(self):
        with pytest.raises(TranslationError, match="non-empty"):
            TemporalAppend("chairs", {"who": "x"}, PeriodSet.empty())

    def test_negative_terminate_rejected(self):
        with pytest.raises(TranslationError):
            Terminate("chairs", -1)


class TestEndToEnd:
    def test_append_accumulates_valid_time(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [0, 10)',
                'append to chairs (who = "ann") valid [10, 20)',
            ],
        )
        assert valid_time_of(db, "ann") == PeriodSet([(0, 20)])

    def test_delete_retracts_entirely(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [0, 10)',
                'append to chairs (who = "bob") valid [5, 15)',
                'delete from chairs where who = "ann"',
            ],
        )
        assert valid_time_of(db, "ann").is_empty()
        assert valid_time_of(db, "bob") == PeriodSet([(5, 15)])
        # history retains the pre-delete belief
        old = Rollback("chairs", 3).evaluate(db)
        assert old.valid_time_of(
            SnapshotTuple(CHAIRS, ["ann"])
        ) == PeriodSet([(0, 10)])

    def test_delete_all(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [0, 10)',
                "delete from chairs",
            ],
        )
        assert Rollback("chairs", NOW).evaluate(db).is_empty()

    def test_terminate_clips(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [10, forever)',
                'terminate chairs where who = "ann" at 25',
            ],
        )
        assert valid_time_of(db, "ann") == PeriodSet([(10, 25)])

    def test_terminate_before_start_retracts(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [10, 20)',
                'terminate chairs where who = "ann" at 10',
            ],
        )
        assert valid_time_of(db, "ann").is_empty()

    def test_terminate_at_zero(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [0, 20)',
                "terminate chairs at 0",
            ],
        )
        assert Rollback("chairs", NOW).evaluate(db).is_empty()

    def test_terminate_leaves_unmatched_untouched(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [0, 30)',
                'append to chairs (who = "bob") valid [0, 30)',
                'terminate chairs where who = "ann" at 10',
            ],
        )
        assert valid_time_of(db, "ann") == PeriodSet([(0, 10)])
        assert valid_time_of(db, "bob") == PeriodSet([(0, 30)])

    def test_terminate_multi_run_valid_time(self, translator):
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [0, 5) + [8, 20)',
                'terminate chairs where who = "ann" at 10',
            ],
        )
        assert valid_time_of(db, "ann") == PeriodSet([(0, 5), (8, 10)])

    def test_matches_benzvi_terminate_semantics(self, translator):
        """terminate ≡ Ben-Zvi's modify-effective to a clipped interval,
        as observed through Time-View at every probe."""
        from repro.benzvi.relation import TRMRelation
        from repro.benzvi.timeview import time_view
        from repro.historical.intervals import Interval

        # our model
        db = build_db(
            translator,
            [
                'append to chairs (who = "ann") valid [0, 30)',
                'terminate chairs where who = "ann" at 12',
            ],
        )
        # Ben-Zvi's model, same history
        trm = TRMRelation(CHAIRS)
        trm.insert(["ann"], Interval(0, 30), txn=2)
        trm.modify_effective(["ann"], Interval(0, 12), txn=3)

        for tt in (2, 3):
            for tv in (0, 5, 12, 20):
                ours = (
                    Rollback("chairs", tt)
                    .evaluate(db)
                    .snapshot_at(tv)
                )
                theirs = time_view(trm, tv, tt)
                assert ours == theirs, f"tt={tt} tv={tv}"
