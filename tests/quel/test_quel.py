"""Tests for the Quel-style update calculus: parsing, translation, and
end-to-end execution against the algebra."""

import pytest

from repro.errors import ParseError, TranslationError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Project, Rollback, Select, Union
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.quel.parser import parse_statement
from repro.quel.statements import Append, Delete, Replace, Retrieve
from repro.quel.translate import QuelTranslator
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema

FACULTY = Schema(
    [
        Attribute("name", STRING),
        Attribute("rank", STRING),
        Attribute("salary", INTEGER),
    ]
)


@pytest.fixture
def translator():
    return QuelTranslator({"faculty": FACULTY})


def build_db(translator, sources):
    commands = [DefineRelation("faculty", "rollback")]
    for source in sources:
        commands.append(translator.translate(parse_statement(source)))
    return run(commands)


class TestParsing:
    def test_append(self):
        statement = parse_statement(
            'append to faculty (name = "ann", rank = "assistant", salary = 50)'
        )
        assert isinstance(statement, Append)
        assert statement.relation == "faculty"
        assert statement.values["salary"] == 50

    def test_delete_with_where(self):
        statement = parse_statement(
            'delete from faculty where salary > 80'
        )
        assert isinstance(statement, Delete)
        assert statement.where is not None

    def test_delete_without_where(self):
        statement = parse_statement("delete from faculty")
        assert statement.where is None

    def test_replace(self):
        statement = parse_statement(
            'replace faculty (rank = "full") where name = "ann"'
        )
        assert isinstance(statement, Replace)
        assert statement.assignments == {"rank": "full"}

    def test_retrieve_with_as_of(self):
        statement = parse_statement(
            'retrieve (name, rank) from faculty where salary >= 50 as of 3'
        )
        assert isinstance(statement, Retrieve)
        assert statement.names == ("name", "rank")
        assert statement.as_of == 3

    def test_retrieve_defaults_to_now(self):
        statement = parse_statement("retrieve (name) from faculty")
        assert statement.as_of is NOW

    def test_double_assignment_rejected(self):
        with pytest.raises(ParseError):
            parse_statement('append to r (a = 1, a = 2)')

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("upsert into r (a = 1)")


class TestTranslation:
    def test_append_shape(self, translator):
        command = translator.translate(
            parse_statement(
                'append to faculty (name = "ann", rank = "asst", salary = 1)'
            )
        )
        assert isinstance(command, ModifyState)
        assert isinstance(command.expression, Union)
        assert command.expression.left == Rollback("faculty", NOW)

    def test_append_requires_all_attributes(self, translator):
        with pytest.raises(TranslationError, match="missing"):
            translator.translate(
                parse_statement('append to faculty (name = "ann")')
            )

    def test_append_unknown_attribute_rejected(self, translator):
        with pytest.raises(TranslationError, match="unknown"):
            translator.translate(
                Append("faculty", {"name": "x", "rank": "y",
                                   "salary": 1, "ghost": 2})
            )

    def test_unknown_relation_rejected(self, translator):
        with pytest.raises(TranslationError, match="catalog"):
            translator.translate(
                parse_statement("delete from students")
            )

    def test_retrieve_is_expression_not_command(self, translator):
        statement = parse_statement("retrieve (name) from faculty")
        with pytest.raises(TranslationError):
            translator.translate(statement)
        expression = translator.translate_retrieve(statement)
        assert isinstance(expression, Project)

    def test_retrieve_all_columns_skips_projection(self, translator):
        statement = parse_statement(
            "retrieve (name, rank, salary) from faculty"
        )
        expression = translator.translate_retrieve(statement)
        assert expression == Rollback("faculty", NOW)

    def test_retrieve_unknown_attribute_rejected(self, translator):
        with pytest.raises(TranslationError):
            translator.translate_retrieve(
                parse_statement("retrieve (ghost) from faculty")
            )

    def test_replace_all_attributes_rejected(self, translator):
        with pytest.raises(TranslationError, match="every attribute"):
            translator.translate(
                parse_statement(
                    'replace faculty (name = "x", rank = "y", salary = 0)'
                )
            )


class TestEndToEnd:
    def test_append_then_query(self, translator):
        db = build_db(
            translator,
            [
                'append to faculty (name = "ann", rank = "asst", salary = 50)',
                'append to faculty (name = "bob", rank = "full", salary = 90)',
            ],
        )
        current = Rollback("faculty", NOW).evaluate(db)
        assert len(current) == 2

    def test_delete_where(self, translator):
        db = build_db(
            translator,
            [
                'append to faculty (name = "ann", rank = "asst", salary = 50)',
                'append to faculty (name = "bob", rank = "full", salary = 90)',
                "delete from faculty where salary > 80",
            ],
        )
        current = Rollback("faculty", NOW).evaluate(db)
        assert current.sorted_rows() == [("ann", "asst", 50)]

    def test_delete_all(self, translator):
        db = build_db(
            translator,
            [
                'append to faculty (name = "ann", rank = "asst", salary = 50)',
                "delete from faculty",
            ],
        )
        assert Rollback("faculty", NOW).evaluate(db).is_empty()

    def test_replace(self, translator):
        db = build_db(
            translator,
            [
                'append to faculty (name = "ann", rank = "asst", salary = 50)',
                'append to faculty (name = "bob", rank = "full", salary = 90)',
                'replace faculty (rank = "assoc", salary = 65)'
                ' where name = "ann"',
            ],
        )
        current = Rollback("faculty", NOW).evaluate(db)
        assert current.sorted_rows() == [
            ("ann", "assoc", 65),
            ("bob", "full", 90),
        ]

    def test_replace_without_where_hits_every_tuple(self, translator):
        db = build_db(
            translator,
            [
                'append to faculty (name = "ann", rank = "asst", salary = 50)',
                'append to faculty (name = "bob", rank = "full", salary = 90)',
                'replace faculty (salary = 0)',
            ],
        )
        current = Rollback("faculty", NOW).evaluate(db)
        assert {row[2] for row in current.sorted_rows()} == {0}

    def test_updates_preserve_history(self, translator):
        db = build_db(
            translator,
            [
                'append to faculty (name = "ann", rank = "asst", salary = 50)',
                'replace faculty (salary = 60) where name = "ann"',
                "delete from faculty",
            ],
        )
        # txns: define=1, append=2, replace=3, delete=4
        assert Rollback("faculty", 2).evaluate(db).sorted_rows() == [
            ("ann", "asst", 50)
        ]
        assert Rollback("faculty", 3).evaluate(db).sorted_rows() == [
            ("ann", "asst", 60)
        ]
        assert Rollback("faculty", NOW).evaluate(db).is_empty()

    def test_retrieve_as_of(self, translator):
        db = build_db(
            translator,
            [
                'append to faculty (name = "ann", rank = "asst", salary = 50)',
                'replace faculty (rank = "assoc") where name = "ann"',
            ],
        )
        old = translator.translate_retrieve(
            parse_statement("retrieve (rank) from faculty as of 2")
        )
        assert old.evaluate(db).sorted_rows() == [("asst",)]
        new = translator.translate_retrieve(
            parse_statement("retrieve (rank) from faculty")
        )
        assert new.evaluate(db).sorted_rows() == [("assoc",)]


class TestTemporalRetrieve:
    """The TQuel-flavored `when` clause over temporal relations."""

    @pytest.fixture
    def temporal_db(self):
        from repro.core.expressions import Const
        from repro.historical.state import HistoricalState

        k = Schema([Attribute("who", STRING)])
        h1 = HistoricalState.from_rows(k, [(["ann"], [(0, 10)])])
        h2 = HistoricalState.from_rows(
            k, [(["ann"], [(0, 10)]), (["bob"], [(5, 20)])]
        )
        db = run(
            [
                DefineRelation("chairs", "temporal"),
                ModifyState("chairs", Const(h1)),
                ModifyState("chairs", Const(h2)),
            ]
        )
        return db, QuelTranslator({"chairs": k})

    def test_parse_when_clause(self):
        statement = parse_statement(
            "retrieve (who) from chairs when 7 as of 2"
        )
        assert statement.when == 7
        assert statement.as_of == 2

    def test_when_slices_valid_time(self, temporal_db):
        db, translator = temporal_db
        expression = translator.translate_retrieve(
            parse_statement("retrieve (who) from chairs when 7")
        )
        state = expression.evaluate(db)
        assert {t["who"] for t in state.tuples} == {"ann", "bob"}

    def test_when_excludes_invalid_facts(self, temporal_db):
        db, translator = temporal_db
        expression = translator.translate_retrieve(
            parse_statement("retrieve (who) from chairs when 15")
        )
        state = expression.evaluate(db)
        assert {t["who"] for t in state.tuples} == {"bob"}

    def test_when_combines_with_as_of(self, temporal_db):
        db, translator = temporal_db
        # as of txn 2 only ann was recorded
        expression = translator.translate_retrieve(
            parse_statement("retrieve (who) from chairs when 7 as of 2")
        )
        state = expression.evaluate(db)
        assert {t["who"] for t in state.tuples} == {"ann"}

    def test_when_combines_with_where(self, temporal_db):
        db, translator = temporal_db
        expression = translator.translate_retrieve(
            parse_statement(
                'retrieve (who) from chairs where who != "ann" when 7'
            )
        )
        state = expression.evaluate(db)
        assert {t["who"] for t in state.tuples} == {"bob"}
