"""Tests for as_of pinning, views and diffing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError, RelationTypeError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Project,
    Rollback,
    Select,
    Union,
    is_empty_set,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple
from repro.timetravel import View, as_of, diff_states, state_history

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


@pytest.fixture
def db():
    """r: states at txns 2, 3, 4; s: state at txn 6."""
    return run(
        [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(kv((1, 10)))),
            ModifyState("r", Const(kv((1, 10), (2, 20)))),
            ModifyState("r", Const(kv((2, 20), (3, 30)))),
            DefineRelation("s", "rollback"),
            ModifyState("s", Const(kv((9, 90)))),
        ]
    )


class TestAsOf:
    def test_pins_now(self, db):
        query = Select(
            Rollback("r", NOW), Comparison(attr("k"), ">", lit(1))
        )
        pinned = as_of(query, 3)
        assert pinned == Select(
            Rollback("r", 3), Comparison(attr("k"), ">", lit(1))
        )
        assert pinned.evaluate(db) == kv((2, 20))

    def test_explicit_numerals_kept(self, db):
        query = Union(Rollback("r", 2), Rollback("r", NOW))
        pinned = as_of(query, 3)
        assert pinned == Union(Rollback("r", 2), Rollback("r", 3))

    def test_future_explicit_numeral_rejected(self, db):
        query = Rollback("r", 4)
        with pytest.raises(ExpressionError, match="later"):
            as_of(query, 3)

    def test_constants_untouched(self, db):
        constant = Const(kv((5, 50)))
        assert as_of(constant, 2) is constant

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=4))
    def test_pinning_equals_time_of_query(self, txn):
        """as_of(E, k) evaluated now == E evaluated when the database
        was at transaction k (the defining property)."""
        commands = [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(kv((1, 10)))),
            ModifyState("r", Const(kv((1, 10), (2, 20)))),
            ModifyState("r", Const(kv((2, 20), (3, 30)))),
        ]
        full_db = run(commands)
        # the database as it existed at transaction `txn`
        past_db = run(commands[: txn])
        query = Project(
            Select(
                Rollback("r", NOW),
                Comparison(attr("v"), ">=", lit(10)),
            ),
            ["k"],
        )
        then = query.evaluate(past_db)
        now_pinned = as_of(query, txn).evaluate(full_db)
        assert then == now_pinned


class TestView:
    def test_current_state(self, db):
        view = View(
            "big",
            Select(
                Rollback("r", NOW), Comparison(attr("v"), ">", lit(15))
            ),
        )
        assert view.state(db) == kv((2, 20), (3, 30))

    def test_view_is_rollbackable(self, db):
        view = View(
            "big",
            Select(
                Rollback("r", NOW), Comparison(attr("v"), ">", lit(15))
            ),
        )
        assert view.state(db, 3) == kv((2, 20))
        assert view.state(db, 2).is_empty()

    def test_multi_source_view(self, db):
        view = View("all", Union(Rollback("r", NOW), Rollback("s", NOW)))
        assert len(view.state(db)) == 3
        # as of txn 3, s had no state: ∅ is the identity of union
        assert view.state(db, 3) == kv((1, 10), (2, 20))

    def test_view_needs_name(self):
        with pytest.raises(ExpressionError):
            View("", Rollback("r"))


class TestDiff:
    def test_added_and_removed(self, db):
        added, removed = diff_states(db, "r", 3, 4)
        assert added == {SnapshotTuple(KV, [3, 30])}
        assert removed == {SnapshotTuple(KV, [1, 10])}

    def test_diff_from_prehistory(self, db):
        added, removed = diff_states(db, "r", 0, 2)
        assert added == {SnapshotTuple(KV, [1, 10])}
        assert removed == frozenset()

    def test_identical_endpoints(self, db):
        added, removed = diff_states(db, "r", 3, 3)
        assert not added and not removed

    def test_snapshot_relation_rejected(self):
        database = run(
            [
                DefineRelation("snap", "snapshot"),
                ModifyState("snap", Const(kv((1, 1)))),
            ]
        )
        with pytest.raises(RelationTypeError):
            diff_states(database, "snap", 1, 2)

    def test_temporal_diff_reports_valid_time_changes(self):
        from repro.historical.state import HistoricalState

        who = Schema(["who"])
        h1 = HistoricalState.from_rows(who, [(["ann"], [(0, 10)])])
        h2 = HistoricalState.from_rows(who, [(["ann"], [(0, 25)])])
        database = run(
            [
                DefineRelation("t", "temporal"),
                ModifyState("t", Const(h1)),
                ModifyState("t", Const(h2)),
            ]
        )
        added, removed = diff_states(database, "t", 2, 3)
        assert len(added) == 1 and len(removed) == 1  # re-stamped fact


class TestStateHistory:
    def test_iterates_in_order(self, db):
        history = list(state_history(db, "r"))
        assert [txn for txn, _ in history] == [2, 3, 4]
        assert history[0][1] == kv((1, 10))

    def test_reconstructs_diffs(self, db):
        history = list(state_history(db, "r"))
        for (txn_a, state_a), (txn_b, state_b) in zip(
            history, history[1:]
        ):
            added, removed = diff_states(db, "r", txn_a, txn_b)
            assert (state_a.tuples | added) - removed == state_b.tuples
