"""Round-trip tests for the JSON persistence layer."""

import io

import pytest
from hypothesis import given, settings

from repro.errors import StorageError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import Const, Rollback
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.historical.state import HistoricalState
from repro.persistence import (
    database_from_dict,
    database_to_dict,
    dump,
    dumps,
    load,
    loads,
)
from repro.snapshot.attributes import (
    BOOLEAN,
    INTEGER,
    NUMBER,
    STRING,
    USER_DEFINED_TIME,
    Attribute,
    enumerated_domain,
)
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_historical_states, kv_states

FULL = Schema(
    [
        Attribute("i", INTEGER),
        Attribute("s", STRING),
        Attribute("n", NUMBER),
        Attribute("b", BOOLEAN),
        Attribute("t", USER_DEFINED_TIME),
    ]
)


def full_db():
    state1 = SnapshotState(FULL, [[1, "a", 1.5, True, 0]])
    state2 = SnapshotState(
        FULL, [[1, "a", 1.5, True, 0], [2, "b", -2.5, False, 7]]
    )
    historical = HistoricalState.from_rows(
        Schema(["who"]),
        [(["ann"], [(0, 5), (9, None or 12)]), (["bob"], [(3, 8)])],
    )
    from repro.historical.chronons import FOREVER

    historical2 = HistoricalState.from_rows(
        Schema(["who"]), [(["ann"], [(0, FOREVER)])]
    )
    return run(
        [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(state1)),
            ModifyState("r", Const(state2)),
            DefineRelation("t", "temporal"),
            ModifyState("t", Const(historical)),
            ModifyState("t", Const(historical2)),
            DefineRelation("s", "snapshot"),
            ModifyState("s", Const(state1)),
        ]
    )


class TestRoundTrip:
    def test_full_database(self):
        database = full_db()
        assert loads(dumps(database)) == database

    def test_empty_database(self):
        assert loads(dumps(EMPTY_DATABASE)) == EMPTY_DATABASE

    def test_relation_with_no_states(self):
        database = run([DefineRelation("r", "rollback")])
        assert loads(dumps(database)) == database

    def test_unbounded_periods_round_trip(self):
        database = full_db()
        restored = loads(dumps(database))
        current = Rollback("t", NOW).evaluate(restored)
        (t,) = current.tuples
        assert t.valid_time.is_unbounded()

    def test_file_interface(self, tmp_path):
        database = full_db()
        path = tmp_path / "db.json"
        with open(path, "w") as fp:
            dump(database, fp, indent=2)
        with open(path) as fp:
            assert load(fp) == database

    def test_pretty_and_compact_agree(self):
        database = full_db()
        assert loads(dumps(database, indent=2)) == loads(dumps(database))

    def test_queries_work_after_reload(self):
        database = loads(dumps(full_db()))
        assert len(Rollback("r", 2).evaluate(database)) == 1
        assert len(Rollback("r", NOW).evaluate(database)) == 2

    @settings(max_examples=25)
    @given(kv_states())
    def test_random_snapshot_states(self, state):
        database = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", Const(state)),
            ]
        )
        assert loads(dumps(database)) == database

    @settings(max_examples=25)
    @given(kv_historical_states())
    def test_random_historical_states(self, state):
        database = run(
            [
                DefineRelation("t", "temporal"),
                ModifyState("t", Const(state)),
            ]
        )
        assert loads(dumps(database)) == database


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(StorageError, match="format"):
            database_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self):
        payload = database_to_dict(EMPTY_DATABASE)
        payload["version"] = 999
        with pytest.raises(StorageError, match="version"):
            database_from_dict(payload)

    def test_custom_domain_degrades_to_any(self):
        custom = enumerated_domain("color", ["red", "blue"])
        schema = Schema([Attribute("c", custom)])
        database = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState(
                    "r", Const(SnapshotState(schema, [["red"]]))
                ),
            ]
        )
        restored = loads(dumps(database))
        restored_schema = (
            restored.require("r").current_state.schema
        )
        assert restored_schema["c"].domain.name == "any"
        # values survive even though the domain name degraded
        assert restored.require("r").current_state.sorted_rows() == [
            ("red",)
        ]
