"""Property-style round-trip tests for persistence over generated
databases: many seeds, every relation type, empty states, unbounded
(``FOREVER``) periods, and the format-version gate."""

import json

import pytest

from repro.errors import StorageError
from repro.core.commands import DefineRelation, ModifyState, execute
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import Const
from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.persistence import (
    database_from_dict,
    database_to_dict,
    dumps,
    loads,
    state_from_dict,
    state_to_dict,
)
from repro.persistence.json_codec import FORMAT_VERSION
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.workloads.generators import StateGenerator

from tests.durability.conftest import scripted_workload


def generated_database(seed, length):
    database = EMPTY_DATABASE
    for command in scripted_workload(length=length, seed=seed):
        database = execute(command, database)
    return database


class TestGeneratedDatabases:
    @pytest.mark.parametrize("seed", range(6))
    def test_dumps_loads_identity(self, seed):
        database = generated_database(seed, length=40 + 20 * seed)
        assert loads(dumps(database)) == database

    @pytest.mark.parametrize("seed", range(3))
    def test_dict_roundtrip_is_json_stable(self, seed):
        """to_dict → JSON → from_dict → to_dict is a fixed point."""
        database = generated_database(seed, length=30)
        payload = json.loads(json.dumps(database_to_dict(database)))
        again = database_to_dict(database_from_dict(payload))
        assert again == payload

    def test_empty_database(self):
        assert loads(dumps(EMPTY_DATABASE)) == EMPTY_DATABASE

    def test_defined_but_never_modified_relations(self):
        database = EMPTY_DATABASE
        for identifier, rtype in (
            ("a", "snapshot"),
            ("b", "rollback"),
            ("c", "historical"),
            ("d", "temporal"),
        ):
            database = execute(
                DefineRelation(identifier, rtype), database
            )
        reloaded = loads(dumps(database))
        assert reloaded == database
        assert reloaded.require("b").history_length == 0

    def test_empty_constant_states(self):
        schema = Schema(
            [Attribute("k", INTEGER), Attribute("v", STRING)]
        )
        database = execute(
            DefineRelation("r", "rollback"), EMPTY_DATABASE
        )
        database = execute(
            ModifyState("r", Const(SnapshotState(schema, []))), database
        )
        reloaded = loads(dumps(database))
        assert reloaded == database
        assert len(reloaded.require("r").current_state.tuples) == 0


class TestStateRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_snapshot_states(self, seed):
        state = StateGenerator(seed=seed).snapshot_state(seed + 1)
        assert state_from_dict(state_to_dict(state)) == state

    @pytest.mark.parametrize("seed", range(8))
    def test_historical_states(self, seed):
        state = StateGenerator(seed=seed).historical_state(seed + 1)
        assert state_from_dict(state_to_dict(state)) == state

    def test_forever_period_survives(self):
        schema = Schema([Attribute("k", INTEGER)])
        state = HistoricalState(
            schema,
            [
                HistoricalTuple(
                    [1],
                    PeriodSet([(0, 10), (20, FOREVER)]),
                    schema=schema,
                )
            ],
        )
        back = state_from_dict(state_to_dict(state))
        assert back == state
        periods = next(iter(back.tuples)).valid_time
        assert any(i.is_unbounded for i in periods.intervals)

    def test_public_names_match_json_codec_privates(self):
        """The archive store and checkpoints import the public names;
        the former private aliases stay importable for callers pinned
        to them."""
        from repro.persistence import json_codec

        assert json_codec._state_to_dict is state_to_dict
        assert json_codec._state_from_dict is state_from_dict


class TestVersionGate:
    def payload(self):
        return database_to_dict(generated_database(0, 20))

    def test_newer_version_rejected_with_clear_error(self):
        payload = self.payload()
        payload["version"] = FORMAT_VERSION + 1
        with pytest.raises(StorageError, match="newer library"):
            database_from_dict(payload)
        with pytest.raises(StorageError, match="upgrade"):
            database_from_dict(payload)

    def test_non_integer_version_rejected(self):
        payload = self.payload()
        payload["version"] = "1"
        with pytest.raises(StorageError, match="integer format version"):
            database_from_dict(payload)

    def test_missing_version_rejected(self):
        payload = self.payload()
        del payload["version"]
        with pytest.raises(StorageError):
            database_from_dict(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(StorageError, match="expected a JSON object"):
            database_from_dict([1, 2, 3])

    def test_wrong_format_rejected(self):
        payload = self.payload()
        payload["format"] = "something-else"
        with pytest.raises(StorageError, match="not a repro database"):
            database_from_dict(payload)
