"""Tests for rollback-history archival (the paper's 'migrate to tape')."""

import pytest

from repro.errors import RelationTypeError, StorageError
from repro.archive import (
    ArchivedSegment,
    ArchiveStore,
    TieredReader,
    archive_before,
)
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, is_empty_set
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def kv(*keys):
    return SnapshotState(KV, [[k] for k in keys])


@pytest.fixture
def database():
    """r holds 6 states at transactions 2..7."""
    commands = [DefineRelation("r", "rollback")]
    commands += [
        ModifyState("r", Const(kv(*range(i + 1)))) for i in range(6)
    ]
    return run(commands)


class TestArchiveBefore:
    def test_splits_history(self, database):
        store = ArchiveStore()
        live = archive_before(database, "r", 5, store)
        assert live.require("r").transaction_numbers == (5, 6, 7)
        assert store.stored_states() == 3
        assert store.last_archived_txn("r") == 4

    def test_transaction_number_untouched(self, database):
        store = ArchiveStore()
        live = archive_before(database, "r", 5, store)
        assert (
            live.transaction_number == database.transaction_number
        )

    def test_original_database_untouched(self, database):
        store = ArchiveStore()
        archive_before(database, "r", 5, store)
        assert database.require("r").history_length == 6

    def test_nothing_to_archive_rejected(self, database):
        with pytest.raises(StorageError, match="nothing to archive"):
            archive_before(database, "r", 2, ArchiveStore())

    def test_whole_history_rejected(self, database):
        with pytest.raises(StorageError, match="entire history"):
            archive_before(database, "r", 100, ArchiveStore())

    def test_snapshot_relation_rejected(self):
        db = run(
            [
                DefineRelation("s", "snapshot"),
                ModifyState("s", Const(kv(1))),
            ]
        )
        with pytest.raises(RelationTypeError):
            archive_before(db, "s", 2, ArchiveStore())

    def test_incremental_archiving(self, database):
        store = ArchiveStore()
        live = archive_before(database, "r", 4, store)
        live = archive_before(live, "r", 6, store)
        assert live.require("r").transaction_numbers == (6, 7)
        assert store.stored_states() == 4

    def test_overlapping_segment_rejected(self, database):
        store = ArchiveStore()
        archive_before(database, "r", 5, store)
        # archiving the same early span again from the original database
        with pytest.raises(StorageError, match="overlaps"):
            archive_before(database, "r", 4, store)


class TestTieredReader:
    def test_reads_are_equivalent_everywhere(self, database):
        """The central correctness property: tiered reads equal reads
        against the un-archived database at every transaction."""
        store = ArchiveStore()
        live = archive_before(database, "r", 5, store)
        reader = TieredReader(live, store)
        original = database.require("r")
        for txn in range(0, 10):
            before = original.find_state(txn)
            after = reader.rollback("r", txn)
            assert before == after

    def test_now_reads_live(self, database):
        store = ArchiveStore()
        live = archive_before(database, "r", 5, store)
        reader = TieredReader(live, store)
        assert reader.rollback("r", NOW) == Rollback("r", NOW).evaluate(
            database
        )

    def test_prehistory_is_empty_set(self, database):
        store = ArchiveStore()
        live = archive_before(database, "r", 5, store)
        reader = TieredReader(live, store)
        assert is_empty_set(reader.rollback("r", 0))

    def test_history_length_counts_both_tiers(self, database):
        store = ArchiveStore()
        live = archive_before(database, "r", 5, store)
        reader = TieredReader(live, store)
        assert reader.history_length("r") == 6


class TestArchiveStoreSerialization:
    def test_round_trip(self, database):
        store = ArchiveStore()
        live = archive_before(database, "r", 5, store)
        restored = ArchiveStore.loads(store.dumps())
        reader = TieredReader(live, restored)
        original = database.require("r")
        for txn in range(0, 10):
            assert reader.rollback("r", txn) == original.find_state(txn)

    def test_historical_states_round_trip(self):
        from repro.historical.state import HistoricalState

        h = Schema(["who"])
        states = [
            HistoricalState.from_rows(h, [(["ann"], [(0, 5 + i)])])
            for i in range(4)
        ]
        commands = [DefineRelation("t", "temporal")]
        commands += [ModifyState("t", Const(s)) for s in states]
        database = run(commands)
        store = ArchiveStore()
        live = archive_before(database, "t", 4, store)
        restored = ArchiveStore.loads(store.dumps())
        reader = TieredReader(live, restored)
        assert reader.rollback("t", 2) == states[0]

    def test_wrong_format_rejected(self):
        with pytest.raises(StorageError):
            ArchiveStore.loads('{"format": "nope"}')

    def test_empty_segment_rejected(self):
        with pytest.raises(StorageError):
            ArchiveStore().add_segment(ArchivedSegment("r", []))

    def test_non_increasing_pairs_rejected(self):
        with pytest.raises(StorageError):
            ArchivedSegment("r", [(kv(1), 5), (kv(2), 5)])
