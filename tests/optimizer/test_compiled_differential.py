"""The C6 differential suite for the optimized + compiled read path.

Section 5 of the paper: *any* physical evaluation strategy is correct
iff it is observation-equivalent to the simple semantics.  The read
path now stacks three strategies — cost-guided rewriting, compiled
(flattened, CSE'd) execution, and per-backend physical storage — so
this suite drives all of them against ``Expression.evaluate`` as the
oracle:

* hypothesis-random expression trees, optimized and compiled, against
  the plain evaluator on a semantic database;
* directed queries over **all five** storage backends, with the
  compiled plan executing directly against the backend's database view;
* string queries through plain, sharded (``shards=2``), durable and
  replica :class:`Session` objects — whose ``query`` path optimizes and
  compiles under the covers — against the oracle, twice each so the
  second call exercises the cached compiled plan.

Randomized parts follow the run-seed discipline (``REPRO_TEST_SEED``).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import DefineRelation, ModifyState
from repro.core.compile import compile_expression
from repro.core.database import Database
from repro.core.expressions import (
    Const,
    Difference,
    Expression,
    Product,
    Project,
    Rollback,
    Select,
    Union,
    evaluate,
    is_empty_set,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.lang.parser import parse_expression
from repro.lang.session import Session
from repro.optimizer import collect_statistics, optimize_with_cost
from repro.optimizer.equivalence import states_equal
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import And, Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    VersionedDatabase,
)
from repro.storage.versioned_db import _BackendDatabaseView

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
XY = Schema([Attribute("x", INTEGER), Attribute("y", INTEGER)])
CATALOG = {"r": KV, "s": KV, "t": XY}

PK = Comparison(attr("k"), ">", lit(4))
PV = Comparison(attr("v"), "<", lit(3))
PX = Comparison(attr("x"), "=", lit(1))


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


def xy(*rows):
    return SnapshotState(XY, [list(r) for r in rows])


def optimized_compiled(query: Expression, database) -> object:
    """The full physical read path: statistics → cost-guided rewrite →
    compiled plan → execution against ``database``."""
    stats = collect_statistics(database)
    plan = compile_expression(
        optimize_with_cost(query, CATALOG, stats)
    )
    return plan(database)


# ---------------------------------------------------------------------------
# hypothesis-random trees against the plain evaluator
# ---------------------------------------------------------------------------

_LEAVES = st.one_of(
    st.builds(Const, kv_states(max_rows=4)),
    st.sampled_from(
        [
            Rollback("r", NOW),
            Rollback("r", 1),
            Rollback("r", 2),
            Rollback("s", NOW),
        ]
    ),
)

#: Schema-preserving combinators, so every random tree is well-typed.
_TREES = st.recursive(
    _LEAVES,
    lambda children: st.one_of(
        st.builds(Union, children, children),
        st.builds(Difference, children, children),
        st.builds(lambda e: Select(e, PK), children),
        st.builds(lambda e: Select(e, PV), children),
        st.builds(lambda e: Select(e, And(PK, PV)), children),
        st.builds(lambda e: Project(e, ("k", "v")), children),
    ),
    max_leaves=8,
)


class TestRandomTrees:
    @settings(max_examples=60, deadline=None)
    @given(_TREES, kv_states(max_rows=5), kv_states(max_rows=5))
    def test_optimized_compiled_equals_evaluate(self, query, s1, s2):
        database = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", Const(s1)),
                ModifyState("r", Const(s2)),
                DefineRelation("s", "rollback"),
                ModifyState("s", Const(s2)),
            ]
        )
        oracle = evaluate(query, database)
        physical = optimized_compiled(query, database)
        if is_empty_set(oracle):
            assert is_empty_set(physical)
        else:
            assert states_equal(oracle, physical)

    @settings(max_examples=30, deadline=None)
    @given(_TREES)
    def test_projection_on_top(self, query):
        database = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", Const(kv((1, 1), (5, 2), (7, 0)))),
                DefineRelation("s", "rollback"),
                ModifyState("s", Const(kv((5, 5), (9, 1)))),
            ]
        )
        wrapped = Project(query, ("k",))
        oracle = evaluate(wrapped, database)
        physical = optimized_compiled(wrapped, database)
        if is_empty_set(oracle):
            assert is_empty_set(physical)
        else:
            assert states_equal(oracle, physical)


# ---------------------------------------------------------------------------
# all five storage backends
# ---------------------------------------------------------------------------

BACKENDS = [
    FullCopyBackend,
    DeltaBackend,
    ReverseDeltaBackend,
    CheckpointDeltaBackend,
    TupleTimestampBackend,
]

STREAM = [
    DefineRelation("r", "rollback"),
    ModifyState("r", Const(kv((1, 10), (2, 20)))),
    ModifyState("r", Union(Rollback("r"), Const(kv((5, 1), (7, 2))))),
    ModifyState(
        "r",
        Difference(
            Rollback("r"),
            Select(Rollback("r"), Comparison(attr("k"), "=", lit(1))),
        ),
    ),
    DefineRelation("s", "rollback"),
    ModifyState("s", Union(Rollback("r", 2), Const(kv((9, 0))))),
    DefineRelation("t", "rollback"),
    ModifyState("t", Const(xy((1, 7), (5, 8)))),
]

QUERIES = [
    Select(Union(Rollback("r", NOW), Rollback("r", 2)), PK),
    Select(Union(Rollback("r", NOW), Rollback("s", NOW)), And(PK, PV)),
    Difference(Rollback("r", NOW), Select(Rollback("r", NOW), PK)),
    Project(
        Select(
            Product(Rollback("r", NOW), Rollback("t", NOW)),
            And(PK, PX),
        ),
        ("k", "x"),
    ),
    Union(Rollback("r", 1), Rollback("r", 3)),  # historical probes
]


class TestAllBackends:
    @pytest.mark.parametrize(
        "backend_cls", BACKENDS, ids=lambda cls: cls.__name__
    )
    def test_compiled_path_observation_equivalent(self, backend_cls):
        versioned = VersionedDatabase(backend_cls())
        oracle_db = run(STREAM)
        versioned.execute_all(STREAM)
        view = _BackendDatabaseView(
            versioned.backend, versioned.transaction_number
        )
        for query in QUERIES:
            oracle = evaluate(query, oracle_db)
            interpreted = versioned.evaluate(query)
            compiled = optimized_compiled(query, view)
            if is_empty_set(oracle):
                assert is_empty_set(interpreted)
                assert is_empty_set(compiled)
            else:
                assert states_equal(oracle, interpreted)
                assert states_equal(oracle, compiled)

    @pytest.mark.parametrize(
        "backend_cls", BACKENDS, ids=lambda cls: cls.__name__
    )
    def test_backend_statistics_feed_the_rewrite(self, backend_cls):
        versioned = VersionedDatabase(backend_cls())
        versioned.execute_all(STREAM)
        stats = collect_statistics(versioned)
        assert stats.get("r") == 3.0  # (2,20),(5,1),(7,2) after delete
        assert stats.version_count("r") == 3


# ---------------------------------------------------------------------------
# sessions: plain, sharded, durable, replica
# ---------------------------------------------------------------------------

SESSION_PROGRAM = """
define_relation(r, rollback);
modify_state(r, state (k: integer, v: integer) { (1, 10), (2, 20) });
modify_state(r, rollback(r, now) union state (k: integer, v: integer) { (5, 1), (7, 2) });
define_relation(t, rollback);
modify_state(t, state (x: integer, y: integer) { (1, 7), (5, 8) });
"""

SESSION_QUERIES = [
    "select [k > 4] (rollback(r, now) union rollback(r, 2))",
    "project [k] (select [k > 4 and v < 3] (rollback(r, now)))",
    "rollback(r, now) minus select [k > 4] (rollback(r, now))",
    "project [k, x] (select [k = x] (rollback(r, now) times rollback(t, now)))",
]


def check_session(session: Session, oracle_db: Database) -> None:
    """Every query, twice (second run hits the cached compiled plan),
    against the plain evaluator on the oracle database value."""
    for source in SESSION_QUERIES:
        oracle = evaluate(parse_expression(source), oracle_db)
        first = session.query(source)
        second = session.query(source)
        if is_empty_set(oracle):
            assert is_empty_set(first) and is_empty_set(second)
        else:
            assert states_equal(oracle, first)
            assert states_equal(oracle, second)


class TestSessions:
    def test_plain_session(self):
        session = Session()
        session.execute(SESSION_PROGRAM)
        check_session(session, session.database)
        assert session.plan_cache_info()["hits"] == len(SESSION_QUERIES)

    def test_sharded_session(self):
        session = Session(shards=2)
        session.execute(SESSION_PROGRAM)
        oracle_db = session.database
        check_session(session, oracle_db)
        session.close()

    def test_durable_and_replica_sessions(self, tmp_path):
        primary = Session(str(tmp_path / "primary"))
        primary.execute(SESSION_PROGRAM)
        replica = Session(replica_of=primary)
        try:
            check_session(primary, primary.database)
            check_session(replica, primary.database)
        finally:
            replica.close()
            primary.close()

    def test_seeded_random_workload_all_modes_agree(
        self, test_seed, tmp_path
    ):
        """A seeded random command stream applied to plain, sharded and
        durable sessions; every mode must answer every query like the
        plain evaluator on its own database value (and the values must
        agree across modes)."""
        rng = random.Random(test_seed)
        commands = [
            "define_relation(r, rollback)",
            "modify_state(r, state (k: integer, v: integer) { (0, 0) })",
        ]
        for _ in range(12):
            k = rng.randrange(10)
            v = rng.randrange(5)
            if rng.random() < 0.7:
                commands.append(
                    "modify_state(r, rollback(r, now) union state "
                    f"(k: integer, v: integer) {{ ({k}, {v}) }})"
                )
            else:
                commands.append(
                    "modify_state(r, rollback(r, now) minus select "
                    f"[k = {k}] (rollback(r, now)))"
                )
        txn = rng.randrange(2, 8)
        queries = [
            f"select [k > {rng.randrange(5)}] (rollback(r, now) "
            f"union rollback(r, {txn}))",
            f"project [k] (select [v < {rng.randrange(1, 5)}] "
            "(rollback(r, now)))",
        ]

        plain = Session()
        sharded = Session(shards=2)
        durable = Session(str(tmp_path / "durable"))
        try:
            for command in commands:
                plain.execute(command)
                sharded.execute(command)
                durable.execute(command)
            assert sharded.database == plain.database
            assert durable.database == plain.database
            for source in queries:
                oracle = evaluate(
                    parse_expression(source), plain.database
                )
                for session in (plain, sharded, durable):
                    for _ in range(2):
                        result = session.query(source)
                        if is_empty_set(oracle):
                            assert is_empty_set(result)
                        else:
                            assert states_equal(oracle, result)
        finally:
            sharded.close()
            durable.close()
