"""Tests for individual rewrite rules: applicability + semantics
preservation, evaluated on databases that include rollback leaves (this is
the executable form of the paper's claim C2 — the laws survive the
extension)."""

import pytest
from hypothesis import given, settings

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Difference,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.optimizer.equivalence import states_equal
from repro.optimizer.rules import (
    CombineSelects,
    EliminateIdentityProject,
    MergeProjects,
    PushProjectBelowUnion,
    PushSelectBelowDifference,
    PushSelectBelowProduct,
    PushSelectBelowUnion,
    SplitConjunctiveSelect,
)
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import And, Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
XY = Schema([Attribute("x", INTEGER), Attribute("y", INTEGER)])
CATALOG = {"r": KV, "s": KV, "t": XY}

PK = Comparison(attr("k"), ">", lit(4))
PV = Comparison(attr("v"), "<", lit(3))
PX = Comparison(attr("x"), "=", lit(1))
P_CROSS = Comparison(attr("k"), "=", attr("x"))


def make_db(r_state, s_state=None, t_state=None):
    commands = [
        DefineRelation("r", "rollback"),
        ModifyState("r", Const(r_state)),
    ]
    if s_state is not None:
        commands += [
            DefineRelation("s", "rollback"),
            ModifyState("s", Const(s_state)),
        ]
    if t_state is not None:
        commands += [
            DefineRelation("t", "rollback"),
            ModifyState("t", Const(t_state)),
        ]
    return run(commands)


def check_rule(rule, expression, database):
    """The rule fires and the rewritten tree evaluates identically."""
    rewritten = rule.apply(expression, CATALOG)
    assert rewritten is not None, f"{rule.name} did not fire"
    assert rewritten != expression
    assert states_equal(
        expression.evaluate(database), rewritten.evaluate(database)
    )
    return rewritten


class TestSplitAndCombine:
    @settings(max_examples=40)
    @given(kv_states())
    def test_split_conjunctive_select(self, state):
        db = make_db(state)
        expression = Select(Rollback("r"), And(PK, PV))
        rewritten = check_rule(SplitConjunctiveSelect(), expression, db)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.operand, Select)

    @settings(max_examples=40)
    @given(kv_states())
    def test_combine_selects(self, state):
        db = make_db(state)
        expression = Select(Select(Rollback("r"), PV), PK)
        rewritten = check_rule(CombineSelects(), expression, db)
        assert isinstance(rewritten.predicate, And)

    def test_split_needs_conjunction(self):
        assert (
            SplitConjunctiveSelect().apply(
                Select(Rollback("r"), PK), CATALOG
            )
            is None
        )


class TestSelectPushdown:
    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_push_below_union(self, r_state, s_state):
        db = make_db(r_state, s_state)
        expression = Select(Union(Rollback("r"), Rollback("s")), PK)
        rewritten = check_rule(PushSelectBelowUnion(), expression, db)
        assert isinstance(rewritten, Union)

    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_push_below_difference(self, r_state, s_state):
        db = make_db(r_state, s_state)
        expression = Select(
            Difference(Rollback("r"), Rollback("s")), PK
        )
        rewritten = check_rule(
            PushSelectBelowDifference(), expression, db
        )
        assert isinstance(rewritten, Difference)
        assert isinstance(rewritten.left, Select)

    @settings(max_examples=30)
    @given(kv_states())
    def test_push_below_product_left(self, r_state):
        t_state = SnapshotState(XY, [[1, 1], [2, 2]])
        db = make_db(r_state, t_state=t_state)
        expression = Select(Product(Rollback("r"), Rollback("t")), PK)
        rewritten = check_rule(PushSelectBelowProduct(), expression, db)
        assert isinstance(rewritten, Product)
        assert isinstance(rewritten.left, Select)

    @settings(max_examples=30)
    @given(kv_states())
    def test_push_below_product_right(self, r_state):
        t_state = SnapshotState(XY, [[1, 1], [2, 2]])
        db = make_db(r_state, t_state=t_state)
        expression = Select(Product(Rollback("r"), Rollback("t")), PX)
        rewritten = check_rule(PushSelectBelowProduct(), expression, db)
        assert isinstance(rewritten.right, Select)

    def test_cross_predicate_not_pushed(self):
        expression = Select(
            Product(Rollback("r"), Rollback("t")), P_CROSS
        )
        assert (
            PushSelectBelowProduct().apply(expression, CATALOG) is None
        )


class TestProjectionRules:
    @settings(max_examples=40)
    @given(kv_states())
    def test_merge_projects(self, state):
        db = make_db(state)
        expression = Project(Project(Rollback("r"), ["k", "v"]), ["k"])
        rewritten = check_rule(MergeProjects(), expression, db)
        assert isinstance(rewritten, Project)
        assert rewritten.operand == Rollback("r")

    def test_merge_requires_subset(self):
        expression = Project(Project(Rollback("r"), ["k"]), ["v"])
        assert MergeProjects().apply(expression, CATALOG) is None

    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_push_project_below_union(self, r_state, s_state):
        db = make_db(r_state, s_state)
        expression = Project(Union(Rollback("r"), Rollback("s")), ["k"])
        rewritten = check_rule(PushProjectBelowUnion(), expression, db)
        assert isinstance(rewritten, Union)

    @settings(max_examples=40)
    @given(kv_states())
    def test_eliminate_identity_project(self, state):
        db = make_db(state)
        expression = Project(Rollback("r"), ["k", "v"])
        rewritten = check_rule(
            EliminateIdentityProject(), expression, db
        )
        assert rewritten == Rollback("r")

    def test_reordering_projection_is_not_identity(self):
        expression = Project(Rollback("r"), ["v", "k"])
        assert (
            EliminateIdentityProject().apply(expression, CATALOG)
            is None
        )
