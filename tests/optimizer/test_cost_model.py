"""Tests for the single-pass cost analyzer and the statistics layer.

The headline regression: pricing a plan must be linear in its number of
distinct nodes.  The original formulation recomputed every node's
cardinality from scratch at every ancestor, so a selection chain of
depth *n* paid ~n²/2 node visits; :class:`PlanAnalysis.node_visits`
counts actual visits so the test asserts the complexity class directly
instead of timing anything.
"""

from __future__ import annotations

import pytest

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.optimizer.cost import (
    DEFAULT_RELATION_CARD,
    VERSION_ACCESS_WEIGHT,
    PlanAnalysis,
    analyze,
    estimate_cardinality,
    estimate_cost,
    explain,
)
from repro.optimizer.stats import Statistics, collect_statistics
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


def pk(value=4):
    return Comparison(attr("k"), ">", lit(value))


class TestLinearCost:
    def test_depth_1000_chain_visits_each_node_once(self):
        """σ(σ(...σ(ρ)...)) of depth 1000: 1001 node visits, not ~500k.

        The counter, not wall clock, is the assertion — the O(n²)
        formulation visited ``Σ(i+1) ≈ n²/2`` nodes for the same tree.
        """
        expression = Rollback("r", NOW)
        depth = 1000
        for index in range(depth):
            expression = Select(expression, pk(index))
        analysis = analyze(expression, {"r": 10})
        assert analysis.node_visits == depth + 1

    def test_visits_scale_linearly_not_quadratically(self):
        def visits(depth):
            expression = Rollback("r", NOW)
            for index in range(depth):
                expression = Select(expression, pk(index))
            return analyze(expression, {"r": 10}).node_visits

        # doubling the depth doubles the visits (+1 for the leaf);
        # the quadratic formulation would quadruple them
        assert visits(500) == 501
        assert visits(1000) == 1000 + 1

    def test_shared_subtrees_priced_once_costed_per_occurrence(self):
        leaf = Rollback("r", NOW)
        union = Union(leaf, leaf)
        analysis = analyze(union, {"r": 10})
        # 2 distinct nodes visited, but the leaf's 10 tuples are paid
        # once per occurrence: cost = 20 (union) + 10 + 10
        assert analysis.node_visits == 2
        assert analysis.cost() == 40.0

    def test_explain_matches_single_pass_estimates(self):
        leaf = Rollback("r", NOW)
        text = explain(Select(Union(leaf, leaf), pk()), {"r": 10})
        lines = text.splitlines()
        assert "Select" in lines[0] and "≈7 tuples" in lines[0]
        assert "Union" in lines[1] and "≈20 tuples" in lines[1]
        assert lines[2].startswith("    Rollback")
        assert len(lines) == 4

    def test_api_compatibility(self):
        leaf = Rollback("r", NOW)
        assert estimate_cardinality(leaf) == DEFAULT_RELATION_CARD
        assert estimate_cardinality(leaf, {"r": 10}) == 10.0
        assert estimate_cost(Union(leaf, leaf), {"r": 10}) == 40.0

    def test_analysis_exposes_per_node_values(self):
        leaf = Rollback("r", NOW)
        select = Select(leaf, pk())
        analysis = analyze(select, {"r": 100})
        assert analysis.cardinality(leaf) == 100.0
        assert analysis.cardinality(select) == pytest.approx(33.0)
        assert analysis.cost(leaf) == 100.0
        assert analysis.cost() == pytest.approx(133.0)


class TestVersionAwareCost:
    def test_dict_stats_charge_no_version_cost(self):
        leaf = Rollback("r", 1)
        assert estimate_cost(leaf, {"r": 10}) == 10.0

    def test_statistics_charge_reconstruction_per_rollback(self):
        leaf = Rollback("r", 1)
        stats = Statistics({"r": 10.0}, {"r": 40})
        assert estimate_cost(leaf, stats) == pytest.approx(
            10.0 + VERSION_ACCESS_WEIGHT * 40
        )

    def test_deep_history_prices_higher_than_shallow(self):
        query = Union(Rollback("deep", 1), Rollback("shallow", 1))
        deep = Statistics(
            {"deep": 10.0, "shallow": 10.0},
            {"deep": 500, "shallow": 2},
        )
        shallow = Statistics(
            {"deep": 10.0, "shallow": 10.0},
            {"deep": 2, "shallow": 2},
        )
        assert estimate_cost(query, deep) > estimate_cost(query, shallow)


class TestStatistics:
    def test_mapping_protocol(self):
        stats = Statistics({"r": 10.0, "s": 3.0}, {"r": 7})
        assert stats.get("r") == 10.0
        assert stats.get("missing", 42.0) == 42.0
        assert stats["s"] == 3.0
        assert "r" in stats and "missing" not in stats
        assert sorted(stats) == ["r", "s"]
        assert len(stats) == 2
        assert stats.version_count("r") == 7
        assert stats.version_count("missing") == 0

    def test_collect_from_semantic_database(self):
        database = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", Const(kv((1, 10), (2, 20)))),
                ModifyState("r", Const(kv((1, 11), (2, 21), (3, 31)))),
            ]
        )
        stats = collect_statistics(database)
        assert stats.get("r") == 3.0
        assert stats.version_count("r") == 2
        assert stats.latest_txn("r") == database.transaction_number

    def test_collect_from_versioned_database(self):
        from repro.storage import DeltaBackend, VersionedDatabase

        versioned = VersionedDatabase(DeltaBackend())
        versioned.execute(DefineRelation("r", "rollback"))
        versioned.execute(ModifyState("r", Const(kv((1, 10)))))
        versioned.execute(
            ModifyState("r", Const(kv((1, 10), (2, 20))))
        )
        stats = collect_statistics(versioned)
        assert stats.get("r") == 2.0
        assert stats.version_count("r") == 2

    def test_collect_from_session(self):
        from repro.lang.session import Session

        session = Session()
        session.execute(
            "define_relation(r, rollback); "
            "modify_state(r, state (k: integer, v: integer) "
            "{ (1, 10), (2, 20) });"
        )
        stats = session.statistics()
        assert stats.get("r") == 2.0
        assert stats.version_count("r") == 1

    def test_unknown_source_yields_empty_statistics(self):
        stats = collect_statistics(object())
        assert len(stats) == 0
        assert stats.get("anything") is None

    def test_statistics_feed_cost_functions_as_stats_mapping(self):
        stats = Statistics({"r": 10.0})
        leaf = Rollback("r", NOW)
        assert estimate_cardinality(Union(leaf, leaf), stats) == 20.0
