"""Tests for the rewriter, schema inference and cost model."""

import pytest
from hypothesis import given, settings

from repro.errors import SchemaError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.optimizer.cost import estimate_cardinality, estimate_cost, explain
from repro.optimizer.equivalence import (
    expressions_equivalent,
    states_equal,
)
from repro.optimizer.rewriter import Rewriter, optimize
from repro.optimizer.schema_inference import infer_schema
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import And, Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
XY = Schema([Attribute("x", INTEGER), Attribute("y", INTEGER)])
CATALOG = {"r": KV, "t": XY}


def make_db(r_state, t_state):
    return run(
        [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(r_state)),
            DefineRelation("t", "rollback"),
            ModifyState("t", Const(t_state)),
        ]
    )


class TestSchemaInference:
    def test_const(self):
        assert infer_schema(Const(SnapshotState(KV, []))) == KV

    def test_rollback_uses_catalog(self):
        assert infer_schema(Rollback("r"), CATALOG) == KV

    def test_rollback_missing_from_catalog_raises(self):
        with pytest.raises(SchemaError):
            infer_schema(Rollback("ghost"), CATALOG)

    def test_binary_operators(self):
        assert infer_schema(
            Union(Rollback("r"), Rollback("r")), CATALOG
        ) == KV
        product = Product(Rollback("r"), Rollback("t"))
        assert infer_schema(product, CATALOG).names == (
            "k",
            "v",
            "x",
            "y",
        )

    def test_incompatible_union_raises(self):
        with pytest.raises(SchemaError):
            infer_schema(Union(Rollback("r"), Rollback("t")), CATALOG)

    def test_project_select_rename_derive(self):
        assert infer_schema(
            Project(Rollback("r"), ["v"]), CATALOG
        ).names == ("v",)
        assert infer_schema(
            Select(Rollback("r"), Comparison(attr("k"), "=", lit(1))),
            CATALOG,
        ) == KV
        assert infer_schema(
            Rename(Rollback("r"), {"k": "key"}), CATALOG
        ).names == ("key", "v")
        assert infer_schema(Derive(Rollback("r")), CATALOG) == KV


class TestRewriter:
    def test_reaches_fixpoint_and_traces(self):
        query = Select(
            Product(Rollback("r"), Rollback("t")),
            And(
                Comparison(attr("k"), "=", attr("x")),
                Comparison(attr("y"), "=", lit(1)),
            ),
        )
        rewriter = Rewriter(catalog=CATALOG)
        optimized = rewriter.rewrite(query)
        assert optimized != query
        assert rewriter.trace  # at least one rule fired
        # the cross-table half stays above; the single-table half is
        # pushed onto the t side
        assert isinstance(optimized, Select)
        assert isinstance(optimized.operand, Product)
        assert isinstance(optimized.operand.right, Select)

    def test_idempotent(self):
        query = Select(
            Product(Rollback("r"), Rollback("t")),
            Comparison(attr("y"), "=", lit(1)),
        )
        once = optimize(query, CATALOG)
        twice = optimize(once, CATALOG)
        assert once == twice

    @settings(max_examples=30)
    @given(kv_states())
    def test_optimize_preserves_semantics(self, r_state):
        t_state = SnapshotState(XY, [[1, 1], [2, 9], [3, 1]])
        db = make_db(r_state, t_state)
        query = Project(
            Select(
                Product(Rollback("r"), Rollback("t")),
                And(
                    Comparison(attr("k"), ">", lit(2)),
                    Comparison(attr("y"), "=", lit(1)),
                ),
            ),
            ["k", "x"],
        )
        optimized = optimize(query, CATALOG)
        assert states_equal(query.evaluate(db), optimized.evaluate(db))

    def test_optimize_reduces_estimated_cost(self):
        stats = {"r": 1000, "t": 1000}
        query = Select(
            Product(Rollback("r"), Rollback("t")),
            And(
                Comparison(attr("k"), ">", lit(2)),
                Comparison(attr("y"), "=", lit(1)),
            ),
        )
        optimized = optimize(query, CATALOG)
        assert estimate_cost(optimized, stats) < estimate_cost(
            query, stats
        )


class TestCostModel:
    def test_const_cardinality_is_exact(self):
        state = SnapshotState(KV, [[1, 1], [2, 2]])
        assert estimate_cardinality(Const(state)) == 2.0

    def test_rollback_uses_stats(self):
        assert estimate_cardinality(Rollback("r"), {"r": 500}) == 500.0

    def test_product_multiplies(self):
        e = Product(Rollback("r"), Rollback("t"))
        assert estimate_cardinality(e, {"r": 10, "t": 20}) == 200.0

    def test_union_adds_difference_keeps_left(self):
        stats = {"r": 10, "t": 20}
        assert (
            estimate_cardinality(
                Union(Rollback("r"), Rollback("r")), stats
            )
            == 20.0
        )
        assert (
            estimate_cardinality(
                Difference(Rollback("r"), Rollback("r")), stats
            )
            == 10.0
        )

    def test_cost_sums_node_cardinalities(self):
        e = Union(Rollback("r"), Rollback("r"))
        assert estimate_cost(e, {"r": 10}) == 40.0  # 20 + 10 + 10

    def test_explain_renders_tree(self):
        e = Select(
            Union(Rollback("r"), Rollback("r")),
            Comparison(attr("k"), "=", lit(1)),
        )
        text = explain(e, {"r": 10})
        assert "Select" in text
        assert "Union" in text
        assert "Rollback[r" in text
        assert text.count("\n") == 3


class TestEquivalenceChecker:
    @settings(max_examples=30)
    @given(kv_states())
    def test_equivalent_expressions_accepted(self, state):
        db = make_db(state, SnapshotState(XY, []))
        left = Select(Rollback("r"), Comparison(attr("k"), ">", lit(2)))
        right = Difference(
            Rollback("r"),
            Select(Rollback("r"), Comparison(attr("k"), "<=", lit(2))),
        )
        assert expressions_equivalent(left, right, [db])

    def test_inequivalent_expressions_rejected(self):
        db = make_db(
            SnapshotState(KV, [[1, 1]]), SnapshotState(XY, [])
        )
        left = Rollback("r")
        right = Difference(Rollback("r"), Rollback("r"))
        assert not expressions_equivalent(left, right, [db])
