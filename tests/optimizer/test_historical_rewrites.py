"""The rewrite rules hold over *historical* operands too.

The paper's orthogonality claim implies the algebraic laws are not
specific to snapshot states: because the expression nodes dispatch on the
state kind and the historical operators satisfy the same identities
(union distributivity, the delete rewrite, ...), every rewrite must
preserve results when the leaves evaluate to historical states.  These
property tests check exactly that, closing the loop between claims C2
and C5.
"""

import pytest
from hypothesis import given, settings

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Difference,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.optimizer import (
    DeduplicateUnion,
    MergeProjects,
    PushProjectBelowUnion,
    PushSelectBelowDifference,
    PushSelectBelowProduct,
    PushSelectBelowUnion,
    RewriteDeleteAsNegatedSelect,
    SplitConjunctiveSelect,
    optimize,
)
from repro.optimizer.equivalence import states_equal
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import And, Comparison, attr, lit
from repro.snapshot.schema import Schema

from tests.conftest import kv_historical_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
XY = Schema([Attribute("x", INTEGER), Attribute("y", INTEGER)])
CATALOG = {"h1": KV, "h2": KV, "hx": XY}

PK = Comparison(attr("k"), ">", lit(4))
PV = Comparison(attr("v"), "<", lit(3))


def temporal_db(h1, h2, hx=None):
    commands = [
        DefineRelation("h1", "temporal"),
        ModifyState("h1", Const(h1)),
        DefineRelation("h2", "temporal"),
        ModifyState("h2", Const(h2)),
    ]
    if hx is not None:
        commands += [
            DefineRelation("hx", "temporal"),
            ModifyState("hx", Const(hx)),
        ]
    return run(commands)


def check(rule, expression, db):
    rewritten = rule.apply(expression, CATALOG)
    assert rewritten is not None
    assert states_equal(
        expression.evaluate(db), rewritten.evaluate(db)
    )


@settings(max_examples=30)
@given(kv_historical_states(), kv_historical_states())
def test_select_pushes_below_historical_union(h1, h2):
    db = temporal_db(h1, h2)
    check(
        PushSelectBelowUnion(),
        Select(Union(Rollback("h1"), Rollback("h2")), PK),
        db,
    )


@settings(max_examples=30)
@given(kv_historical_states(), kv_historical_states())
def test_select_pushes_below_historical_difference(h1, h2):
    db = temporal_db(h1, h2)
    check(
        PushSelectBelowDifference(),
        Select(Difference(Rollback("h1"), Rollback("h2")), PK),
        db,
    )


@settings(max_examples=30)
@given(kv_historical_states(), kv_historical_states())
def test_split_conjunctive_select_historical(h1, h2):
    db = temporal_db(h1, h2)
    check(
        SplitConjunctiveSelect(),
        Select(Rollback("h1"), And(PK, PV)),
        db,
    )


@settings(max_examples=30)
@given(kv_historical_states(), kv_historical_states())
def test_merge_projects_historical(h1, h2):
    db = temporal_db(h1, h2)
    check(
        MergeProjects(),
        Project(Project(Rollback("h1"), ["k", "v"]), ["k"]),
        db,
    )


@settings(max_examples=30)
@given(kv_historical_states(), kv_historical_states())
def test_project_pushes_below_historical_union(h1, h2):
    db = temporal_db(h1, h2)
    check(
        PushProjectBelowUnion(),
        Project(Union(Rollback("h1"), Rollback("h2")), ["k"]),
        db,
    )


@settings(max_examples=30)
@given(kv_historical_states(), kv_historical_states())
def test_delete_rewrite_historical(h1, h2):
    """``E −̂ σ̂_F(E) = σ̂_{¬F}(E)`` — the delete rewrite is sound in the
    historical algebra because −̂ removes the *entire* valid time of
    value-matching tuples, exactly what negated value selection keeps."""
    db = temporal_db(h1, h2)
    check(
        RewriteDeleteAsNegatedSelect(),
        Difference(Rollback("h1"), Select(Rollback("h1"), PK)),
        db,
    )


@settings(max_examples=30)
@given(kv_historical_states(), kv_historical_states())
def test_deduplicate_union_historical(h1, h2):
    """``E ∪̂ E = E`` holds because coalescing is idempotent."""
    db = temporal_db(h1, h2)
    check(
        DeduplicateUnion(),
        Union(Rollback("h1"), Rollback("h1")),
        db,
    )


@settings(max_examples=20)
@given(kv_historical_states())
def test_select_pushes_below_historical_product(h1):
    from repro.historical.state import HistoricalState

    hx = HistoricalState.from_rows(
        XY, [([1, 1], [(0, 30)]), ([2, 9], [(10, 50)])]
    )
    db = temporal_db(
        h1,
        HistoricalState.empty(KV),
        hx,
    )
    check(
        PushSelectBelowProduct(),
        Select(Product(Rollback("h1"), Rollback("hx")), PK),
        db,
    )


@settings(max_examples=20)
@given(kv_historical_states(), kv_historical_states())
def test_full_optimize_preserves_historical_semantics(h1, h2):
    db = temporal_db(h1, h2)
    query = Project(
        Select(Union(Rollback("h1"), Rollback("h2")), And(PK, PV)),
        ["k"],
    )
    optimized = optimize(query, CATALOG)
    assert states_equal(query.evaluate(db), optimized.evaluate(db))
