"""Tests for update optimization (the paper's Section 1 benefit)."""

import pytest
from hypothesis import given, settings

from repro.core.commands import DefineRelation, ModifyState, Sequence
from repro.core.expressions import (
    Const,
    Difference,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.optimizer import (
    ALL_UPDATE_RULES,
    DeduplicateUnion,
    RewriteDeleteAsNegatedSelect,
    optimize_update,
)
from repro.quel import QuelTranslator, parse_statement
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, Not, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
CATALOG = {"r": KV}
P = Comparison(attr("k"), ">", lit(4))


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


class TestDeleteRewrite:
    def test_fires_on_delete_shape(self):
        delete = Difference(Rollback("r"), Select(Rollback("r"), P))
        rewritten = RewriteDeleteAsNegatedSelect().apply(
            delete, CATALOG
        )
        assert rewritten == Select(Rollback("r"), Not(P))

    def test_requires_matching_operands(self):
        mismatched = Difference(
            Rollback("r"), Select(Rollback("s"), P)
        )
        assert (
            RewriteDeleteAsNegatedSelect().apply(mismatched, CATALOG)
            is None
        )

    @settings(max_examples=40)
    @given(kv_states())
    def test_semantics_preserved(self, state):
        db = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", Const(state)),
            ]
        )
        delete = Difference(Rollback("r"), Select(Rollback("r"), P))
        rewritten = RewriteDeleteAsNegatedSelect().apply(
            delete, CATALOG
        )
        from repro.optimizer.equivalence import states_equal

        assert states_equal(delete.evaluate(db), rewritten.evaluate(db))


class TestDeduplicateUnion:
    def test_fires(self):
        doubled = Union(Rollback("r"), Rollback("r"))
        assert DeduplicateUnion().apply(doubled, CATALOG) == Rollback(
            "r"
        )

    def test_distinct_operands_left_alone(self):
        assert (
            DeduplicateUnion().apply(
                Union(Rollback("r"), Rollback("s")), CATALOG
            )
            is None
        )


class TestOptimizeUpdate:
    def test_quel_delete_gets_rewritten(self):
        translator = QuelTranslator({"r": KV})
        command = translator.translate(
            parse_statement("delete from r where k > 4")
        )
        optimized = optimize_update(command, CATALOG)
        assert isinstance(optimized, ModifyState)
        assert isinstance(optimized.expression, Select)
        assert isinstance(optimized.expression.predicate, Not)

    def test_define_relation_passes_through(self):
        command = DefineRelation("r", "rollback")
        assert optimize_update(command, CATALOG) is command

    def test_sequence_rewritten_componentwise(self):
        translator = QuelTranslator({"r": KV})
        delete = translator.translate(
            parse_statement("delete from r where k > 4")
        )
        program = Sequence(DefineRelation("r", "rollback"), delete)
        optimized = optimize_update(program, CATALOG)
        assert isinstance(optimized, Sequence)
        assert isinstance(optimized.second.expression, Select)

    @settings(max_examples=30)
    @given(kv_states(), kv_states())
    def test_optimized_program_builds_identical_database(self, s1, s2):
        translator = QuelTranslator({"r": KV})
        commands = [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(s1)),
            ModifyState("r", Union(Rollback("r"), Const(s2))),
            translator.translate(
                parse_statement("delete from r where k > 4")
            ),
            ModifyState(
                "r", Union(Rollback("r"), Rollback("r"))
            ),  # dedup target
        ]
        plain = run(commands)
        optimized = run(
            [optimize_update(c, CATALOG) for c in commands]
        )
        assert plain == optimized

    def test_unchanged_command_returned_as_is(self):
        command = ModifyState("r", Const(kv((1, 1))))
        assert optimize_update(command, CATALOG) is command
