"""Tests for the rollback-oriented rewrite rules and the cost-guided
rewriter.

The new rules move selections and projections toward ``ρ`` leaves so
fewer historical states are materialized; each is property-checked for
semantics preservation over randomized snapshot *and* historical
operands (claims C2/C5).  The cost-guided driver is checked for its
contract: the returned plan is observation-equivalent to the input and
never prices higher — rewrites that would raise the estimate are
recorded in the trace as rejected and do not survive.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Derive,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.historical.predicates import ValidAt
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import ValidTime
from repro.historical.tuples import HistoricalTuple
from repro.optimizer import (
    CostGuidedRewriter,
    EXTENDED_RULES,
    PushProjectBelowProduct,
    PushProjectBelowSelect,
    PushSelectBelowDerive,
    estimate_cost,
    optimize,
    optimize_with_cost,
)
from repro.optimizer.equivalence import states_equal
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import And, Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_historical_states, kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
XY = Schema([Attribute("x", INTEGER), Attribute("y", INTEGER)])
CATALOG = {"r": KV, "t": XY, "h1": KV, "hx": XY}

PK = Comparison(attr("k"), ">", lit(4))
PX = Comparison(attr("x"), "=", lit(1))


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


def xy_of(state):
    """Relabel a random k/v snapshot state onto the x/y schema."""
    return SnapshotState(XY, [list(t.values) for t in state.tuples])


def hxy_of(state):
    """Relabel a random k/v historical state onto the x/y schema."""
    return HistoricalState(
        XY,
        [
            HistoricalTuple(
                list(t.value.values), t.valid_time, schema=XY
            )
            for t in state.tuples
        ],
    )


def snapshot_db(r_state, t_state=None):
    commands = [
        DefineRelation("r", "rollback"),
        ModifyState("r", Const(r_state)),
    ]
    if t_state is not None:
        commands += [
            DefineRelation("t", "rollback"),
            ModifyState("t", Const(t_state)),
        ]
    return run(commands)


def temporal_db(h1_state, hx_state=None):
    commands = [
        DefineRelation("h1", "temporal"),
        ModifyState("h1", Const(h1_state)),
    ]
    if hx_state is not None:
        commands += [
            DefineRelation("hx", "temporal"),
            ModifyState("hx", Const(hx_state)),
        ]
    return run(commands)


def check(rule, expression, database):
    rewritten = rule.apply(expression, CATALOG)
    assert rewritten is not None, f"{rule.name} did not fire"
    assert rewritten != expression
    assert states_equal(
        expression.evaluate(database), rewritten.evaluate(database)
    )
    return rewritten


class TestPushSelectBelowDerive:
    @settings(max_examples=30)
    @given(kv_historical_states())
    def test_commutes_with_derivation(self, h1):
        db = temporal_db(h1)
        expression = Select(
            Derive(
                Rollback("h1", NOW), ValidAt(ValidTime(), 5), ValidTime()
            ),
            PK,
        )
        rewritten = check(PushSelectBelowDerive(), expression, db)
        assert isinstance(rewritten, Derive)
        assert isinstance(rewritten.operand, Select)

    @settings(max_examples=30)
    @given(kv_historical_states())
    def test_commutes_with_default_derive(self, h1):
        db = temporal_db(h1)
        expression = Select(Derive(Rollback("h1", NOW)), PK)
        check(PushSelectBelowDerive(), expression, db)

    def test_inapplicable_without_derive(self):
        assert (
            PushSelectBelowDerive().apply(
                Select(Rollback("r", NOW), PK), CATALOG
            )
            is None
        )


class TestPushProjectBelowSelect:
    @settings(max_examples=30)
    @given(kv_states())
    def test_snapshot_commutes_when_refs_covered(self, state):
        db = snapshot_db(state)
        expression = Project(Select(Rollback("r", NOW), PK), ("k",))
        rewritten = check(PushProjectBelowSelect(), expression, db)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.operand, Project)

    @settings(max_examples=30)
    @given(kv_historical_states())
    def test_historical_commutes(self, h1):
        db = temporal_db(h1)
        expression = Select(Rollback("h1", NOW), PK)
        expression = Project(expression, ("k",))
        # catalog maps h1 to KV; rule needs only predicate refs ⊆ names
        check(PushProjectBelowSelect(), expression, db)

    def test_inapplicable_when_predicate_needs_dropped_attribute(self):
        expression = Project(
            Select(Rollback("r", NOW), PK), ("v",)
        )  # predicate reads k, projection keeps only v
        assert (
            PushProjectBelowSelect().apply(expression, CATALOG) is None
        )


class TestPushProjectBelowProduct:
    @settings(max_examples=25)
    @given(kv_states(max_rows=5), kv_states(max_rows=5))
    def test_snapshot_splits_ordered_partition(self, left, right):
        db = snapshot_db(left, xy_of(right))
        expression = Project(
            Product(Rollback("r", NOW), Rollback("t", NOW)), ("k", "x")
        )
        rewritten = check(PushProjectBelowProduct(), expression, db)
        assert isinstance(rewritten, Product)
        assert rewritten.left == Project(Rollback("r", NOW), ("k",))
        assert rewritten.right == Project(Rollback("t", NOW), ("x",))

    @settings(max_examples=25)
    @given(
        kv_historical_states(max_rows=4),
        kv_historical_states(max_rows=4),
    )
    def test_historical_splits(self, h1, hx):
        db = temporal_db(h1, hxy_of(hx))
        expression = Project(
            Product(Rollback("h1", NOW), Rollback("hx", NOW)),
            ("v", "y"),
        )
        check(PushProjectBelowProduct(), expression, db)

    def test_inapplicable_when_interleaved(self):
        expression = Project(
            Product(Rollback("r", NOW), Rollback("t", NOW)), ("x", "k")
        )  # right-side name first: not an ordered partition
        assert (
            PushProjectBelowProduct().apply(expression, CATALOG) is None
        )

    def test_inapplicable_when_one_side_empty(self):
        expression = Project(
            Product(Rollback("r", NOW), Rollback("t", NOW)), ("k", "v")
        )  # nothing kept from the right operand
        assert (
            PushProjectBelowProduct().apply(expression, CATALOG) is None
        )

    def test_inapplicable_without_catalog(self):
        expression = Project(
            Product(Rollback("r", NOW), Rollback("t", NOW)), ("k", "x")
        )
        assert PushProjectBelowProduct().apply(expression, {}) is None


class TestCostGuidedRewriter:
    def test_accepts_cost_reducing_pushdown(self):
        query = Select(
            Union(Rollback("r", NOW), Rollback("r", 1)), PK
        )
        rewriter = CostGuidedRewriter(
            catalog=CATALOG, stats={"r": 100.0}
        )
        optimized = rewriter.rewrite(query)
        assert rewriter.final_cost < rewriter.baseline_cost
        assert optimized != query
        assert any(accepted for _, _, _, accepted in rewriter.trace)

    def test_rejects_cost_raising_rewrite(self):
        # π below σ raises the estimate here; the gate must refuse it
        query = Project(Select(Rollback("r", NOW), PK), ("k",))
        rewriter = CostGuidedRewriter(
            catalog=CATALOG, stats={"r": 100.0}
        )
        optimized = rewriter.rewrite(query)
        assert optimized == query
        assert rewriter.final_cost == rewriter.baseline_cost
        assert rewriter.trace, "candidates should have been priced"
        assert all(not accepted for _, _, _, accepted in rewriter.trace)

    def test_never_costlier_and_equivalent(self):
        database = snapshot_db(
            kv((1, 1), (5, 2), (7, 0), (9, 3)),
            xy_of(kv((1, 0), (5, 1))),
        )
        queries = [
            Select(Union(Rollback("r", NOW), Rollback("r", 2)), PK),
            Project(
                Select(
                    Product(Rollback("r", NOW), Rollback("t", NOW)),
                    And(PK, PX),
                ),
                ("k", "x"),
            ),
            Union(Rollback("r", NOW), Rollback("r", NOW)),
            Project(Rollback("r", NOW), ("k", "v")),
        ]
        stats = {"r": 4.0, "t": 2.0}
        for query in queries:
            rewriter = CostGuidedRewriter(catalog=CATALOG, stats=stats)
            optimized = rewriter.rewrite(query)
            assert rewriter.final_cost <= rewriter.baseline_cost
            assert estimate_cost(optimized, stats) <= estimate_cost(
                query, stats
            )
            assert states_equal(
                query.evaluate(database), optimized.evaluate(database)
            )

    def test_missing_catalog_entry_does_not_break_rewrites(self):
        # schema-dependent rules can't type ρ(ghost); the rewrite
        # must degrade to a no-op, not raise
        query = Select(
            Product(Rollback("ghost", NOW), Rollback("r", NOW)), PK
        )
        rewriter = CostGuidedRewriter(catalog={}, stats={"r": 10.0})
        optimized = rewriter.rewrite(query)
        assert rewriter.final_cost <= rewriter.baseline_cost
        assert estimate_cost(optimized, {"r": 10.0}) <= estimate_cost(
            query, {"r": 10.0}
        )

    def test_optimize_with_cost_helper(self):
        query = Select(
            Union(Rollback("r", NOW), Rollback("r", 1)), PK
        )
        optimized = optimize_with_cost(
            query, CATALOG, {"r": 100.0}
        )
        assert estimate_cost(optimized, {"r": 100.0}) < estimate_cost(
            query, {"r": 100.0}
        )

    def test_extended_rules_fixpoint_terminates(self):
        # the full extended set must reach a fixpoint on a nested query
        query = Project(
            Select(
                Product(Rollback("r", NOW), Rollback("t", NOW)),
                And(PK, PX),
            ),
            ("k", "x"),
        )
        optimize(query, CATALOG, EXTENDED_RULES)  # must terminate

    @settings(max_examples=20)
    @given(kv_states(max_rows=6), kv_states(max_rows=6))
    def test_property_equivalence_on_random_states(self, a, b):
        database = snapshot_db(a, xy_of(b))
        query = Project(
            Select(
                Product(Rollback("r", NOW), Rollback("t", NOW)),
                And(PK, PX),
            ),
            ("k", "x"),
        )
        stats = {"r": float(len(a.tuples)), "t": float(len(b.tuples))}
        optimized = optimize_with_cost(query, CATALOG, stats)
        assert states_equal(
            query.evaluate(database), optimized.evaluate(database)
        )


class TestOptimizerMetrics:
    def test_counters_and_ratio(self):
        from repro.obsv import registry as obsv_registry
        from repro.obsv.registry import MetricsRegistry

        query = Select(
            Union(Rollback("r", NOW), Rollback("r", 1)), PK
        )
        registry = obsv_registry.enable(MetricsRegistry())
        try:
            rewriter = CostGuidedRewriter(
                catalog=CATALOG, stats={"r": 100.0}
            )
            rewriter.rewrite(query)
            snapshot = registry.snapshot()
        finally:
            obsv_registry.disable()
        counters = snapshot["counters"]
        assert counters["optimizer.plans_optimized"] == 1
        assert counters["optimizer.rewrites_considered"] >= 1
        assert counters["optimizer.rewrites_accepted"] >= 1
        assert (
            counters["optimizer.rewrites_considered"]
            == counters["optimizer.rewrites_accepted"]
            + counters["optimizer.rewrites_rejected"]
        )
        ratio = snapshot["histograms"]["optimizer.cost_ratio"]
        assert ratio["count"] == 1

    def test_disabled_is_silent(self):
        from repro.obsv import registry as obsv_registry

        assert not obsv_registry.enabled()
        optimize_with_cost(
            Select(Union(Rollback("r", NOW), Rollback("r", 1)), PK),
            CATALOG,
            {"r": 100.0},
        )
