"""Cluster topology mechanics: configuration validation, replica-served
reads, bounded staleness, per-shard failover, and topology changes."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.errors import ClusterError, StaleReadError
from repro.workloads.generators import StateGenerator

GEN = StateGenerator(seed=11, key_space=20)
S1 = GEN.snapshot_state(2)
S2 = GEN.snapshot_state(3)


def seed_cluster(cluster):
    cluster.execute(DefineRelation("r", "rollback"))
    cluster.execute(ModifyState("r", Const(S1)))
    cluster.execute(DefineRelation("s", "rollback"))
    cluster.execute(ModifyState("s", Const(S2)))
    return cluster


class TestConfig:
    def test_defaults(self):
        config = ClusterConfig()
        assert config.shards == 2
        assert config.replicas_per_shard == 1
        assert config.freshness == "fresh"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"shards": 0}, "at least 1 shard"),
            ({"replicas_per_shard": -1}, "replicas_per_shard"),
            ({"freshness": "eventual"}, "freshness"),
            ({"on_stale": "explode"}, "on_stale"),
            ({"max_lag": -3}, "max_lag"),
        ],
    )
    def test_invalid_topologies_are_rejected(self, kwargs, match):
        with pytest.raises(ClusterError, match=match):
            ClusterConfig(**kwargs)


class TestReads:
    def test_replica_serves_fresh_reads(self):
        with Cluster(ClusterConfig(shards=2, replicas_per_shard=1)) as c:
            seed_cluster(c)
            assert c.evaluate(Rollback("r", NOW)) == S1
            assert c.evaluate(Rollback("r", 2)) == S1
            # the fan-out read merged replica-served operands
            merged = c.evaluate(
                Union(Rollback("r", NOW), Rollback("s", NOW))
            )
            assert merged == c.evaluate_primary(
                Union(Rollback("r", NOW), Rollback("s", NOW))
            )

    def test_zero_replicas_falls_back_to_primaries(self):
        with Cluster(ClusterConfig(shards=2, replicas_per_shard=0)) as c:
            seed_cluster(c)
            assert c.replicas(0) == ()
            assert c.evaluate(Rollback("r", NOW)) == S1

    def test_round_robin_rotates_over_the_replica_set(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=3)) as c:
            seed_cluster(c)
            picked = [c._pick_replica(0) for _ in range(6)]
            assert picked[:3] == picked[3:]
            assert len(set(map(id, picked[:3]))) == 3

    def test_bounded_mode_rejects_a_lagging_replica(self):
        config = ClusterConfig(
            shards=1,
            replicas_per_shard=1,
            freshness="bounded",
            max_lag=0,
            on_stale="reject",
        )
        with Cluster(config) as c:
            seed_cluster(c)
            with pytest.raises(StaleReadError):
                c.evaluate(Rollback("r", NOW))
            # once caught up, the same read succeeds
            c.catch_up()
            assert c.evaluate(Rollback("r", NOW)) == S1

    def test_bounded_mode_can_serve_stale(self):
        config = ClusterConfig(
            shards=1,
            replicas_per_shard=1,
            freshness="bounded",
            max_lag=0,
            on_stale="serve",
        )
        with Cluster(config) as c:
            c.execute(DefineRelation("r", "rollback"))
            c.execute(ModifyState("r", Const(S1)))
            c.catch_up()
            c.execute(ModifyState("r", Const(S2)))
            # knowingly stale: the replica still holds the prior state
            assert c.evaluate(Rollback("r", NOW)) == S1
            c.catch_up()
            assert c.evaluate(Rollback("r", NOW)) == S2

    def test_lags_reports_per_shard_distances(self):
        with Cluster(ClusterConfig(shards=2, replicas_per_shard=2)) as c:
            seed_cluster(c)
            lags = c.lags()
            assert set(lags) == {0, 1}
            assert all(len(v) == 2 for v in lags.values())
            c.catch_up()
            assert all(
                lag == 0 for v in c.lags().values() for lag in v
            )


class TestFailover:
    def test_failover_swaps_the_primary_without_disturbing_others(self):
        with Cluster(ClusterConfig(shards=2, replicas_per_shard=2)) as c:
            seed_cluster(c)
            before = {i: c.primaries[i] for i in range(2)}
            shard = c.sharded.shard_of("r")
            other = 1 - shard
            c.failover(shard)
            assert c.primaries[shard] is not before[shard]
            assert c.primaries[other] is before[other]
            assert before[shard].closed
            assert len(c.replicas(shard)) == 1
            # reads and writes continue across the seam
            assert c.evaluate(Rollback("r", 2)) == S1
            c.execute(ModifyState("r", Const(S2)))
            assert c.evaluate(Rollback("r", NOW)) == S2

    def test_failover_without_replicas_is_refused(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=0)) as c:
            seed_cluster(c)
            with pytest.raises(ClusterError, match="no live replicas"):
                c.failover(0)

    def test_failover_of_unknown_shard_is_refused(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=1)) as c:
            with pytest.raises(ClusterError, match="no shard 7"):
                c.failover(7)

    def test_siblings_refollow_the_promoted_primary(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=2)) as c:
            seed_cluster(c)
            c.catch_up()
            c.failover(0)
            (sibling,) = c.replicas(0)
            c.execute(ModifyState("r", Const(S2)))
            sibling.catch_up()
            assert sibling.evaluate(Rollback("r", NOW)) == S2

    def test_explicit_index_refuses_an_already_promoted_replica(self):
        """An operator pointing at a replica promoted out-of-band gets
        the promoted-specific message, not the condemned one."""
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=2)) as c:
            seed_cluster(c)
            c.catch_up()
            c.replicas(0)[0].promote()
            with pytest.raises(ClusterError, match="already promoted"):
                c.failover(0, replica_index=0)

    def test_explicit_index_refuses_a_condemned_replica(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=2)) as c:
            seed_cluster(c)
            c.catch_up()
            c.replicas(0)[1]._diverged = True
            with pytest.raises(ClusterError, match="condemned"):
                c.failover(0, replica_index=1)
            # auto-selection skips the condemned replica and succeeds
            c.failover(0)
            assert c.evaluate(Rollback("r", NOW)) == S1

    def test_explicit_index_out_of_range_is_refused(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=1)) as c:
            seed_cluster(c)
            with pytest.raises(ClusterError, match="no replica 5"):
                c.failover(0, replica_index=5)

    def test_repeated_failover_drains_the_replica_set(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=2)) as c:
            seed_cluster(c)
            c.failover(0)
            c.failover(0)
            with pytest.raises(ClusterError, match="no live replicas"):
                c.failover(0)
            # primaries still answer
            assert c.evaluate(Rollback("r", NOW)) == S1


class TestTopologyChanges:
    def test_add_shard_spawns_a_replica_set(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=2)) as c:
            seed_cluster(c)
            index = c.add_shard()
            assert index == 1
            assert len(c.replicas(1)) == 2
            c.rebalance()
            c.catch_up()
            assert c.evaluate(Rollback("r", 2)) == S1

    def test_add_replica_bootstraps_from_the_stream(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=0)) as c:
            seed_cluster(c)
            replica = c.add_replica(0)
            replica.catch_up()
            assert replica.transaction_number == (
                c.primaries[0].transaction_number
            )
            # and it is now a promotion candidate
            c.failover(0)

    def test_add_replica_bootstraps_across_compaction(self):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=0)) as c:
            seed_cluster(c)
            c.checkpoint()  # compacts the primary's WAL
            replica = c.add_replica(0)
            replica.catch_up()
            assert replica.transaction_number == (
                c.primaries[0].transaction_number
            )
