"""Seeded chaos for the self-healing loop.

One randomized schedule interleaves a differential workload with
primary kills (write-dead stores), injected replica divergence and a
fault-wrapped replication transport, while the supervisor ticks in the
gaps.  The acceptance bar is the paper's: zero lost or duplicated
writes — every ``ρ(I, N)`` byte-identical to the unsharded oracle —
plus at least one auto-failover and one resync actually exercised.
``REPRO_CHAOS_SEED`` replays a schedule exactly (the CI job pins it to
the run id)."""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterConfig, ClusterSupervisor
from repro.core.commands import DefineRelation
from repro.errors import ClusterDegradedError
from repro.obsv import registry as obsv_registry
from repro.obsv.registry import MetricsRegistry

from tests.cluster.conftest import (
    case_seed,
    fast_retry,
    faulty_stream_factory,
)
from tests.sharding.conftest import (
    assert_differential,
    oracle_history,
    sharded_workload,
)

#: generous bound: every shed write must land within this many
#: tick-and-retry rounds, or the supervisor failed to heal
MAX_RETRIES_PER_COMMAND = 50


def run_chaos_schedule(seed: int, *, kills: int, diverges: int) -> dict:
    """One full schedule; returns the counters the caller asserts on."""
    rng = random.Random(seed)
    commands = sharded_workload(
        length=140, seed=rng.randrange(1 << 30)
    )
    cluster = Cluster(
        ClusterConfig(
            shards=3,
            replicas_per_shard=2,
            retry=fast_retry(),
            stream_factory=faulty_stream_factory(
                rng, max_rate=0.15
            ),
        )
    )
    supervisor = ClusterSupervisor(
        cluster,
        failure_threshold=2,
        clock=lambda: 0.0,
        sleep=lambda _s: None,
    )
    kill_at = sorted(
        rng.sample(range(10, len(commands)), k=kills)
    )
    diverge_at = sorted(
        rng.sample(range(10, len(commands)), k=diverges)
    )
    stats = {"kills": 0, "diverges": 0, "sheds": 0}
    try:
        for index, command in enumerate(commands):
            if kill_at and index == kill_at[0]:
                kill_at.pop(0)
                shard = rng.randrange(cluster.shard_count)
                cluster.primaries[shard].store.fail_writes()
                stats["kills"] += 1
            if diverge_at and index == diverge_at[0]:
                diverge_at.pop(0)
                shard = rng.randrange(cluster.shard_count)
                followers = [
                    r
                    for r in cluster.replicas(shard)
                    if not r.diverged and not r.promoted
                ]
                if followers:
                    victim = rng.choice(followers)
                    victim._durable.execute(
                        DefineRelation(
                            f"intruder{stats['diverges']}", "rollback"
                        )
                    )
                    victim._diverged = True
                    stats["diverges"] += 1
            for attempt in range(MAX_RETRIES_PER_COMMAND):
                try:
                    cluster.execute(command)
                    break
                except ClusterDegradedError:
                    stats["sheds"] += 1
                    supervisor.tick()
            else:
                raise AssertionError(
                    f"command {index} never landed; cluster stuck "
                    f"degraded at {cluster.degraded_shards}"
                )
            if index % 7 == 0:
                supervisor.tick()
        # let the cluster come fully to rest: no degraded shards, full
        # live replica sets.  Resync itself streams through the faulty
        # transport, so a tending tick can re-diverge a replica; tick
        # until the cluster is actually quiet (bounded)
        for _ in range(60):
            supervisor.tick()
            if cluster.degraded_shards:
                continue
            if all(
                sum(
                    1
                    for r in cluster.replicas(shard)
                    if not r.diverged and not r.promoted
                )
                >= 2
                for shard in range(cluster.shard_count)
            ):
                break
        assert cluster.degraded_shards == ()
        cluster.catch_up()
        oracle = oracle_history(commands)[-1]
        assert_differential(cluster, oracle)
        # replica reads agree with the primaries after the dust settles
        for shard in range(cluster.shard_count):
            live = [
                r
                for r in cluster.replicas(shard)
                if not r.diverged and not r.promoted
            ]
            assert len(live) == 2, f"shard {shard} not backfilled"
            for replica in live:
                assert (
                    replica.database
                    == cluster.primaries[shard].database
                )
    finally:
        cluster.close()
    return stats


class TestSupervisorChaos:
    def test_chaos_schedule_heals_to_oracle(self, test_seed):
        registry = obsv_registry.enable(MetricsRegistry())
        try:
            stats = run_chaos_schedule(
                case_seed(test_seed), kills=3, diverges=2
            )
            counters = registry.snapshot()["counters"]
            assert stats["kills"] == 3
            assert counters["cluster.health.auto_failovers"] >= 1
            if stats["diverges"]:
                assert counters["cluster.health.resyncs"] >= 1
            assert counters["cluster.health.probes"] > 0
        finally:
            obsv_registry.disable()

    @pytest.mark.parametrize("salt", [1, 2])
    def test_more_schedules(self, test_seed, salt):
        run_chaos_schedule(
            case_seed(test_seed, salt), kills=2, diverges=1
        )
