"""`Session(cluster=...)`: the language-level surface over a cluster,
and the composition error paths (legacy kwargs must point at the
supported ``cluster=`` form with precise messages)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import ClusterError
from repro.lang.session import Session


@pytest.fixture
def session():
    s = Session(cluster=ClusterConfig(shards=2, replicas_per_shard=1))
    yield s
    s.close()


STATE = "state (k: integer, v: integer) { (1, 10), (2, 20) }"
STATE2 = "state (k: integer, v: integer) { (3, 30) }"


class TestClusterSessions:
    def test_execute_and_query_round_trip(self, session):
        session.execute("define_relation(r, rollback)")
        session.execute(f"modify_state(r, {STATE})")
        oracle = Session()
        oracle.execute("define_relation(r, rollback)")
        oracle.execute(f"modify_state(r, {STATE})")
        assert session.query("rollback(r, now)") == oracle.query(
            "rollback(r, now)"
        )
        assert session.query("rollback(r, 2)") == oracle.query(
            "rollback(r, 2)"
        )
        assert session.database == oracle.database

    def test_accepts_a_prebuilt_cluster(self):
        cluster = Cluster(ClusterConfig(shards=1, replicas_per_shard=0))
        session = Session(cluster=cluster)
        try:
            assert session.cluster is cluster
            session.execute("define_relation(r, rollback)")
            assert session.transaction_number == 1
        finally:
            session.close()
        assert cluster.closed

    def test_failover_through_the_session(self, session):
        session.execute("define_relation(r, rollback)")
        session.execute(f"modify_state(r, {STATE})")
        shard = session.cluster.sharded.shard_of("r")
        session.failover(shard)
        session.execute(f"modify_state(r, {STATE2})")
        assert "3" in str(session.query("rollback(r, now)"))

    def test_add_shard_add_replica_rebalance(self, session):
        session.execute("define_relation(r, rollback)")
        session.execute(f"modify_state(r, {STATE})")
        index = session.add_shard()
        session.add_replica(index)
        report = session.rebalance()
        assert report.moved >= 0
        assert session.catch_up() >= 0
        assert session.query("rollback(r, now)") is not None

    def test_history_is_the_current_value_only(self, session):
        session.execute("define_relation(r, rollback)")
        assert len(session.history) == 1
        assert session.transaction_number == 1


class TestCompositionErrors:
    def test_cluster_with_legacy_shards_is_rejected(self):
        with pytest.raises(ValueError, match="drop the legacy shards="):
            Session(shards=2, cluster=ClusterConfig())

    def test_cluster_with_legacy_replica_of_is_rejected(self):
        with pytest.raises(
            ValueError, match="drop the legacy replica_of="
        ):
            Session(replica_of=object(), cluster=ClusterConfig())

    def test_cluster_with_durable_dir_is_rejected(self, tmp_path):
        with pytest.raises(
            ValueError, match=r"Cluster\(config, directory=\.\.\.\)"
        ):
            Session(str(tmp_path), cluster=ClusterConfig())

    def test_legacy_shards_plus_replica_points_at_cluster(self):
        with pytest.raises(
            ValueError,
            match=r"cluster=ClusterConfig\(shards=N",
        ):
            Session(shards=2, replica_of=object())

    def test_cluster_of_wrong_type_is_rejected(self):
        with pytest.raises(ValueError, match="must be a ClusterConfig"):
            Session(cluster="3x2")

    def test_non_cluster_session_rejects_cluster_ops(self):
        with Session() as session:
            with pytest.raises(ClusterError, match="failover"):
                session.failover(0)
            with pytest.raises(ClusterError, match="add_replica"):
                session.add_replica(0)
