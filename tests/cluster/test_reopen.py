"""Whole-cluster restart recovery: kill-and-reopen differential tests.

The contract is the coordinator journal's: after a process kill — no
``close()``, no final ``sync()``, batch-fsynced shard WALs caught
mid-batch — ``ShardedDatabase.reopen`` / ``Cluster(reopen=True)``
must restore a database observationally identical to the unsharded
oracle that executed the same sentence, including after failovers
moved primaries into former replica directories.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.durability.faults import MemoryStore
from repro.errors import ClusterError, ReproError, ShardingError
from repro.sharding import ShardedDatabase
from repro.workloads.generators import StateGenerator

from tests.cluster.conftest import fast_retry
from tests.sharding.conftest import (
    assert_differential,
    oracle_history,
    sharded_workload,
)

GEN = StateGenerator(seed=47, key_space=20)
S1 = GEN.snapshot_state(2)
S2 = GEN.snapshot_state(3)


class TestShardedReopen:
    def test_kill_and_reopen_matches_oracle(self, tmp_path, test_seed):
        commands = sharded_workload(length=120, seed=test_seed)
        db = ShardedDatabase(3, directory=tmp_path)
        for command in commands:
            db.execute(command)
        oracle = oracle_history(commands)[-1]
        db.kill()  # no close, no sync — buffers die with the process
        reopened = ShardedDatabase.reopen(directory=tmp_path)
        try:
            assert_differential(reopened, oracle)
        finally:
            reopened.close()

    def test_reopen_is_idempotent(self, tmp_path, test_seed):
        commands = sharded_workload(length=60, seed=test_seed + 1)
        db = ShardedDatabase(2, directory=tmp_path)
        for command in commands:
            db.execute(command)
        oracle = oracle_history(commands)[-1]
        db.kill()
        for _ in range(3):
            reopened = ShardedDatabase.reopen(directory=tmp_path)
            assert_differential(reopened, oracle)
            reopened.kill()

    def test_reopen_continues_the_sentence(self, tmp_path):
        db = ShardedDatabase(2, directory=tmp_path)
        db.execute(DefineRelation("r", "rollback"))
        db.execute(ModifyState("r", Const(S1)))
        db.kill()
        reopened = ShardedDatabase.reopen(directory=tmp_path)
        with reopened:
            reopened.execute(ModifyState("r", Const(S2)))
            assert reopened.transaction_number == 3
            state = reopened.evaluate(Rollback("r", 2))
            assert state == S1

    def test_redo_replays_what_the_shard_wal_lost(self):
        """The journal (policy=always) is never behind the shards; a
        crash that loses a shard's batch-fsynced tail is repaired by
        re-executing the journaled commands."""
        stores = [MemoryStore(), MemoryStore()]
        meta = MemoryStore()
        db = ShardedDatabase(
            stores=stores, meta_store=meta, fsync="never"
        )
        db.execute(DefineRelation("r", "rollback"))
        db.execute(ModifyState("r", Const(S1)))
        db.execute(DefineRelation("s", "rollback"))
        db.execute(ModifyState("s", Const(S2)))
        db.execute(
            ModifyState(
                "r", Union(Rollback("r", NOW), Rollback("s", NOW))
            )
        )
        expected = db.as_database()
        for store in stores:
            store.crash()  # every un-synced shard record is gone
        reopened = ShardedDatabase.reopen(
            meta_store=meta, stores=stores, fsync="never"
        )
        assert reopened.as_database() == expected
        assert reopened.transaction_number == 5

    def test_dead_record_is_skipped_on_replay(self):
        """A journaled command the shard *refused* replays to the same
        refusal — it must not consume a transaction number."""
        stores = [MemoryStore()]
        meta = MemoryStore()
        db = ShardedDatabase(
            stores=stores, meta_store=meta, fsync="never"
        )
        db.execute(DefineRelation("r", "rollback"))
        db.execute(ModifyState("r", Const(S1)))
        bad = GEN.historical_state(2)  # wrong state kind for r
        with pytest.raises(ReproError):
            db.execute(ModifyState("r", Const(bad), strict=True))
        db.execute(ModifyState("r", Const(S2)))
        expected = db.as_database()
        for store in stores:
            store.crash()
        reopened = ShardedDatabase.reopen(
            meta_store=meta, stores=stores, fsync="never"
        )
        assert reopened.as_database() == expected
        assert reopened.transaction_number == 3

    def test_reopen_refuses_a_fresh_directory(self, tmp_path):
        with pytest.raises(ShardingError, match="checkpoint"):
            ShardedDatabase.reopen(directory=tmp_path)

    def test_reopen_refuses_lost_shard_history(self, tmp_path):
        import shutil

        db = ShardedDatabase(2, directory=tmp_path)
        db.execute(DefineRelation("r", "rollback"))
        db.execute(ModifyState("r", Const(S1)))
        db.close()  # checkpointed: the journal now promises durability
        owner = None
        reopened = ShardedDatabase.reopen(directory=tmp_path)
        owner = reopened.shard_of("r")
        reopened.close()
        shutil.rmtree(os.path.join(tmp_path, f"shard-{owner}"))
        with pytest.raises(ShardingError, match="missing"):
            ShardedDatabase.reopen(directory=tmp_path)

    def test_fresh_database_still_refuses_nonempty_stores(self, tmp_path):
        db = ShardedDatabase(2, directory=tmp_path)
        db.execute(DefineRelation("r", "rollback"))
        db.execute(ModifyState("r", Const(S1)))
        db.close()
        with pytest.raises(ShardingError, match="empty"):
            ShardedDatabase(2, directory=tmp_path)


class TestClusterReopen:
    def config(self, directory=None, reopen=False) -> ClusterConfig:
        return ClusterConfig(
            shards=2,
            replicas_per_shard=1,
            retry=fast_retry(),
            directory=(
                os.fspath(directory) if directory is not None else None
            ),
            reopen=reopen,
        )

    def test_kill_and_reopen_matches_oracle(self, tmp_path, test_seed):
        commands = sharded_workload(length=100, seed=test_seed + 2)
        cluster = Cluster(self.config(tmp_path))
        for command in commands:
            cluster.execute(command)
        cluster.catch_up()
        oracle = oracle_history(commands)[-1]
        cluster.kill()
        reopened = Cluster(self.config(tmp_path, reopen=True))
        try:
            assert_differential(reopened, oracle)
            # fresh replica sets serve reads again
            reopened.catch_up()
            for shard in range(reopened.shard_count):
                assert len(reopened.replicas(shard)) == 1
        finally:
            reopened.close()

    def test_reopen_after_failover_finds_the_promoted_primary(
        self, tmp_path
    ):
        cluster = Cluster(self.config(tmp_path))
        cluster.execute(DefineRelation("r", "rollback"))
        cluster.execute(ModifyState("r", Const(S1)))
        cluster.catch_up()
        owner = cluster.sharded.shard_of("r")
        cluster.failover(owner)
        cluster.execute(ModifyState("r", Const(S2)))
        expected = cluster.as_database()
        cluster.kill()  # after the topology changed
        reopened = Cluster(self.config(tmp_path, reopen=True))
        try:
            assert reopened.as_database() == expected
            # the promoted primary's directory is the shard's now; the
            # abandoned original (and stale replica dirs) were cleaned
            names = sorted(os.listdir(tmp_path))
            assert f"shard-{owner}" not in names
            reopened.execute(ModifyState("r", Const(S1)))
            reopened.catch_up()
        finally:
            reopened.close()

    def test_reopen_requires_a_directory(self):
        with pytest.raises(ClusterError):
            Cluster(
                ClusterConfig(shards=1, replicas_per_shard=0),
                reopen=True,
            )
        with pytest.raises(ClusterError):
            ClusterConfig(shards=1, reopen=True)

    def test_reopen_refuses_an_empty_directory(self, tmp_path):
        with pytest.raises(ClusterError, match="reopen"):
            Cluster(self.config(tmp_path, reopen=True))
