"""Shared machinery for the cluster suite.

Reuses the sharding suite's differential oracle verbatim — a
:class:`~repro.cluster.Cluster` exposes the same
evaluate/state_at/as_database surface a :class:`ShardedDatabase` does,
so ``assert_differential`` applies unchanged: byte-identical ``ρ(I, N)``
at every historical transaction number versus the unsharded,
unreplicated in-memory oracle.  Chaos seeds follow the replication
suite's ``REPRO_CHAOS_SEED`` discipline.
"""

from __future__ import annotations

from repro.durability.faults import FaultPlan
from repro.replication import FaultyStream, PrimaryStream, RetryPolicy

from tests.replication.conftest import case_seed  # noqa: F401
from tests.sharding.conftest import (  # noqa: F401
    assert_differential,
    canonical,
    oracle_history,
    sharded_workload,
)


def fast_retry(attempts: int = 200) -> RetryPolicy:
    """A generous attempt budget with zero sleeping, so chaos tests
    retry through injected faults without slowing the suite down."""
    return RetryPolicy(
        max_attempts=attempts, base_delay=0.0, max_delay=0.0
    )


def faulty_stream_factory(rng, *, max_rate: float = 0.3):
    """A ``ClusterConfig.stream_factory`` wrapping every primary stream
    in the topology (including post-failover replacements) in its own
    seeded :class:`FaultPlan`.  All randomness comes from ``rng``, so a
    schedule replays exactly from its seed."""

    def factory(primary):
        plan = FaultPlan(
            seed=rng.randrange(1 << 30),
            stream_drop_rate=rng.uniform(0.0, max_rate),
            stream_duplicate_rate=rng.uniform(0.0, max_rate),
            stream_reorder_rate=rng.uniform(0.0, max_rate),
            stream_truncate_rate=rng.uniform(0.0, max_rate),
            stream_error_rate=rng.uniform(0.0, max_rate * 0.6),
        )
        return FaultyStream(PrimaryStream(primary), plan)

    return factory
