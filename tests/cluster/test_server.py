"""The cluster backing behind the wire-protocol server: a
``ServerConfig(cluster=ClusterConfig(...))`` serves reads from replicas
and stays byte-identical to the in-process session."""

import pytest

from repro.cluster import ClusterConfig
from repro.lang.session import Session
from repro.server import ReproClient, ServerConfig, ThreadedServer
from repro.server.store import ServerStore, render_state

STATE = "state (k: integer, v: integer) { (1, 10), (2, 20) }"
STATE2 = "state (k: integer, v: integer) { (3, 30) }"


@pytest.fixture
def server():
    config = ServerConfig(
        port=0,
        workers=2,
        cluster=ClusterConfig(shards=2, replicas_per_shard=1),
    )
    with ThreadedServer(config) as handle:
        yield handle


@pytest.fixture
def client(server):
    with ReproClient(server.host, server.port) as c:
        yield c


class TestClusterBacking:
    def test_round_trip_matches_in_process_session(self, client):
        assert client.execute("define_relation(r, rollback)") == 1
        assert client.execute(f"modify_state(r, {STATE})") == 2
        assert client.execute(f"modify_state(r, {STATE2})") == 3
        oracle = Session()
        oracle.execute("define_relation(r, rollback)")
        oracle.execute(f"modify_state(r, {STATE})")
        oracle.execute(f"modify_state(r, {STATE2})")
        for query in (
            "rollback(r, now)",
            "rollback(r, 2)",
            "rollback(r, 3)",
        ):
            assert client.query(query) == render_state(
                oracle.query(query)
            )

    def test_ping_reports_the_global_transaction_number(self, client):
        client.execute("define_relation(r, rollback)")
        client.execute(f"modify_state(r, {STATE})")
        assert client.ping() == 2


class TestClusterStore:
    def test_store_routes_reads_through_the_cluster(self):
        store = ServerStore(
            cluster=ClusterConfig(shards=2, replicas_per_shard=1)
        )
        try:
            assert store.session.cluster is not None
            assert store.manager is None  # shared-read backing
            store.execute("define_relation(r, rollback)")
            store.execute(f"modify_state(r, {STATE})")
            view = store.view()
            assert "10" in view.query("rollback(r, now)")
        finally:
            store.close()

    def test_failover_under_a_live_store(self):
        store = ServerStore(
            cluster=ClusterConfig(shards=1, replicas_per_shard=1)
        )
        try:
            store.execute("define_relation(r, rollback)")
            store.execute(f"modify_state(r, {STATE})")
            store.session.failover(0)
            store.execute(f"modify_state(r, {STATE2})")
            assert "30" in store.view().query("rollback(r, now)")
        finally:
            store.close()
