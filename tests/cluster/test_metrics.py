"""The ``cluster.*`` observability surface: every counter and histogram
records real topology events, and nothing fires while disabled."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback
from repro.core.txn import NOW
from repro.errors import StaleReadError
from repro.obsv import registry as obsv_registry
from repro.obsv.registry import MetricsRegistry
from repro.workloads.generators import StateGenerator

GEN = StateGenerator(seed=13, key_space=20)
S1 = GEN.snapshot_state(2)
S2 = GEN.snapshot_state(3)


@pytest.fixture
def metrics():
    registry = obsv_registry.enable(MetricsRegistry())
    try:
        yield registry
    finally:
        obsv_registry.disable()


class TestClusterMetrics:
    def test_read_failover_and_topology_counters(self, metrics):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=2)) as c:
            c.execute(DefineRelation("r", "rollback"))
            c.execute(ModifyState("r", Const(S1)))
            c.evaluate(Rollback("r", NOW))  # replica-served
            c.failover(0)
            c.evaluate(Rollback("r", NOW))  # still replica-served
            c.add_replica(0)
            index = c.add_shard()
            assert index == 1
            c.catch_up()
            c.lags()
        counters = metrics.snapshot()["counters"]
        assert counters["cluster.reads_replica"] == 2
        assert counters["cluster.failovers"] == 1
        assert counters["cluster.replicas_added"] == 1
        assert counters["cluster.shards_added"] == 1
        lag = metrics.snapshot()["histograms"]["cluster.shard_lag_records"]
        assert lag["count"] >= 3  # one sample per replica in lags()

    def test_primary_fallback_reads_are_counted(self, metrics):
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=0)) as c:
            c.execute(DefineRelation("r", "rollback"))
            c.execute(ModifyState("r", Const(S1)))
            c.evaluate(Rollback("r", NOW))
        counters = metrics.snapshot()["counters"]
        assert counters["cluster.reads_primary"] == 1
        assert counters["cluster.reads_replica"] == 0

    def test_stale_rejections_are_counted(self, metrics):
        config = ClusterConfig(
            shards=1,
            replicas_per_shard=1,
            freshness="bounded",
            max_lag=0,
            on_stale="reject",
        )
        with Cluster(config) as c:
            c.execute(DefineRelation("r", "rollback"))
            c.execute(ModifyState("r", Const(S1)))
            with pytest.raises(StaleReadError):
                c.evaluate(Rollback("r", NOW))
        counters = metrics.snapshot()["counters"]
        assert counters["cluster.stale_rejections"] == 1

    def test_rebalance_repair_counter_fires(self, metrics):
        from repro.sharding import Partitioner

        class Pin(Partitioner):
            def __init__(self, index):
                self.index = index

            def shard_for(self, identifier, shard_count):
                return self._check(self.index, shard_count)

        with Cluster(
            ClusterConfig(
                shards=2, replicas_per_shard=0, partitioner=Pin(0)
            )
        ) as c:
            c.execute(DefineRelation("r", "rollback"))
            c.execute(ModifyState("r", Const(S1)))
            c.rebalance(Pin(1))
            c.execute(ModifyState("r", Const(S2)))
            c.rebalance(Pin(0))  # back onto the stale copy: repair
        counters = metrics.snapshot()["counters"]
        assert counters["shard.moves_stale_repaired"] == 1
        assert counters["shard.rebalances"] == 2

    def test_disabled_records_nothing(self):
        assert not obsv_registry.enabled()
        with Cluster(ClusterConfig(shards=1, replicas_per_shard=1)) as c:
            c.execute(DefineRelation("r", "rollback"))
            c.execute(ModifyState("r", Const(S1)))
            c.evaluate(Rollback("r", NOW))
            c.failover(0)
            c.lags()
        assert obsv_registry.get().snapshot()["counters"] == {}
