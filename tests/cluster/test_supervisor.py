"""The health supervisor's deterministic contract.

Time is injected, so every test drives ``tick()`` by hand: K
consecutive probe failures (or a single shed write) condemn a primary,
auto-failover reuses the validate-then-promote seam, condemned
replicas are resynced, and live sets are backfilled — all visible in
the ``cluster.health.*`` metrics and in each tick's report.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig, ClusterSupervisor
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback
from repro.core.txn import NOW
from repro.errors import ClusterDegradedError, ClusterError
from repro.obsv import registry as obsv_registry
from repro.obsv.registry import MetricsRegistry
from repro.workloads.generators import StateGenerator

from tests.cluster.conftest import fast_retry

GEN = StateGenerator(seed=31, key_space=20)
S1 = GEN.snapshot_state(2)
S2 = GEN.snapshot_state(3)
S3 = GEN.snapshot_state(4)


def make_cluster(shards=2, replicas=2) -> Cluster:
    return Cluster(
        ClusterConfig(
            shards=shards,
            replicas_per_shard=replicas,
            retry=fast_retry(),
        )
    )


def make_supervisor(cluster, **kwargs) -> ClusterSupervisor:
    clock = kwargs.pop("clock", None)
    if clock is None:
        ticker = [0.0]

        def clock():
            ticker[0] += 1.0
            return ticker[0]

    return ClusterSupervisor(
        cluster, clock=clock, sleep=lambda _s: None, **kwargs
    )


def seeded(cluster) -> int:
    cluster.execute(DefineRelation("r", "rollback"))
    cluster.execute(ModifyState("r", Const(S1)))
    cluster.execute(DefineRelation("s", "rollback"))
    cluster.execute(ModifyState("s", Const(S2)))
    cluster.catch_up()
    return cluster.sharded.shard_of("r")


class TestProbing:
    def test_healthy_cluster_probes_and_does_nothing(self):
        with make_cluster() as c:
            seeded(c)
            sup = make_supervisor(c)
            report = sup.tick()
            assert report.probes == 2
            assert report.probe_failures == 0
            assert report.failovers == 0
            assert sup.ticks == 1

    def test_threshold_failures_trigger_failover(self):
        with make_cluster() as c:
            owner = seeded(c)
            c.primaries[owner].store.fail_writes()
            sup = make_supervisor(c, failure_threshold=3)
            for _ in range(2):
                report = sup.tick()
                assert report.failovers == 0, (
                    "failed over below the threshold"
                )
            report = sup.tick()
            assert report.failovers == 1
            assert sup.health(owner).consecutive_failures == 0
            # writes flow again through the promoted primary
            c.execute(ModifyState("r", Const(S3)))

    def test_probe_failure_counter_resets_on_recovery(self):
        with make_cluster() as c:
            owner = seeded(c)
            store = c.primaries[owner].store
            store.fail_writes()
            sup = make_supervisor(c, failure_threshold=3)
            sup.tick()
            assert sup.health(owner).consecutive_failures == 1
            store.heal_writes()
            sup.tick()
            assert sup.health(owner).consecutive_failures == 0
            assert sup.health(owner).down_since is None


class TestDegradedMode:
    def test_write_at_dead_shard_sheds_and_marks(self):
        with make_cluster() as c:
            owner = seeded(c)
            c.primaries[owner].store.fail_writes()
            with pytest.raises(ClusterDegradedError):
                c.execute(ModifyState("r", Const(S3)))
            assert c.degraded_shards == (owner,)
            # subsequent writes shed fast, before touching any shard
            before = c.transaction_number
            with pytest.raises(ClusterDegradedError):
                c.execute(ModifyState("r", Const(S3)))
            assert c.transaction_number == before

    def test_reads_keep_serving_while_degraded(self):
        with make_cluster() as c:
            owner = seeded(c)
            baseline = c.evaluate(Rollback("r", NOW))
            c.primaries[owner].store.fail_writes()
            with pytest.raises(ClusterDegradedError):
                c.execute(ModifyState("r", Const(S3)))
            assert c.evaluate(Rollback("r", NOW)) == baseline
            assert c.evaluate(Rollback("r", 2)) == baseline

    def test_degraded_mark_heals_on_first_tick(self):
        """A shed write is stronger evidence than any probe count: the
        supervisor must not wait out the failure threshold."""
        with make_cluster() as c:
            owner = seeded(c)
            c.primaries[owner].store.fail_writes()
            with pytest.raises(ClusterDegradedError):
                c.execute(ModifyState("r", Const(S3)))
            sup = make_supervisor(c, failure_threshold=5)
            report = sup.tick()
            assert report.failovers == 1
            assert c.degraded_shards == ()
            c.execute(ModifyState("r", Const(S3)))

    def test_writes_to_healthy_shards_flow_while_degraded(self):
        with make_cluster() as c:
            owner = seeded(c)
            # an identifier guaranteed to land on the healthy shard
            other = next(
                name
                for name in (f"t{i}" for i in range(64))
                if c.sharded.shard_of(name) != owner
            )
            c.mark_degraded(owner)
            c.execute(DefineRelation(other, "rollback"))
            c.execute(ModifyState(other, Const(S3)))
            with pytest.raises(ClusterDegradedError):
                c.execute(ModifyState("r", Const(S3)))
            c.clear_degraded(owner)
            c.execute(ModifyState("r", Const(S3)))


class TestHealing:
    def test_failover_failure_leaves_cluster_degraded(self):
        """No live candidate and no way to grow one: the tick counts a
        failure and the cluster stays degraded, undisturbed."""
        with make_cluster(replicas=1) as c:
            owner = seeded(c)
            for replica in c.replicas(owner):
                replica._diverged = True
            c.primaries[owner].store.fail_writes()
            c.mark_degraded(owner)
            sup = make_supervisor(c, replicas_per_shard=0)

            # block the bootstrap path too: a diverged-only set with a
            # snapshot-refusing primary cannot produce a candidate
            def no_add(shard):
                raise ClusterError("no replicas today")

            c.add_replica = no_add
            report = sup.tick()
            assert report.failovers == 0
            assert report.failover_failures >= 1
            assert c.degraded_shards == (owner,)

    def test_zero_replica_shard_heals_via_bootstrap_then_promote(self):
        """With no replicas at all the first tick grows one off the
        (read-alive) dead primary's stream; the next tick promotes it."""
        with make_cluster(replicas=0) as c:
            owner = seeded(c)
            c.primaries[owner].store.fail_writes()
            sup = make_supervisor(c, failure_threshold=1)
            first = sup.tick()
            assert first.failovers == 0
            assert len(c.replicas(owner)) >= 1
            second = sup.tick()
            assert second.failovers == 1
            c.execute(ModifyState("r", Const(S3)))

    def test_mttr_uses_injected_clock(self):
        with make_cluster() as c:
            owner = seeded(c)
            c.primaries[owner].store.fail_writes()
            registry = obsv_registry.enable(MetricsRegistry())
            try:
                sup = make_supervisor(c, failure_threshold=2)
                sup.tick()
                sup.tick()
                snapshot = registry.snapshot()
                mttr = snapshot["histograms"][
                    "cluster.health.mttr_seconds"
                ]
                assert mttr["count"] == 1
                # down_since was stamped one injected second before the
                # healing tick read the clock again
                assert mttr["max"] >= 1.0
            finally:
                obsv_registry.disable()


class TestReplicaTending:
    def test_diverged_replica_is_resynced(self):
        with make_cluster(shards=1, replicas=2) as c:
            seeded(c)
            replica = c.replicas(0)[0]
            # real divergence: a foreign write makes replay contradict
            # the primary's committed transaction numbers
            replica._durable.execute(
                DefineRelation("intruder", "rollback")
            )
            replica._diverged = True
            sup = make_supervisor(c)
            report = sup.tick()
            assert report.resyncs == 1
            assert not c.replicas(0)[0].diverged
            replica.catch_up()
            assert replica.database == c.primaries[0].database

    def test_backfill_restores_live_set_after_failover(self):
        with make_cluster(shards=1, replicas=2) as c:
            seeded(c)
            c.failover(0)  # consumes one replica
            assert len(c.replicas(0)) == 1
            sup = make_supervisor(c)
            report = sup.tick()
            assert report.backfills == 1
            assert len(c.replicas(0)) == 2
            c.catch_up()
            for replica in c.replicas(0):
                assert replica.database == c.primaries[0].database

    def test_backfill_respects_override(self):
        with make_cluster(shards=1, replicas=1) as c:
            seeded(c)
            sup = make_supervisor(c, replicas_per_shard=3)
            report = sup.tick()
            assert report.backfills == 2
            assert len(c.replicas(0)) == 3


class TestMetricsAndLoop:
    def test_health_counters_record_the_incident(self):
        registry = obsv_registry.enable(MetricsRegistry())
        try:
            with make_cluster() as c:
                owner = seeded(c)
                c.primaries[owner].store.fail_writes()
                with pytest.raises(ClusterDegradedError):
                    c.execute(ModifyState("r", Const(S3)))
                sup = make_supervisor(c)
                sup.tick()
                counters = registry.snapshot()["counters"]
                assert counters["cluster.health.probes"] == 2
                assert counters["cluster.health.degraded_marked"] == 1
                assert counters["cluster.health.degraded_cleared"] == 1
                assert counters["cluster.health.auto_failovers"] == 1
                assert counters["cluster.health.writes_shed"] == 1
        finally:
            obsv_registry.disable()

    def test_run_ticks_and_stops(self):
        with make_cluster() as c:
            seeded(c)
            naps = []
            sup = ClusterSupervisor(
                c,
                probe_interval=0.5,
                clock=lambda: 0.0,
                sleep=naps.append,
            )
            sup.run(max_ticks=3)
            assert sup.ticks == 3
            assert naps == [0.5, 0.5]

    def test_validation_rejects_bad_knobs(self):
        with make_cluster() as c:
            with pytest.raises(ValueError):
                ClusterSupervisor(c, probe_interval=0.0)
            with pytest.raises(ValueError):
                ClusterSupervisor(c, failure_threshold=0)
