"""The cluster differential oracle: ``ρ(I, N)`` byte-identical to the
unsharded, unreplicated oracle at every historical transaction number —
across the topology matrix {shards 1,2,3} × {replicas 0,1,2}, with
mid-run per-shard failover and mid-run rebalance, under randomized
delivery-fault schedules on every replication stream.

This is the snapshot-equivalence bar of Dignös et al. applied to the
composed topology: every fan-out read below runs through the
replica-serving router, so agreement with the oracle proves the whole
stack — coordinator numbering, WAL shipping, numeral localization,
promotion — preserves the paper's append-only version-sequence
semantics.
"""

import random

import pytest

from repro.cluster import Cluster, ClusterConfig

from tests.cluster.conftest import (
    assert_differential,
    case_seed,
    fast_retry,
    faulty_stream_factory,
    oracle_history,
    sharded_workload,
)

MATRIX = [
    (shards, replicas)
    for shards in (1, 2, 3)
    for replicas in (0, 1, 2)
]


def build_cluster(shards, replicas, rng, *, chaos=True):
    return Cluster(
        ClusterConfig(
            shards=shards,
            replicas_per_shard=replicas,
            retry=fast_retry(),
            stream_factory=(
                faulty_stream_factory(rng) if chaos and replicas else None
            ),
        )
    )


@pytest.mark.parametrize("shards, replicas", MATRIX)
def test_topology_matrix_matches_the_oracle(shards, replicas, test_seed):
    """Quiet streams, full matrix: the composed topology answers every
    historical read byte-identically to the single-node oracle."""
    seed = case_seed(test_seed, shards * 10 + replicas)
    rng = random.Random(seed)
    commands = sharded_workload(length=90, seed=rng.randrange(1 << 16))
    oracle = oracle_history(commands)
    with build_cluster(shards, replicas, rng, chaos=False) as cluster:
        for command in commands:
            cluster.execute(command)
        assert_differential(cluster, oracle[-1])


@pytest.mark.parametrize("shards, replicas", MATRIX)
def test_matrix_under_chaos_with_failover_and_rebalance(
    shards, replicas, test_seed
):
    """The tentpole invariant: randomized fault schedules interleaving
    replica lag (implicit — replication is pull-based), at least one
    mid-run per-shard failover (when the topology has replicas), an
    ``add_shard()``, and at least one mid-run ``rebalance()``."""
    seed = case_seed(test_seed, 100 + shards * 10 + replicas)
    rng = random.Random(seed)
    commands = sharded_workload(length=110, seed=rng.randrange(1 << 16))
    oracle = oracle_history(commands)
    indices = rng.sample(range(20, len(commands) - 5), 4)
    failover_at = indices[0] if replicas else None
    add_shard_at = indices[1]
    rebalance_at = sorted(indices[2:])
    grew = False
    with build_cluster(shards, replicas, rng) as cluster:
        for position, command in enumerate(commands):
            cluster.execute(command)
            if position == failover_at:
                shard = rng.randrange(cluster.shard_count)
                cluster.failover(shard)
                cluster.add_replica(shard)  # restore the set's size
            if position == add_shard_at:
                cluster.add_shard()
                grew = True
            if position in rebalance_at:
                cluster.rebalance()
            if position % 37 == 0:
                # interleaved partial catch-up keeps replica lag varied
                cluster.catch_up()
        assert grew and cluster.shard_count == shards + 1
        assert_differential(cluster, oracle[-1])


@pytest.mark.parametrize("case", range(3))
def test_every_shard_fails_over_mid_run(case, test_seed):
    """Serial failovers on *every* shard mid-sentence, under chaotic
    streams, still converge to the oracle."""
    seed = case_seed(test_seed, 200 + case)
    rng = random.Random(seed)
    commands = sharded_workload(length=80, seed=rng.randrange(1 << 16))
    oracle = oracle_history(commands)
    with build_cluster(3, 2, rng) as cluster:
        third = len(commands) // 3
        for position, command in enumerate(commands):
            cluster.execute(command)
            if position and position % third == 0:
                cluster.failover((position // third) - 1)
        assert_differential(cluster, oracle[-1])


def test_prefix_equivalence_at_every_step(test_seed):
    """The stronger sequenced check on a small run: after *each*
    command the cluster's reassembled database equals the oracle's
    prefix database."""
    seed = case_seed(test_seed, 300)
    rng = random.Random(seed)
    commands = sharded_workload(length=40, seed=rng.randrange(1 << 16))
    oracle = oracle_history(commands)
    with build_cluster(2, 1, rng) as cluster:
        for position, command in enumerate(commands, start=1):
            cluster.execute(command)
            assert cluster.as_database() == oracle[position], (
                f"prefix {position}, seed={seed}"
            )
