"""Tests for the transaction manager: snapshot reads, optimistic
validation, atomic commit, monotone commit timestamps."""

import pytest

from repro.errors import ConcurrencyError
from repro.concurrency.manager import TransactionManager
from repro.concurrency.transactions import Transaction, TransactionStatus
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def kv(*keys):
    return SnapshotState(KV, [[k] for k in keys])


def append(identifier, key):
    return ModifyState(
        identifier, Union(Rollback(identifier), Const(kv(key)))
    )


@pytest.fixture
def manager():
    m = TransactionManager()
    t = m.begin()
    t.stage(DefineRelation("r", "rollback"))
    t.stage(ModifyState("r", Const(kv(0))))
    m.commit(t)
    return m


class TestBasicLifecycle:
    def test_commit_applies_atomically(self, manager):
        t = manager.begin()
        t.stage(append("r", 1))
        t.stage(append("r", 2))
        db = manager.commit(t)
        assert Rollback("r", NOW).evaluate(db) == kv(0, 1, 2)
        assert t.status is TransactionStatus.COMMITTED

    def test_commit_timestamps_monotone(self, manager):
        stamps = []
        for key in range(1, 4):
            t = manager.begin()
            t.stage(append("r", key))
            manager.commit(t)
            stamps.append(t.commit_txn)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_nothing_visible_before_commit(self, manager):
        before = manager.database
        t = manager.begin()
        t.stage(append("r", 99))
        assert manager.database == before
        manager.abort(t)
        assert manager.database == before

    def test_abort_then_use_rejected(self, manager):
        t = manager.begin()
        manager.abort(t)
        with pytest.raises(ConcurrencyError):
            t.stage(append("r", 1))
        with pytest.raises(ConcurrencyError):
            manager.commit(t)

    def test_double_commit_rejected(self, manager):
        t = manager.begin()
        t.stage(append("r", 1))
        manager.commit(t)
        with pytest.raises(ConcurrencyError):
            manager.commit(t)

    def test_empty_transaction_commits(self, manager):
        before = manager.database
        t = manager.begin()
        manager.commit(t)
        assert manager.database == before


class TestSnapshotReads:
    def test_read_sees_begin_snapshot(self, manager):
        reader = manager.begin()
        writer = manager.begin()
        writer.stage(append("r", 42))
        manager.commit(writer)
        # the reader still sees the database as of its begin
        assert reader.read(Rollback("r", NOW)) == kv(0)

    def test_read_records_read_set(self, manager):
        t = manager.begin()
        t.read(Rollback("r", NOW))
        assert "r" in t.read_set

    def test_staged_expressions_count_as_reads(self, manager):
        t = manager.begin()
        t.stage(append("r", 1))  # expression contains ρ(r, now)
        assert "r" in t.read_set
        assert "r" in t.write_set


class TestValidation:
    def test_read_write_conflict_aborts(self, manager):
        reader_writer = manager.begin()
        reader_writer.read(Rollback("r", NOW))
        reader_writer.stage(DefineRelation("other", "rollback"))

        interferer = manager.begin()
        interferer.stage(append("r", 7))
        manager.commit(interferer)

        with pytest.raises(ConcurrencyError, match="aborted"):
            manager.commit(reader_writer)
        assert reader_writer.status is TransactionStatus.ABORTED
        assert manager.abort_count == 1

    def test_disjoint_relations_do_not_conflict(self, manager):
        t1 = manager.begin()
        t1.stage(DefineRelation("a", "rollback"))
        t1.stage(ModifyState("a", Const(kv(1))))

        t2 = manager.begin()
        t2.stage(DefineRelation("b", "rollback"))
        t2.stage(ModifyState("b", Const(kv(2))))

        manager.commit(t1)
        manager.commit(t2)  # no conflict: t2 never read or wrote 'a'
        assert manager.commit_count == 3  # setup + two

    def test_blind_write_after_concurrent_write_is_allowed(self, manager):
        # t reads nothing; a concurrent writer touching the same relation
        # does not invalidate it (no stale read exists).
        t = manager.begin()
        t.stage(ModifyState("r", Const(kv(5))))
        # constant expression: no rollback leaf, empty read set? The
        # staged ModifyState reads nothing, so the write is blind.
        assert t.read_set == frozenset()

        interferer = manager.begin()
        interferer.stage(append("r", 7))
        manager.commit(interferer)

        db = manager.commit(t)
        assert Rollback("r", NOW).evaluate(db) == kv(5)

    def test_run_retries_until_success(self, manager):
        calls = []

        def body(t: Transaction) -> None:
            calls.append(1)
            t.read(Rollback("r", NOW))
            t.stage(append("r", 10 + len(calls)))
            if len(calls) == 1:
                # interfere mid-transaction on the first attempt
                other = manager.begin()
                other.stage(append("r", 99))
                manager.commit(other)

        manager.run(body)
        assert len(calls) == 2  # first attempt aborted, second committed
        assert manager.abort_count == 1

    def test_run_gives_up_after_retries(self, manager):
        def body(t: Transaction) -> None:
            t.read(Rollback("r", NOW))
            t.stage(append("r", 1))
            other = manager.begin()
            other.stage(append("r", 99))
            manager.commit(other)

        with pytest.raises(ConcurrencyError, match="retries"):
            manager.run(body, retries=2)

    def test_run_aborts_transaction_when_body_raises(self, manager):
        # Regression: a raising body used to leak the transaction in
        # ACTIVE status — never aborted, never counted.
        seen = []

        def body(t: Transaction) -> None:
            seen.append(t)
            t.read(Rollback("r", NOW))
            raise RuntimeError("boom")

        before = manager.database
        with pytest.raises(RuntimeError, match="boom"):
            manager.run(body)
        assert len(seen) == 1  # a body error is not retried
        assert seen[0].status is TransactionStatus.ABORTED
        assert manager.abort_count == 1
        assert manager.database is before  # nothing applied

    def test_run_aborts_on_keyboard_interrupt(self, manager):
        def body(t: Transaction) -> None:
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            manager.run(body)
        assert manager.abort_count == 1

    def test_apply_failure_aborts_instead_of_leaking(self, manager):
        # Regression: a command that staged fine but *failed at apply
        # time* (its expression reads an unbound relation) used to
        # escape commit() with the transaction still ACTIVE — pinning
        # the validation log horizon forever.
        from repro.errors import UnknownRelationError

        before = manager.database

        def body(t: Transaction) -> None:
            t.stage(ModifyState("r", Rollback("missing", NOW)))

        with pytest.raises(UnknownRelationError):
            manager.run(body)
        assert manager.outstanding_count == 0
        assert manager.abort_count == 1
        assert manager.database is before

    def test_direct_commit_apply_failure_aborts(self, manager):
        from repro.errors import UnknownRelationError

        t = manager.begin()
        t.stage(ModifyState("r", Rollback("missing", NOW)))
        with pytest.raises(UnknownRelationError):
            manager.commit(t)
        assert t.status is TransactionStatus.ABORTED
        assert manager.outstanding_count == 0


class TestValidationLogPruning:
    """The backward-validation log must not grow without bound: an entry
    is only needed while some outstanding transaction began at or before
    its commit timestamp."""

    def test_log_empties_with_no_outstanding_txns(self, manager):
        for key in range(1, 20):
            t = manager.begin()
            t.stage(append("r", key))
            manager.commit(t)
        assert manager.outstanding_count == 0
        assert manager.validation_log_size == 0

    def test_outstanding_reader_pins_the_log(self, manager):
        reader = manager.begin()
        reader.read(Rollback("r"))
        for key in range(1, 6):
            t = manager.begin()
            t.stage(append("r", key))
            manager.commit(t)
        # every commit since the reader began must stay validatable
        assert manager.validation_log_size == 5
        manager.abort(reader)
        assert manager.validation_log_size == 0

    def test_log_pruned_after_reader_finishes(self, manager):
        reader = manager.begin()
        reader.read(Rollback("r"))
        for key in range(1, 4):
            t = manager.begin()
            t.stage(append("r", key))
            manager.commit(t)
        assert manager.validation_log_size == 3
        manager.abort(reader)
        t = manager.begin()
        t.stage(append("r", 99))
        manager.commit(t)
        assert manager.validation_log_size == 0

    def test_conflict_detection_survives_pruning(self, manager):
        """Pruning must never drop an entry a live transaction could
        conflict with."""
        for key in range(1, 10):
            t = manager.begin()
            t.stage(append("r", key))
            manager.commit(t)
        stale = manager.begin()
        stale.read(Rollback("r"))
        stale.stage(append("r", 100))
        winner = manager.begin()
        winner.stage(append("r", 200))
        manager.commit(winner)
        with pytest.raises(ConcurrencyError):
            manager.commit(stale)

    def test_commit_prunes_its_own_entry_horizon(self, manager):
        a = manager.begin()
        a.stage(append("r", 1))
        b = manager.begin()
        b.read(Rollback("r"))
        manager.commit(a)
        assert manager.validation_log_size == 1  # pinned by b
        with pytest.raises(ConcurrencyError):
            manager.commit(b)  # b read r, a wrote it: backward validation
        assert manager.outstanding_count == 0
        assert manager.validation_log_size == 0


class TestNoOpCommitPruning:
    """Regression: a commit whose every command no-ops (paper semantics:
    modify_state on an unbound relation) used to append a validation
    entry stamped with the *current* transaction number, which the
    ``< horizon`` prune could never drop — one stuck entry per no-op
    commit, forever."""

    def test_noop_commit_leaves_no_log_entry(self, manager):
        t = manager.begin()
        t.stage(ModifyState("unbound", Const(kv(1))))  # silent no-op
        before = manager.database.transaction_number
        manager.commit(t)
        assert t.status is TransactionStatus.COMMITTED
        assert manager.database.transaction_number == before
        assert manager.validation_log_size == 0

    def test_noop_commits_never_accumulate(self, manager):
        # the original leak: N no-op commits retained N entries
        for _ in range(10):
            t = manager.begin()
            t.stage(ModifyState("unbound", Const(kv(1))))
            manager.commit(t)
        assert manager.validation_log_size == 0
        assert manager.outstanding_count == 0

    def test_empty_write_set_commit_leaves_no_log_entry(self, manager):
        t = manager.begin()
        t.read(Rollback("r"))
        manager.commit(t)
        assert manager.validation_log_size == 0

    def test_noop_write_does_not_invalidate_readers(self, manager):
        # the dropped entry must be safe to drop: a no-op writer cannot
        # have changed anything a concurrent reader observed
        reader = manager.begin()
        reader.read(Rollback("r"))
        noop = manager.begin()
        noop.stage(ModifyState("unbound", Const(kv(1))))
        manager.commit(noop)
        reader.stage(append("r", 7))
        manager.commit(reader)  # must not abort
        assert manager.abort_count == 0


class TestAbortDuringApplyPruning:
    """Regression: a transaction that aborts at *apply* time (strict
    command failure) must release its hold on the validation horizon so
    entries pinned on its behalf are pruned immediately."""

    def test_apply_abort_prunes_pinned_entries(self, manager):
        from repro.errors import CommandError

        pinner = manager.begin()  # outstanding begin pins the horizon
        writer = manager.begin()
        writer.stage(append("r", 1))
        manager.commit(writer)
        assert manager.validation_log_size == 1  # pinned by pinner
        pinner.stage(ModifyState("missing", Const(kv(1)), strict=True))
        with pytest.raises(CommandError):
            manager.commit(pinner)
        assert pinner.status is TransactionStatus.ABORTED
        assert manager.outstanding_count == 0
        assert manager.validation_log_size == 0
