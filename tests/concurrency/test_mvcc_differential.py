"""Differential: MVCC vs the serial oracle, across all five backends.

Transactions with non-overlapping write sets never conflict under
first-committer-wins, and the serial :class:`TransactionManager` is the
oracle: run the same bodies in the same commit order through both
managers and the committed databases must be *identical* ``Database``
values — same version chains, same transaction stamps.  The committed
scripts are then replayed into every physical storage backend, which
must agree with each other and with the in-memory chains at every
``(relation, txn)`` probe.
"""

from __future__ import annotations

import random

import pytest

from repro.concurrency import MVCCManager, TransactionManager
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.optimizer.equivalence import states_equal
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    VersionedDatabase,
)
from repro.storage.versioned_db import backends_agree

BACKENDS = [
    FullCopyBackend,
    DeltaBackend,
    ReverseDeltaBackend,
    CheckpointDeltaBackend,
    TupleTimestampBackend,
]

RELATIONS = ("A", "B", "C", "D")


def _bodies(make_state, seed: int, rounds: int):
    """Per-client transaction bodies with disjoint write sets: client i
    only ever writes relation ``RELATIONS[i]`` (reads its own relation
    too, so read sets stay disjoint and the serial oracle never
    aborts)."""
    rng = random.Random(seed)
    scripted: list[tuple[int, list]] = []
    for round_no in range(rounds):
        # fixed round-robin client order: any window of up to
        # len(RELATIONS) consecutive transactions touches distinct
        # clients, so in-flight write sets never overlap (the rng
        # still varies each transaction's append count)
        for client, relation in enumerate(RELATIONS):
            commands = []
            if round_no == 0:
                commands.append(DefineRelation(relation, "rollback"))
                commands.append(
                    ModifyState(
                        relation, Const(make_state(f"{relation}.init"))
                    )
                )
            appends = rng.randrange(1, 3)
            for n in range(appends):
                commands.append(
                    ModifyState(
                        relation,
                        Union(
                            Rollback(relation),
                            Const(
                                make_state(f"{relation}.{round_no}.{n}")
                            ),
                        ),
                    )
                )
            scripted.append((client, commands))
    return scripted


def _run(manager, scripted, interleave: int):
    """Drive ``scripted`` through ``manager`` with up to ``interleave``
    transactions in flight, committing in FIFO order so both managers
    assign identical commit stamps."""
    in_flight = []
    committed_scripts = []

    def drain():
        transaction = in_flight.pop(0)
        manager.commit(transaction)
        committed_scripts.append(list(transaction.commands))

    for _, commands in scripted:
        transaction = manager.begin()
        for command in commands:
            transaction.stage(command)
        in_flight.append(transaction)
        while len(in_flight) > interleave:
            drain()
    while in_flight:
        drain()
    return committed_scripts


@pytest.mark.parametrize("interleave", [1, 2, 3])
def test_disjoint_writes_identical_databases(
    make_state, test_seed, interleave
):
    scripted = _bodies(make_state, test_seed, rounds=3)
    mvcc = MVCCManager()
    serial = TransactionManager()
    _run(mvcc, scripted, interleave)
    _run(serial, scripted, interleave)
    assert mvcc.abort_count == 0
    assert serial.abort_count == 0
    assert mvcc.database == serial.database  # chains, stamps, everything


def test_committed_scripts_replay_identically_on_all_backends(
    make_state, test_seed
):
    scripted = _bodies(make_state, test_seed, rounds=2)
    mvcc = MVCCManager()
    committed = _run(mvcc, scripted, interleave=3)
    assert mvcc.abort_count == 0

    versioned = [VersionedDatabase(cls()) for cls in BACKENDS]
    for vdb in versioned:
        for script in committed:
            vdb.execute_all(script)

    final_txn = mvcc.database.transaction_number
    assert all(v.transaction_number == final_txn for v in versioned)

    probes = [
        (relation, txn)
        for relation in RELATIONS
        for txn in range(final_txn + 1)
    ]
    assert backends_agree([v.backend for v in versioned], probes)

    # ...and the backends agree with the in-memory MVCC version chains
    state = mvcc.database.state
    for relation in RELATIONS:
        chain = state.require(relation)
        current = versioned[0].backend.state_at(relation, final_txn)
        assert states_equal(chain.current_state, current), relation


def test_ssi_disjoint_writes_also_match_oracle(make_state, test_seed):
    scripted = _bodies(make_state, test_seed + 1, rounds=2)
    ssi = MVCCManager(isolation="ssi")
    serial = TransactionManager()
    _run(ssi, scripted, interleave=3)
    _run(serial, scripted, interleave=3)
    assert ssi.abort_count == 0
    assert ssi.database == serial.database
