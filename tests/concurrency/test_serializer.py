"""Tests for the interleaved scheduler: the committed database always
equals the serial execution of the committed transactions in commit order
(the paper's sequential-semantics requirement, experiment E10)."""

import pytest

from repro.concurrency.serializer import (
    ClientScript,
    InterleavedScheduler,
    serial_execution,
)
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def kv(*keys):
    return SnapshotState(KV, [[k] for k in keys])


def appender(identifier, key):
    def body(t):
        t.stage(DefineRelation(identifier, "rollback"))
        t.stage(
            ModifyState(
                identifier,
                Union(Rollback(identifier), Const(kv(key))),
            )
        )

    return body


def make_clients(n_clients, txns_each, shared_fraction=0.5):
    clients = []
    for ci in range(n_clients):
        bodies = []
        for bi in range(txns_each):
            # some clients write a shared relation, others private ones
            if (ci + bi) % 2 == 0 and shared_fraction > 0:
                identifier = "shared"
            else:
                identifier = f"private_{ci}"
            bodies.append(appender(identifier, ci * 100 + bi))
        clients.append(ClientScript(f"c{ci}", bodies))
    return clients


class TestSerializability:
    @pytest.mark.parametrize("seed", range(6))
    def test_final_db_equals_serial_replay(self, seed):
        scheduler = InterleavedScheduler(
            make_clients(3, 4), seed=seed, overlap=0.6
        )
        final = scheduler.run()
        replay = serial_execution(scheduler.committed_scripts)
        assert final == replay

    @pytest.mark.parametrize("seed", range(4))
    def test_all_transactions_eventually_commit(self, seed):
        clients = make_clients(3, 3)
        scheduler = InterleavedScheduler(clients, seed=seed, overlap=0.7)
        scheduler.run()
        expected = sum(len(c.bodies) for c in clients)
        assert len(scheduler.committed_scripts) == expected

    def test_shared_relation_collects_all_writes(self):
        # every client appends to the same relation; retries must not
        # lose updates
        clients = [
            ClientScript(
                f"c{ci}", [appender("shared", ci * 10 + bi)
                           for bi in range(3)]
            )
            for ci in range(3)
        ]
        scheduler = InterleavedScheduler(clients, seed=2, overlap=0.8)
        final = scheduler.run()
        rows = Rollback("shared", NOW).evaluate(final)
        expected_keys = {ci * 10 + bi for ci in range(3) for bi in range(3)}
        assert {row[0] for row in rows.sorted_rows()} == expected_keys

    def test_transaction_numbers_strictly_increase(self):
        scheduler = InterleavedScheduler(
            make_clients(2, 3), seed=9, overlap=0.5
        )
        final = scheduler.run()
        for identifier in final.state:
            txns = final.require(identifier).transaction_numbers
            assert list(txns) == sorted(set(txns))

    def test_no_overlap_degenerates_to_serial(self):
        # overlap=1.0 means "always start new work first", still valid;
        # overlap near 0 commits each transaction before the next begins.
        scheduler = InterleavedScheduler(
            make_clients(2, 3), seed=1, overlap=0.01
        )
        final = scheduler.run()
        assert scheduler.manager.abort_count == 0
        assert final == serial_execution(scheduler.committed_scripts)

    def test_contention_produces_aborts_but_correct_result(self):
        clients = [
            ClientScript(
                f"c{ci}",
                [appender("hot", ci * 10 + bi) for bi in range(4)],
            )
            for ci in range(4)
        ]
        scheduler = InterleavedScheduler(clients, seed=3, overlap=0.9)
        final = scheduler.run()
        assert final == serial_execution(scheduler.committed_scripts)
        # with heavy contention some aborts are expected (not required,
        # but the machinery must cope either way)
        assert scheduler.manager.commit_count == 16


class TestSchedulerCleanup:
    """Regression: a raising ``run`` (retries exhausted) used to leave
    the other in-flight transactions ACTIVE, pinning the manager's
    validation horizon so the commit log could never be pruned again."""

    def test_raising_run_aborts_in_flight_transactions(self):
        from repro.errors import ConcurrencyError

        clients = [
            ClientScript(
                f"c{ci}", [appender("hot", ci * 10 + bi) for bi in range(3)]
            )
            for ci in range(4)
        ]
        scheduler = InterleavedScheduler(
            clients, seed=11, overlap=0.95, max_retries=0
        )
        with pytest.raises(ConcurrencyError):
            scheduler.run()
        assert scheduler.manager.outstanding_count == 0
        # with nothing outstanding, the next commit prunes everything
        t = scheduler.manager.begin()
        t.stage(appender_command("cleanup", 1))
        scheduler.manager.commit(t)
        assert scheduler.manager.validation_log_size == 0

    def test_injected_mvcc_manager_is_used(self):
        from repro.concurrency import MVCCManager

        manager = MVCCManager()
        clients = make_clients(3, 2, shared_fraction=0)
        scheduler = InterleavedScheduler(clients, seed=5, manager=manager)
        final = scheduler.run()
        assert scheduler.manager is manager
        assert manager.commit_count == 6
        assert final == serial_execution(scheduler.committed_scripts)


def appender_command(identifier, key):
    from repro.core.commands import sequence

    return sequence(
        [
            DefineRelation(identifier, "rollback"),
            ModifyState(
                identifier, Union(Rollback(identifier), Const(kv(key)))
            ),
        ]
    )
