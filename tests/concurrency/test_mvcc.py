"""MVCCManager: snapshot reads, first-committer-wins, SSI, pruning."""

from __future__ import annotations

import random

import pytest

from repro.concurrency import MVCCManager, TransactionStatus
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.relation import RelationType
from repro.errors import CommandError, ConcurrencyError


def rows(state):
    return [r[0] for r in state.sorted_rows()]


@pytest.fixture
def manager(make_state):
    """An SI manager with rollback relations A and B installed."""
    m = MVCCManager()
    setup = m.begin()
    for ident in ("A", "B"):
        setup.stage(DefineRelation(ident, RelationType.ROLLBACK))
        setup.stage(ModifyState(ident, Const(make_state(ident.lower()))))
    m.commit(setup)
    return m


class TestLifecycle:
    def test_rejects_unknown_isolation(self):
        with pytest.raises(ConcurrencyError):
            MVCCManager(isolation="serializable")

    def test_commit_empty_transaction(self):
        m = MVCCManager()
        txn = m.begin()
        database = m.commit(txn)
        assert txn.status is TransactionStatus.COMMITTED
        assert database.transaction_number == 0
        assert m.commit_count == 1

    def test_double_commit_rejected(self, manager):
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(ConcurrencyError):
            manager.commit(txn)

    def test_abort_is_idempotent(self, manager):
        txn = manager.begin()
        manager.abort(txn)
        manager.abort(txn)
        assert manager.abort_count == 1
        assert manager.outstanding_count == 0

    def test_snapshot_age_tracks_oldest(self, manager, make_state):
        old = manager.begin()
        assert manager.snapshot_age() == 0
        writer = manager.begin()
        writer.stage(ModifyState("A", Const(make_state("x"))))
        manager.commit(writer)
        assert manager.snapshot_age() == 1
        manager.abort(old)
        assert manager.snapshot_age() == 0


class TestSnapshotReads:
    def test_reads_pin_begin_snapshot(self, manager, make_state):
        reader = manager.begin()
        writer = manager.begin()
        writer.stage(ModifyState("A", Const(make_state("new"))))
        manager.commit(writer)
        assert rows(reader.read(Rollback("A"))) == ["a"]
        # ... and repeatedly: snapshot reads never move
        assert rows(reader.read(Rollback("A"))) == ["a"]

    def test_committed_writes_read_snapshot_values(
        self, manager, make_state
    ):
        # T appends to A; a concurrent commit moves B.  T's expression
        # over A must evaluate against T's snapshot, and T's commit must
        # not disturb the concurrent B write.
        txn = manager.begin()
        txn.stage(
            ModifyState("A", Union(Rollback("A"), Const(make_state("x"))))
        )
        other = manager.begin()
        other.stage(ModifyState("B", Const(make_state("concurrent"))))
        manager.commit(other)
        database = manager.commit(txn)
        assert rows(Rollback("A").evaluate(database)) == ["a", "x"]
        assert rows(Rollback("B").evaluate(database)) == ["concurrent"]

    def test_transaction_reads_its_own_writes(self, manager, make_state):
        txn = manager.begin()
        txn.stage(
            ModifyState("A", Union(Rollback("A"), Const(make_state("x"))))
        )
        txn.stage(
            ModifyState("A", Union(Rollback("A"), Const(make_state("y"))))
        )
        database = manager.commit(txn)
        assert rows(Rollback("A").evaluate(database)) == ["a", "x", "y"]

    def test_version_chain_keeps_both_writers(self, manager, make_state):
        t1 = manager.begin()
        t2 = manager.begin()
        t1.stage(ModifyState("A", Const(make_state("one"))))
        t2.stage(ModifyState("B", Const(make_state("two"))))
        manager.commit(t1)
        database = manager.commit(t2)
        # both committed versions are addressable off the chains
        assert rows(Rollback("A", t1.commit_txn).evaluate(database)) == [
            "one"
        ]
        assert rows(Rollback("B", t2.commit_txn).evaluate(database)) == [
            "two"
        ]

    def test_unbound_modify_is_noop_against_snapshot(
        self, manager, make_state
    ):
        # C is defined by a concurrent transaction; T's snapshot has no
        # C, so T's non-strict modify of C is the paper's no-op.
        txn = manager.begin()
        txn.stage(ModifyState("C", Const(make_state("ghost"))))
        definer = manager.begin()
        definer.stage(DefineRelation("C", RelationType.ROLLBACK))
        definer.stage(ModifyState("C", Const(make_state("real"))))
        manager.commit(definer)
        with pytest.raises(ConcurrencyError):
            # both wrote C: first-committer-wins aborts T
            manager.commit(txn)

    def test_strict_modify_unbound_aborts_at_apply(
        self, manager, make_state
    ):
        txn = manager.begin()
        txn.stage(
            ModifyState("nope", Const(make_state("x")), strict=True)
        )
        with pytest.raises(CommandError):
            manager.commit(txn)
        assert txn.status is TransactionStatus.ABORTED
        assert manager.outstanding_count == 0


class TestFirstCommitterWins:
    def test_overlapping_writes_conflict(self, manager, make_state):
        t1 = manager.begin()
        t2 = manager.begin()
        t1.stage(ModifyState("A", Const(make_state("one"))))
        t2.stage(ModifyState("A", Const(make_state("two"))))
        manager.commit(t1)
        with pytest.raises(ConcurrencyError):
            manager.commit(t2)
        assert t2.status is TransactionStatus.ABORTED
        assert manager.conflict_count == 1

    def test_disjoint_writes_commit(self, manager, make_state):
        t1 = manager.begin()
        t2 = manager.begin()
        t1.stage(ModifyState("A", Const(make_state("one"))))
        t2.stage(ModifyState("B", Const(make_state("two"))))
        manager.commit(t1)
        manager.commit(t2)
        assert manager.conflict_count == 0

    def test_read_only_transactions_never_abort(
        self, manager, make_state
    ):
        reader = manager.begin()
        reader.read(Rollback("A"))
        reader.read(Rollback("B"))
        for _ in range(3):
            writer = manager.begin()
            writer.stage(ModifyState("A", Const(make_state("w"))))
            manager.commit(writer)
        manager.commit(reader)  # must not raise

    def test_sequential_writers_never_conflict(self, manager, make_state):
        for i in range(5):
            txn = manager.begin()
            txn.stage(ModifyState("A", Const(make_state(f"v{i}"))))
            manager.commit(txn)
        assert manager.conflict_count == 0

    def test_write_skew_admitted_under_si(self, manager, make_state):
        t1 = manager.begin()
        t2 = manager.begin()
        t1.read(Rollback("A"))
        t1.read(Rollback("B"))
        t2.read(Rollback("A"))
        t2.read(Rollback("B"))
        t1.stage(ModifyState("A", Const(make_state("skew"))))
        manager.commit(t1)
        t2.stage(ModifyState("B", Const(make_state("skew"))))
        manager.commit(t2)  # SI: disjoint writes, both commit
        assert manager.conflict_count == 0

    def test_mutation_knob_admits_lost_update(self, make_state):
        # the knob exists solely for the checker's mutation test
        m = MVCCManager(first_committer_wins=False)
        setup = m.begin()
        setup.stage(DefineRelation("A", RelationType.ROLLBACK))
        setup.stage(ModifyState("A", Const(make_state("a"))))
        m.commit(setup)
        t1 = m.begin()
        t2 = m.begin()
        t1.stage(
            ModifyState("A", Union(Rollback("A"), Const(make_state("x"))))
        )
        t2.stage(
            ModifyState("A", Union(Rollback("A"), Const(make_state("y"))))
        )
        m.commit(t1)
        database = m.commit(t2)
        # t2 overwrote t1's append from its stale snapshot: lost update
        assert rows(Rollback("A").evaluate(database)) == ["a", "y"]

    def test_run_retries_through_conflicts(self, manager, make_state):
        # two interleaved run() bodies appending to the same relation:
        # the second attempt re-reads the moved snapshot and succeeds
        first = manager.begin()
        first.stage(
            ModifyState("A", Union(Rollback("A"), Const(make_state("x"))))
        )

        def body(txn):
            seen = rows(txn.read(Rollback("A")))
            txn.stage(
                ModifyState(
                    "A",
                    Union(
                        Rollback("A"),
                        Const(make_state(f"after-{len(seen)}")),
                    ),
                )
            )
            if first.status is TransactionStatus.ACTIVE:
                manager.commit(first)

        database = manager.run(body)
        assert "after-2" in rows(Rollback("A").evaluate(database))
        assert manager.conflict_count == 1

    def test_run_raising_body_aborts(self, manager):
        with pytest.raises(RuntimeError):
            manager.run(lambda txn: (_ for _ in ()).throw(RuntimeError()))
        assert manager.outstanding_count == 0


class TestSSI:
    @pytest.fixture
    def ssi(self, make_state):
        m = MVCCManager(isolation="ssi")
        setup = m.begin()
        for ident in ("A", "B"):
            setup.stage(DefineRelation(ident, RelationType.ROLLBACK))
            setup.stage(
                ModifyState(ident, Const(make_state(ident.lower())))
            )
        m.commit(setup)
        return m

    def test_write_skew_aborted(self, ssi, make_state):
        t1 = ssi.begin()
        t2 = ssi.begin()
        t1.read(Rollback("A"))
        t1.read(Rollback("B"))
        t2.read(Rollback("A"))
        t2.read(Rollback("B"))
        t1.stage(ModifyState("A", Const(make_state("skew"))))
        ssi.commit(t1)
        t2.stage(ModifyState("B", Const(make_state("skew"))))
        with pytest.raises(ConcurrencyError, match="ssi"):
            ssi.commit(t2)
        assert ssi.ssi_abort_count == 1

    def test_disjoint_read_write_pairs_commit(self, ssi, make_state):
        t1 = ssi.begin()
        t2 = ssi.begin()
        t1.read(Rollback("A"))
        t1.stage(ModifyState("A", Const(make_state("one"))))
        t2.read(Rollback("B"))
        t2.stage(ModifyState("B", Const(make_state("two"))))
        ssi.commit(t1)
        ssi.commit(t2)
        assert ssi.ssi_abort_count == 0

    def test_read_only_concurrent_with_writer_commits(
        self, ssi, make_state
    ):
        reader = ssi.begin()
        reader.read(Rollback("A"))
        writer = ssi.begin()
        writer.stage(ModifyState("B", Const(make_state("w"))))
        ssi.commit(writer)
        ssi.commit(reader)
        assert ssi.ssi_abort_count == 0

    def test_ssi_log_drains_when_idle(self, ssi, make_state):
        for i in range(4):
            t1 = ssi.begin()
            t1.read(Rollback("A"))
            t1.stage(ModifyState("A", Const(make_state(f"v{i}"))))
            ssi.commit(t1)
        assert ssi.outstanding_count == 0
        assert ssi.validation_log_size == 0

    def test_run_retries_through_ssi_abort(self, ssi, make_state):
        def body(txn):
            txn.read(Rollback("A"))
            txn.read(Rollback("B"))
            if not hasattr(body, "fired"):
                # a rival commits the other half of the skew before this
                # transaction stages its write: the rival passes (only
                # an incoming rw edge), this transaction aborts at its
                # commit for closing the structure, and the retry —
                # which begins after the rival — commits cleanly
                body.fired = True
                rival = ssi.begin()
                rival.read(Rollback("B"))
                rival.stage(ModifyState("A", Const(make_state("rival"))))
                ssi.commit(rival)
            txn.stage(ModifyState("B", Const(make_state("mine"))))

        database = ssi.run(body)
        assert rows(Rollback("B").evaluate(database)) == ["mine"]
        assert ssi.ssi_abort_count >= 1


class TestPruning:
    def test_outstanding_returns_to_zero(self, manager, make_state):
        rng = random.Random(7)
        live = []
        for step in range(60):
            if live and rng.random() < 0.5:
                txn = live.pop(rng.randrange(len(live)))
                if rng.random() < 0.3:
                    manager.abort(txn)
                else:
                    try:
                        manager.commit(txn)
                    except ConcurrencyError:
                        pass
            else:
                txn = manager.begin()
                rel = rng.choice(("A", "B"))
                txn.stage(
                    ModifyState(rel, Const(make_state(f"s{step}")))
                )
                live.append(txn)
        for txn in live:
            manager.abort(txn)
        assert manager.outstanding_count == 0
        assert manager.validation_log_size == 0

    def test_abort_during_apply_prunes(self, manager, make_state):
        # the aborting transaction is the oldest snapshot in an SSI
        # manager: its abort must release the retained commit records
        ssi = MVCCManager(isolation="ssi")
        setup = ssi.begin()
        setup.stage(DefineRelation("A", RelationType.ROLLBACK))
        setup.stage(ModifyState("A", Const(make_state("a"))))
        ssi.commit(setup)
        setup2 = ssi.begin()
        setup2.stage(DefineRelation("B", RelationType.ROLLBACK))
        setup2.stage(ModifyState("B", Const(make_state("b"))))
        ssi.commit(setup2)
        pinner = ssi.begin()
        pinner.read(Rollback("B"))
        writer = ssi.begin()
        writer.stage(ModifyState("A", Const(make_state("w"))))
        ssi.commit(writer)
        assert ssi.validation_log_size == 1  # retained for pinner
        pinner.stage(
            ModifyState("missing", Const(make_state("x")), strict=True)
        )
        with pytest.raises(CommandError):
            ssi.commit(pinner)
        assert pinner.status is TransactionStatus.ABORTED
        assert ssi.outstanding_count == 0
        assert ssi.validation_log_size == 0


class TestMetrics:
    def test_counters_under_enabled_registry(self, manager, make_state):
        from repro.obsv import registry as obsv

        obsv.enable()
        try:
            t1 = manager.begin()
            t2 = manager.begin()
            t1.stage(ModifyState("A", Const(make_state("one"))))
            t2.stage(ModifyState("A", Const(make_state("two"))))
            manager.commit(t1)
            with pytest.raises(ConcurrencyError):
                manager.commit(t2)
            counters = obsv.get().snapshot()["counters"]
            assert counters["concurrency.mvcc.begins"] == 2
            assert counters["concurrency.mvcc.commits"] == 1
            assert counters["concurrency.mvcc.aborts"] == 1
            assert counters["concurrency.mvcc.conflicts"] == 1
        finally:
            obsv.disable()
