"""The property-based isolation checker (E20).

Randomized concurrent schedules run against every manager/isolation
pair; the observed history's DSG is checked for exactly the cycles that
level admits.  The mutation tests then prove the checker has teeth:
disabling first-committer-wins (or passing SSI histories off as
serializable) makes it fail with a concrete illegal cycle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency import MVCCManager, TransactionManager
from tests.concurrency.conftest import chaos_seed

from repro.workloads.histories import (
    ScheduleOp,
    build_dsg,
    check_history,
    random_schedule,
    run_schedule,
    schedule_from_choices,
)

RELATIONS = ("A", "B", "C")


def make_manager(level: str):
    if level == "serial":
        return TransactionManager()
    return MVCCManager(isolation=level)


LEVELS = ("serial", "si", "ssi")


class TestScheduleDecoding:
    def test_every_choice_list_decodes(self, test_seed):
        import random

        rng = random.Random(test_seed)
        for _ in range(50):
            choices = [
                rng.randrange(4096)
                for _ in range(rng.randrange(0, 60))
            ]
            schedule = schedule_from_choices(choices, 4, RELATIONS)
            finishes = [
                op for op in schedule if op.kind in ("commit", "abort")
            ]
            assert len(finishes) == 4  # every client finishes once

    def test_empty_choices_commit_everyone(self):
        schedule = schedule_from_choices([], 3, RELATIONS)
        assert [op.kind for op in schedule] == ["commit"] * 3

    def test_schedules_are_deterministic(self):
        choices = [5, 17, 2, 9, 1, 3, 0, 8]
        first = schedule_from_choices(choices, 3, RELATIONS)
        second = schedule_from_choices(choices, 3, RELATIONS)
        assert first == second


class TestDSG:
    def test_sequential_history_is_clean_everywhere(self):
        schedule = [
            ScheduleOp("append", 0, "A"),
            ScheduleOp("commit", 0),
            ScheduleOp("append", 1, "A"),
            ScheduleOp("commit", 1),
        ]
        for level in LEVELS:
            history = run_schedule(make_manager(level), schedule, ("A",))
            result = check_history(history)
            assert result.ok, result
            assert not result.write_skew

    def test_dsg_edges_of_sequential_appends(self):
        schedule = [
            ScheduleOp("append", 0, "A"),
            ScheduleOp("commit", 0),
            ScheduleOp("append", 1, "A"),
            ScheduleOp("commit", 1),
        ]
        history = run_schedule(MVCCManager(), schedule, ("A",))
        dsg = build_dsg(history)
        kinds = {(src, dst, kind) for src, dst, kind in dsg.edges}
        # setup -> t0 -> t1 in version order; each read the predecessor
        assert (-1, 0, "ww") in kinds
        assert (0, 1, "ww") in kinds
        assert (-1, 0, "wr") in kinds
        assert (0, 1, "wr") in kinds

    def test_write_skew_classified_not_flagged_under_si(self):
        schedule = [
            ScheduleOp("append", 0, "A"),
            ScheduleOp("read", 0, "B"),
            ScheduleOp("append", 1, "B"),
            ScheduleOp("read", 1, "A"),
            ScheduleOp("commit", 0),
            ScheduleOp("commit", 1),
        ]
        history = run_schedule(MVCCManager(), schedule, ("A", "B"))
        assert [t.status for t in history.txns] == [
            "committed",
            "committed",
        ]
        result = check_history(history)
        assert result.ok
        assert result.write_skew  # the 2-rw cycle SI legitimately admits

    def test_ssi_and_serial_prevent_the_same_skew(self):
        schedule = [
            ScheduleOp("append", 0, "A"),
            ScheduleOp("read", 0, "B"),
            ScheduleOp("append", 1, "B"),
            ScheduleOp("read", 1, "A"),
            ScheduleOp("commit", 0),
            ScheduleOp("commit", 1),
        ]
        for level in ("serial", "ssi"):
            history = run_schedule(
                make_manager(level), schedule, ("A", "B")
            )
            result = check_history(history)
            assert result.ok, result
            assert len(history.aborted) == 1  # one half was refused


class TestRandomizedIsolation:
    """Schedule batches reseed from ``REPRO_CHAOS_SEED`` when set (the
    CI isolation-chaos job rotates it per run); failures print the base
    seed, so ``REPRO_CHAOS_SEED=<seed>`` reproduces the whole batch."""

    @pytest.mark.parametrize("level", LEVELS)
    def test_no_illegal_cycles_across_seeds(self, level):
        base = chaos_seed(0)
        for case in range(25):
            schedule = random_schedule(
                base + case,
                txn_count=5,
                relations=RELATIONS,
                length=30,
            )
            history = run_schedule(
                make_manager(level), schedule, RELATIONS
            )
            result = check_history(history)
            assert result.ok, (
                f"REPRO_CHAOS_SEED={base} case {case}: {result} "
                f"schedule={schedule}"
            )

    def test_outstanding_count_zero_after_every_schedule(self):
        base = chaos_seed(1)
        for case in range(25):
            schedule = random_schedule(
                base + case,
                txn_count=6,
                relations=RELATIONS,
                length=40,
            )
            for level in LEVELS:
                manager = make_manager(level)
                run_schedule(manager, schedule, RELATIONS)
                assert manager.outstanding_count == 0, (
                    f"REPRO_CHAOS_SEED={base} case {case} level "
                    f"{level}: {manager.outstanding_count} leaked"
                )
                assert manager.validation_log_size == 0


class TestMutation:
    """The checker must *catch* broken conflict detection."""

    def test_disabled_fcw_caught_by_cycle_check(self):
        # first-committer-wins off: concurrent appenders to one
        # relation lose updates, which the DSG shows as a cycle with a
        # single rw antidependency edge
        caught = False
        for seed in range(50):
            schedule = random_schedule(
                seed, txn_count=5, relations=RELATIONS, length=30
            )
            manager = MVCCManager(first_committer_wins=False)
            history = run_schedule(manager, schedule, RELATIONS)
            result = check_history(history)
            if not result.ok:
                caught = True
                assert any("rw" in v or "G1c" in v for v in result.violations)
                break
        assert caught, (
            "checker failed to catch disabled first-committer-wins "
            "in 50 seeded schedules"
        )

    def test_minimal_lost_update_caught(self):
        # the two-transaction lost update, explicitly
        schedule = [
            ScheduleOp("append", 0, "A"),
            ScheduleOp("append", 1, "A"),
            ScheduleOp("commit", 0),
            ScheduleOp("commit", 1),
        ]
        manager = MVCCManager(first_committer_wins=False)
        history = run_schedule(manager, schedule, ("A",))
        result = check_history(history)
        assert not result.ok
        assert any("lost update" in v for v in result.violations)

    def test_si_history_fails_serializable_contract(self):
        # an SI write-skew history must NOT pass when judged at
        # serializable strength — the checker distinguishes the levels
        schedule = [
            ScheduleOp("append", 0, "A"),
            ScheduleOp("read", 0, "B"),
            ScheduleOp("append", 1, "B"),
            ScheduleOp("read", 1, "A"),
            ScheduleOp("commit", 0),
            ScheduleOp("commit", 1),
        ]
        history = run_schedule(MVCCManager(), schedule, ("A", "B"))
        assert check_history(history, isolation="si").ok
        assert not check_history(history, isolation="ssi").ok


class TestHypothesisShrinking:
    """Random interleavings over 2–5 relations × 2–8 txns; Hypothesis
    shrinks any failure through ``schedule_from_choices`` to a minimal
    choice list, and the run-seed discipline stamps the repro seed."""

    @settings(max_examples=60, deadline=None)
    @given(
        choices=st.lists(
            st.integers(min_value=0, max_value=4095), max_size=80
        ),
        txn_count=st.integers(min_value=2, max_value=8),
        relation_count=st.integers(min_value=2, max_value=5),
        level=st.sampled_from(LEVELS),
    )
    def test_all_interleavings_respect_isolation(
        self, choices, txn_count, relation_count, level
    ):
        relations = tuple("RSTUV"[:relation_count])
        schedule = schedule_from_choices(choices, txn_count, relations)
        manager = make_manager(level)
        history = run_schedule(manager, schedule, relations)
        result = check_history(history)
        assert result.ok, f"{result} schedule={schedule}"
        assert manager.outstanding_count == 0

    @settings(max_examples=40, deadline=None)
    @given(
        choices=st.lists(
            st.integers(min_value=0, max_value=4095), max_size=60
        )
    )
    def test_differential_committed_databases_agree(self, choices):
        # the same schedule produces the same committed *content* under
        # MVCC as the serial oracle whenever neither run aborts anything
        # (disjoint effects); compared via the DSG-checked history
        relations = ("A", "B")
        schedule = schedule_from_choices(choices, 3, relations)
        si = run_schedule(MVCCManager(), schedule, relations)
        serial = run_schedule(TransactionManager(), schedule, relations)
        assert check_history(si).ok
        assert check_history(serial).ok
