"""Shared fixtures for the concurrency suite.

``REPRO_CHAOS_SEED`` reseeds the randomized isolation-checker schedules
from the environment so CI can roll a fresh batch per run while any
failure stays reproducible by exporting the printed seed; when unset,
the run-seed discipline of ``tests/conftest.py`` applies.
"""

from __future__ import annotations

import os

import pytest

from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState


def chaos_seed(default: int = 0) -> int:
    """The base seed for randomized schedule batches; CI varies it via
    the REPRO_CHAOS_SEED environment variable.  When that is unset the
    run seed stands in for ``default``, so every schedule batch stays
    reproducible from the printed header seed."""
    explicit = os.environ.get("REPRO_CHAOS_SEED")
    if explicit:
        return int(explicit)
    from tests.conftest import RUN_SEED, derive_seed

    return derive_seed(RUN_SEED, f"isolation-chaos-{default}")


@pytest.fixture
def value_schema() -> Schema:
    """The single-attribute schema the schedule runner writes."""
    return Schema(["v"])


@pytest.fixture
def make_state(value_schema):
    """``make_state('a', 'b')`` — a one-column snapshot state."""

    def make(*values: str) -> SnapshotState:
        return SnapshotState(value_schema, [(v,) for v in values])

    return make
