"""Tests for the segmented CRC-framed write-ahead log."""

import struct

import pytest

from repro.errors import StorageError
from repro.durability.faults import MemoryStore
from repro.durability.wal import FsyncPolicy, WriteAheadLog

_HEADER = struct.Struct("<II")


class CountingStore(MemoryStore):
    """A MemoryStore that counts fsyncs, for policy assertions."""

    def __init__(self):
        super().__init__()
        self.syncs = 0

    def sync(self, name):
        self.syncs += 1
        super().sync(name)


def payloads_of(wal, after_lsn=0):
    return [payload for _, payload in wal.records(after_lsn)]


class TestFsyncPolicy:
    def test_parse_forms(self):
        assert FsyncPolicy.parse("always").mode == "always"
        assert FsyncPolicy.parse("never").mode == "never"
        batch = FsyncPolicy.parse("batch(8, 250)")
        assert (batch.batch_records, batch.batch_ms) == (8, 250.0)
        assert FsyncPolicy.parse(batch) is batch

    @pytest.mark.parametrize(
        "spec", ["sometimes", "batch()", "batch(0, 10)", "batch(1)"]
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(StorageError):
            FsyncPolicy.parse(spec)

    def test_should_sync(self):
        assert FsyncPolicy.parse("always").should_sync(0, 0.0)
        assert not FsyncPolicy.parse("never").should_sync(10**6, 10**6)
        batch = FsyncPolicy.parse("batch(4, 100)")
        assert not batch.should_sync(3, 0.05)
        assert batch.should_sync(4, 0.0)
        assert batch.should_sync(1, 0.2)


class TestAppendAndRead:
    def test_lsns_and_roundtrip(self):
        wal = WriteAheadLog(MemoryStore(), policy="always")
        items = [f"record-{i}".encode() for i in range(10)]
        assert [wal.append(p) for p in items] == list(range(1, 11))
        assert payloads_of(wal) == items
        assert payloads_of(wal, after_lsn=7) == items[7:]
        assert (wal.first_lsn, wal.last_lsn) == (1, 10)

    def test_empty_payload_rejected(self):
        wal = WriteAheadLog(MemoryStore(), policy="always")
        with pytest.raises(StorageError, match="empty WAL record"):
            wal.append(b"")

    def test_reopen_continues_lsns(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always")
        for i in range(5):
            wal.append(f"a{i}".encode())
        reopened = WriteAheadLog(store, policy="always")
        assert reopened.last_lsn == 5
        assert reopened.append(b"next") == 6
        assert len(payloads_of(reopened)) == 6

    def test_rotation_spans_segments(self):
        store = MemoryStore()
        wal = WriteAheadLog(
            store, policy="always", segment_bytes=64
        )
        items = [f"payload-{i:04d}".encode() for i in range(20)]
        for item in items:
            wal.append(item)
        assert len(wal.segment_names()) > 1
        # names alone order the log
        firsts = [
            int(n[len("wal-"):-len(".seg")])
            for n in wal.segment_names()
        ]
        assert firsts == sorted(firsts)
        assert payloads_of(wal) == items
        # reopen sees the same multi-segment log
        assert payloads_of(WriteAheadLog(store, policy="always")) == items

    def test_oversized_record_still_fits_one_segment(self):
        wal = WriteAheadLog(
            MemoryStore(), policy="always", segment_bytes=32
        )
        big = b"x" * 100
        wal.append(big)
        wal.append(b"small")
        assert payloads_of(wal) == [big, b"small"]


class TestRepair:
    def test_torn_tail_is_truncated(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always")
        wal.append(b"alpha")
        wal.append(b"bravo")
        name = wal.segment_names()[-1]
        # a torn final frame: header promises more bytes than exist
        store.append(name, _HEADER.pack(100, 0) + b"shor")
        store.sync(name)
        reopened = WriteAheadLog(store, policy="always")
        assert payloads_of(reopened) == [b"alpha", b"bravo"]
        assert reopened.torn_records_dropped == 1
        # the file itself was repaired, not just skipped over
        assert reopened.append(b"charlie") == 3
        assert payloads_of(WriteAheadLog(store)) == [
            b"alpha",
            b"bravo",
            b"charlie",
        ]

    def test_mid_segment_bit_flip_truncates_suffix(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always")
        for i in range(6):
            wal.append(f"record-{i}".encode())
        name = wal.segment_names()[0]
        data = store.read(name)
        frame = _HEADER.size + len(b"record-0")
        # flip a payload bit inside the third record
        store.corrupt(name, 2 * frame + _HEADER.size + 1)
        reopened = WriteAheadLog(store, policy="always")
        assert payloads_of(reopened) == [b"record-0", b"record-1"]
        assert reopened.last_lsn == 2
        assert len(store.read(name)) == 2 * frame < len(data)

    def test_corruption_drops_later_segments_too(self):
        """Replay cannot skip a record and stay deterministic, so
        everything after the first invalid byte goes — even whole later
        segments."""
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always", segment_bytes=64)
        for i in range(20):
            wal.append(f"payload-{i:04d}".encode())
        first = wal.segment_names()[0]
        store.corrupt(first, _HEADER.size + 1)
        reopened = WriteAheadLog(store, policy="always")
        assert payloads_of(reopened) == []
        assert reopened.last_lsn == 0
        assert [n for n in store.list() if n.startswith("wal-")] in (
            [],
            [first],
        )

    def test_gapped_segment_is_dropped(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always", segment_bytes=64)
        for i in range(20):
            wal.append(f"payload-{i:04d}".encode())
        names = wal.segment_names()
        assert len(names) >= 3
        store.delete(names[1])
        reopened = WriteAheadLog(store, policy="always")
        # only the prefix before the gap survives
        assert reopened.segment_names() == (names[0],)
        lsns = [lsn for lsn, _ in reopened.records()]
        assert lsns == list(range(1, len(lsns) + 1))


class TestSyncPolicyEffects:
    def test_always_syncs_every_append(self):
        store = CountingStore()
        wal = WriteAheadLog(store, policy="always")
        for i in range(10):
            wal.append(b"x")
        assert store.syncs == 10

    def test_never_never_syncs(self):
        store = CountingStore()
        wal = WriteAheadLog(store, policy="never")
        for i in range(10):
            wal.append(b"x")
        assert store.syncs == 0
        wal.sync()  # explicit sync still works
        assert store.syncs == 1

    def test_batch_syncs_every_n(self):
        store = CountingStore()
        wal = WriteAheadLog(store, policy="batch(4, 60000)")
        for i in range(12):
            wal.append(b"x")
        assert store.syncs == 3

    def test_sync_without_pending_is_noop(self):
        store = CountingStore()
        wal = WriteAheadLog(store, policy="always")
        wal.append(b"x")
        syncs = store.syncs
        wal.sync()
        assert store.syncs == syncs


class TestCompaction:
    def test_drop_segments_through(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always", segment_bytes=64)
        for i in range(20):
            wal.append(f"payload-{i:04d}".encode())
        names = wal.segment_names()
        assert len(names) >= 3
        boundary_lsn = wal.last_lsn - 1
        dropped = wal.drop_segments_through(boundary_lsn)
        assert dropped >= 1
        # at least one segment always remains, and no record past the
        # boundary was lost
        assert len(wal.segment_names()) >= 1
        remaining = [lsn for lsn, _ in wal.records()]
        assert wal.last_lsn in remaining
        assert wal.first_lsn > 1

    def test_never_drops_last_segment(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always", segment_bytes=1 << 20)
        for i in range(5):
            wal.append(b"x")
        assert wal.drop_segments_through(wal.last_lsn) == 0
        assert len(wal.segment_names()) == 1


class TestRebase:
    def test_rebase_empty_log(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always")
        wal.rebase(40)
        assert wal.last_lsn == 40
        assert wal.append(b"x") == 41
        reopened = WriteAheadLog(store, policy="always")
        assert [lsn for lsn, _ in reopened.records()] == [41]

    def test_rebase_drops_stale_records(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always")
        for i in range(5):
            wal.append(b"stale")
        wal.rebase(12)
        assert wal.append(b"fresh") == 13
        assert payloads_of(WriteAheadLog(store)) == [b"fresh"]

    def test_rebase_cannot_go_backwards(self):
        wal = WriteAheadLog(MemoryStore(), policy="always")
        for i in range(5):
            wal.append(b"x")
        with pytest.raises(StorageError, match="cannot rebase"):
            wal.rebase(3)

    def test_rebase_to_current_tip_is_noop(self):
        store = MemoryStore()
        wal = WriteAheadLog(store, policy="always")
        for i in range(3):
            wal.append(b"x")
        names = wal.segment_names()
        wal.rebase(3)
        assert wal.segment_names() == names
        assert wal.append(b"y") == 4
