"""Shared workload + oracle for the durability suite.

The crash-recovery tests are differential: the same command sequence is
run once purely in memory (the *oracle* — one database value per prefix)
and once through the durable stack with injected faults.  Recovery must
always land on one of the oracle's prefixes, never anywhere else.
"""

from __future__ import annotations

import random

import pytest

from repro.core.commands import (
    DefineRelation,
    ModifyState,
    execute,
)
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.workloads.generators import StateGenerator

#: Every relation type the paper defines appears in the workload.
RELATIONS = (
    ("r", "rollback"),
    ("s", "snapshot"),
    ("h", "historical"),
    ("t", "temporal"),
)


def scripted_workload(length: int = 220, seed: int = 7):
    """A deterministic ``length``-command workload over all four
    relation types.

    Besides plain ``modify_state`` with constant states (snapshot rows
    and historical rows with random — sometimes ``FOREVER`` — periods),
    it mixes in the paper's no-op cases (re-defining a bound identifier,
    modifying an unbound one), rollback-reading updates
    (``ρ(I, now) union <const>``), and command sequences, so the WAL
    codec and replay see every command shape.
    """
    rng = random.Random(seed)
    snap = StateGenerator(seed=seed, key_space=40)
    hist = StateGenerator(seed=seed + 1, key_space=40)
    commands = [DefineRelation(i, t) for i, t in RELATIONS]
    modified: set[str] = set()
    while len(commands) < length:
        roll = rng.random()
        if roll < 0.04:
            # paper semantics: re-defining a bound identifier is a no-op
            commands.append(DefineRelation("r", "rollback"))
            continue
        if roll < 0.08:
            # ... as is modifying an unbound identifier
            commands.append(
                ModifyState("ghost", Const(snap.snapshot_state(1)))
            )
            continue
        identifier, rtype = RELATIONS[rng.randrange(len(RELATIONS))]
        if rtype in ("rollback", "snapshot"):
            expression = Const(snap.snapshot_state(rng.randint(1, 4)))
            if identifier in modified and rng.random() < 0.35:
                # append-style update reading the current state
                expression = Union(
                    Rollback(identifier, NOW), expression
                )
        else:
            expression = Const(hist.historical_state(rng.randint(1, 3)))
        command = ModifyState(identifier, expression)
        if roll > 0.95 and identifier in modified:
            # occasionally ship two commands as one sequence record
            command = DefineRelation(identifier, rtype).then(command)
        commands.append(command)
        modified.add(identifier)
    return commands


def oracle_history(commands):
    """Database value after every prefix: ``oracle[k]`` is the result of
    executing the first ``k`` commands from the empty database."""
    databases = [EMPTY_DATABASE]
    for command in commands:
        databases.append(execute(command, databases[-1]))
    return databases


@pytest.fixture(scope="session")
def workload():
    return scripted_workload()


@pytest.fixture(scope="session")
def oracle(workload):
    return oracle_history(workload)


def assert_recovered_prefix(recovered, oracle, completed, min_index):
    """The core recovery invariant: ``recovered`` equals ``oracle[m]``
    for some ``min_index ≤ m ≤ completed + 1``, and FINDSTATE agrees
    with that oracle prefix for every relation at every transaction
    number.  Returns ``m``.

    The upper bound is ``completed + 1`` because a crash *during* a
    command's post-append bookkeeping can leave the record durable even
    though the caller never saw the command acknowledged.
    """
    upper = min(completed + 1, len(oracle) - 1)
    match = None
    for index in range(upper, -1, -1):
        if oracle[index] == recovered:
            match = index
            break
    assert match is not None, (
        "recovered database is not any prefix of the committed history "
        f"(completed={completed}, recovered txn="
        f"{recovered.transaction_number})"
    )
    assert match >= min_index, (
        f"recovery lost acknowledged commands: recovered prefix {match} "
        f"but the fsync policy guarantees at least {min_index}"
    )
    expected = oracle[match]
    assert recovered.transaction_number == expected.transaction_number
    for identifier in recovered.state:
        relation = recovered.require(identifier)
        mirror = expected.require(identifier)
        for txn in range(recovered.transaction_number + 1):
            assert relation.find_state(txn) == mirror.find_state(txn), (
                f"FINDSTATE({identifier!r}, {txn}) diverges from the "
                f"oracle at prefix {match}"
            )
    return match
