"""Tests for the WAL command codec."""

import pytest

from repro.errors import StorageError
from repro.core.commands import (
    DefineRelation,
    ModifyState,
    Sequence,
    execute,
)
from repro.core.database import EMPTY_DATABASE
from repro.durability.codec import (
    command_from_dict,
    command_to_dict,
    decode_command,
    decode_record,
    encode_command,
    encode_record,
)
from repro.lang.parser import parse_command, parse_sentence

from tests.durability.conftest import oracle_history


def roundtrip(command):
    return decode_command(encode_command(command))


#: Paper-flavoured programs, as the parser would produce them — the
#: codec must round-trip anything the language can say.
PROGRAMS = [
    "define_relation(faculty, snapshot)",
    "define_relation(log, rollback)",
    "define_relation(emp, historical)",
    "define_relation(audit, temporal)",
    'modify_state(faculty, state (name: string, rank: string)'
    ' { ("Merrie", "Assistant"), ("Tom", "Associate") })',
    "modify_state(log, (rollback(log, now) union"
    ' state (k: integer) { (1), (2) }))',
    "modify_state(log, (rollback(log, 3) minus rollback(log, 1)))",
    "modify_state(faculty, project [name]"
    ' (select [rank = "Assistant"] (rollback(faculty, now))))',
    "modify_state(faculty, (rollback(faculty, now) times"
    ' state (dept: string) { ("cs") }))',
    'modify_state(emp, state (name: string)'
    ' { ("Ann") @ [1, 10), ("Ed") @ [5, forever) })',
    "modify_state(emp, derive [ ; ] (rollback(emp, now)))",
    "modify_state(emp, derive [nonempty(valid) ;"
    " periods [2, 8)] (rollback(emp, now)))",
    "modify_state(emp, derive [first(valid) precedes periods [50, 60)"
    " ; extend(first(valid), last(valid))] (rollback(emp, now)))",
    'modify_state(audit, state (name: string) { ("x") @ [0, 30) })',
    "modify_state(audit, derive [valid overlaps periods [1, 20) ;"
    " intersect(valid, periods [1, 20))] (rollback(audit, now)))",
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_parser_commands_roundtrip(self, source):
        command = parse_command(source)
        payload = command_to_dict(command)
        assert command_to_dict(command_from_dict(payload)) == payload

    def test_roundtrip_preserves_semantics(self):
        """Replaying decoded commands reproduces the exact database the
        originals produce — including every historical valid time."""
        sentence = parse_sentence(";\n".join(PROGRAMS))
        database = EMPTY_DATABASE
        replayed = EMPTY_DATABASE
        for command in sentence:
            database = execute(command, database)
            replayed = execute(roundtrip(command), replayed)
        assert replayed == database
        assert replayed.transaction_number == len(PROGRAMS)

    def test_workload_commands_roundtrip(self, workload, oracle):
        decoded = [roundtrip(command) for command in workload]
        assert oracle_history(decoded)[-1] == oracle[-1]

    def test_strict_and_memoize_flags_survive(self):
        define = DefineRelation("r", "rollback", strict=True)
        assert roundtrip(define).strict is True
        modify = parse_command(
            "modify_state(r, rollback(r, now))"
        )
        flagged = ModifyState(
            modify.identifier,
            modify.expression,
            strict=True,
            memoize=True,
        )
        back = roundtrip(flagged)
        assert back.strict is True and back.memoize is True

    def test_sequence_flattens_in_execution_order(self):
        first = parse_command("define_relation(r, rollback)")
        second = parse_command(
            "modify_state(r, state (k: integer) { (1) })"
        )
        third = parse_command(
            "modify_state(r, (rollback(r, now) union"
            " state (k: integer) { (2) }))"
        )
        nested = Sequence(Sequence(first, second), third)
        payload = command_to_dict(nested)
        assert payload["op"] == "seq"
        assert [c["op"] for c in payload["commands"]] == [
            "define",
            "modify",
            "modify",
        ]
        assert execute(roundtrip(nested), EMPTY_DATABASE) == execute(
            nested, EMPTY_DATABASE
        )


class TestRecords:
    def test_record_carries_txn(self):
        command = parse_command("define_relation(r, rollback)")
        back, txn = decode_record(encode_record(command, 17))
        assert txn == 17
        assert command_to_dict(back) == command_to_dict(command)

    def test_record_bytes_are_canonical(self):
        command = parse_command("define_relation(r, rollback)")
        assert encode_record(command, 1) == encode_record(command, 1)


class TestRejections:
    def test_unknown_op(self):
        with pytest.raises(StorageError, match="unknown command op"):
            command_from_dict({"op": "drop", "id": "r"})

    def test_non_object_payload(self):
        with pytest.raises(StorageError, match="expected a JSON object"):
            decode_command(b"[1, 2]")

    def test_garbage_bytes(self):
        with pytest.raises(StorageError, match="malformed"):
            decode_command(b"\xff\x00 not json")

    def test_bad_expression_text(self):
        with pytest.raises(StorageError, match="malformed 'modify'"):
            command_from_dict(
                {"op": "modify", "id": "r", "expr": "union union("}
            )

    def test_record_missing_fields(self):
        with pytest.raises(StorageError, match="missing"):
            decode_record(b'{"cmd": {"op": "define"}}')

    def test_record_bad_txn(self):
        with pytest.raises(StorageError, match="bad transaction number"):
            decode_record(
                b'{"txn": -3, "cmd":'
                b' {"op": "define", "id": "r", "rtype": "rollback"}}'
            )
