"""Property: WAL open-time repair is prefix-preserving under any
single-bit flip.

For every bit position in every segment of a multi-segment log,
flipping exactly that bit and re-opening must yield a record sequence
that is an exact prefix of the original — same LSNs, same payload
bytes — never a reordering, a skip, or a forged record.  One flipped
bit may cost the record it lands in *and everything after it* (the
suffix cannot be replayed deterministically past a hole), but it can
never corrupt what is served.
"""

import random

import pytest

from repro.durability.faults import MemoryStore
from repro.durability.wal import WriteAheadLog

from tests.durability.conftest import scripted_workload
from repro.durability.codec import encode_record


def _build_log(payloads, segment_bytes):
    store = MemoryStore()
    wal = WriteAheadLog(store, policy="always", segment_bytes=segment_bytes)
    for payload in payloads:
        wal.append(payload)
    files = {name: store.read(name) for name in store.list()}
    return files, list(wal.records())


def _reopen_with_flip(files, name, bit):
    store = MemoryStore()
    for filename, data in files.items():
        if filename == name:
            index, offset = divmod(bit, 8)
            data = (
                data[:index]
                + bytes([data[index] ^ (1 << offset)])
                + data[index + 1:]
            )
        store.append(filename, data)
    return list(WriteAheadLog(store, policy="always").records())


def _assert_exact_prefix(recovered, original, context):
    assert len(recovered) <= len(original), context
    assert recovered == original[: len(recovered)], context


class TestSingleBitFlips:
    def test_every_bit_of_a_small_log_exhaustively(self):
        # tiny payloads keep the whole multi-segment log ~150 bytes, so
        # every single bit position is tried
        payloads = [
            bytes([65 + i]) * (1 + i % 3) for i in range(12)
        ]
        files, original = _build_log(payloads, segment_bytes=48)
        assert len(files) > 2, "property needs a multi-segment log"
        for name, data in sorted(files.items()):
            for bit in range(len(data) * 8):
                recovered = _reopen_with_flip(files, name, bit)
                _assert_exact_prefix(
                    recovered, original, f"{name} bit {bit}"
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_sampled_bits_of_realistic_command_records(self, seed):
        # real encoded command records (the bytes replication actually
        # ships), sampled flips across every segment
        rng = random.Random(seed)
        commands = scripted_workload(length=30, seed=seed)
        payloads = [
            encode_record(command, txn)
            for txn, command in enumerate(commands, start=1)
        ]
        files, original = _build_log(payloads, segment_bytes=512)
        assert len(files) >= 2
        for name, data in sorted(files.items()):
            for bit in rng.sample(range(len(data) * 8), 40):
                recovered = _reopen_with_flip(files, name, bit)
                _assert_exact_prefix(
                    recovered, original, f"seed {seed} {name} bit {bit}"
                )

    def test_flip_in_first_record_loses_everything_after(self):
        payloads = [b"alpha", b"beta", b"gamma"]
        files, original = _build_log(payloads, segment_bytes=1 << 20)
        (name,) = files
        # bit 64 lands inside record 1's payload (after its 8-byte header)
        recovered = _reopen_with_flip(files, name, 64)
        assert recovered == []  # prefix of length 0 is still a prefix

    def test_unflipped_log_reopens_identically(self):
        payloads = [b"alpha", b"beta", b"gamma"]
        files, original = _build_log(payloads, segment_bytes=64)
        store = MemoryStore()
        for filename, data in files.items():
            store.append(filename, data)
        assert list(WriteAheadLog(store).records()) == original
