"""Tests for the durable integration surface: Session(durable_dir=...),
the VersionedDatabase mirror, DirectoryStore on a real filesystem, and
WAL metrics through the observability hooks."""

import pytest

from repro.errors import StorageError
from repro.core.expressions import Rollback
from repro.core.txn import NOW
from repro.durability import DurableDatabase, MemoryStore
from repro.durability.files import DirectoryStore
from repro.lang.session import Session
from repro.obsv import hooks
from repro.obsv.registry import MetricsRegistry
from repro.storage import DeltaBackend, FullCopyBackend
from repro.storage.versioned_db import VersionedDatabase, backends_agree


class TestDurableSession:
    def test_restart_continuity(self, tmp_path):
        directory = str(tmp_path / "db")
        session = Session(durable_dir=directory, fsync="always")
        session.execute(
            "define_relation(r, rollback);"
            'modify_state(r, state (k: integer) { (1), (2) });'
            "modify_state(r, (rollback(r, now) union"
            ' state (k: integer) { (3) }));'
        )
        before = session.database
        assert session.transaction_number == 3
        session.close()

        reopened = Session(durable_dir=directory)
        assert reopened.database == before
        assert reopened.transaction_number == 3
        # history is seeded with the recovered value, and the session
        # keeps working durably
        assert reopened.history[0] == before
        reopened.execute(
            "modify_state(r, (rollback(r, now) minus"
            ' state (k: integer) { (1) }));'
        )
        state = reopened.query("rollback(r, now)")
        assert sorted(t.values[0] for t in state.tuples) == [2, 3]
        reopened.close()

        third = Session(durable_dir=directory)
        assert third.transaction_number == 4

    def test_in_memory_session_has_no_durable(self):
        session = Session()
        assert session.durable is None
        session.checkpoint()  # no-ops, not errors
        session.close()

    def test_explicit_checkpoint_compacts(self, tmp_path):
        session = Session(
            durable_dir=str(tmp_path / "db"),
            fsync="always",
            checkpoint_every=0,
        )
        session.execute("define_relation(r, rollback);")
        for i in range(10):
            session.execute(
                f"modify_state(r, state (k: integer) {{ ({i}) }});"
            )
        session.checkpoint()
        names = session.durable.store.list()
        assert any(n.startswith("checkpoint-") for n in names)
        session.close()
        reopened = Session(durable_dir=str(tmp_path / "db"))
        assert reopened.transaction_number == 11
        assert reopened.durable.last_recovery.checkpoint_lsn == 11


class TestDirectoryStore:
    def test_path_traversal_rejected(self, tmp_path):
        store = DirectoryStore(tmp_path)
        with pytest.raises(StorageError):
            store.append("../escape", b"x")
        with pytest.raises(StorageError):
            store.read("a/b")

    def test_replace_then_read_after_reopen(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.append("f", b"abc")
        store.replace("f", b"xyz")
        store.append("f", b"123")
        store.close()
        assert DirectoryStore(tmp_path).read("f") == b"xyz123"

    def test_durable_database_over_real_directory(
        self, tmp_path, workload, oracle
    ):
        with DurableDatabase(
            str(tmp_path / "wal"),
            fsync="batch(16, 60000)",
            checkpoint_every=50,
            segment_bytes=4096,
        ) as ddb:
            for command in workload[:120]:
                ddb.execute(command)
        reopened = DurableDatabase(str(tmp_path / "wal"))
        assert reopened.database == oracle[120]
        reopened.close()


class TestBackendMirror:
    def test_mirror_stays_in_lockstep(self, workload, oracle):
        ddb = DurableDatabase(
            MemoryStore(),
            fsync="always",
            checkpoint_every=0,
            backend=DeltaBackend(),
        )
        for command in workload[:60]:
            ddb.execute(command)
        assert (
            ddb.versioned.transaction_number
            == oracle[60].transaction_number
        )
        reference = VersionedDatabase(FullCopyBackend())
        for command in workload[:60]:
            reference.execute(command)
        probes = [
            (identifier, txn)
            for identifier in ("r", "s", "h", "t")
            for txn in range(0, 61, 5)
        ]
        assert backends_agree(
            [ddb.versioned.backend, reference.backend], probes
        )
        # reads go through the physical mirror
        expression = Rollback("r", NOW)
        assert ddb.evaluate(expression) == expression.evaluate(
            oracle[60]
        )

    def test_recovery_rebuilds_backend(self, workload, oracle):
        store = MemoryStore()
        with DurableDatabase(store, fsync="always") as ddb:
            for command in workload[:60]:
                ddb.execute(command)
        recovered = DurableDatabase(store, backend=DeltaBackend())
        assert recovered.database == oracle[60]
        assert (
            recovered.versioned.transaction_number
            == oracle[60].transaction_number
        )
        expression = Rollback("t", NOW)
        assert recovered.evaluate(expression) == expression.evaluate(
            oracle[60]
        )

    def test_restore_replaces_nonempty_backend(self, workload, oracle):
        # restoring over a backend that already holds content wipes it
        # first (the replica re-snapshot path) and lands exactly on the
        # restored value
        backend = FullCopyBackend()
        vdb = VersionedDatabase(backend)
        for command in workload[:10]:
            vdb.execute(command)
        vdb.restore(oracle[20])
        assert vdb.transaction_number == oracle[20].transaction_number
        reference = VersionedDatabase(FullCopyBackend())
        reference.restore(oracle[20])
        probes = [
            (identifier, txn)
            for identifier in ("r", "s", "h", "t")
            for txn in range(oracle[20].transaction_number + 1)
        ]
        assert backends_agree([backend, reference.backend], probes)


class TestStateAt:
    def test_state_at_matches_oracle(self, workload, oracle):
        store = MemoryStore()
        ddb = DurableDatabase(store, fsync="always")
        for command in workload[:80]:
            ddb.execute(command)
        expected = oracle[80]
        for identifier in ("r", "s", "h", "t"):
            relation = expected.require(identifier)
            for txn in (0, 1, 40, 80):
                assert ddb.state_at(identifier, txn) == relation.find_state(
                    txn
                )
        assert ddb.state_at("ghost", 40) is None


class TestWalMetrics:
    def test_wal_metrics_flow_through_hooks(self, workload):
        registry = MetricsRegistry()
        hooks.install(registry)
        try:
            store = MemoryStore()
            ddb = DurableDatabase(
                store,
                fsync="always",
                checkpoint_every=20,
                segment_bytes=2048,
            )
            for command in workload[:50]:
                ddb.execute(command)
            ddb.close()
            DurableDatabase(store).close()
        finally:
            hooks.uninstall()
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["wal.records_appended"] == 50
        assert counters["wal.fsyncs"] >= 50
        assert counters["wal.bytes_appended"] > 0
        assert counters["wal.segments_rotated"] >= 1
        assert counters["wal.checkpoints_written"] == 2
        assert counters["wal.recoveries"] == 2
        assert "wal.recovery_seconds" in snapshot["histograms"]

    def test_no_observer_no_metrics(self, workload):
        assert hooks.wal_observer() is None
        ddb = DurableDatabase(MemoryStore(), fsync="always")
        for command in workload[:5]:
            ddb.execute(command)
        assert hooks.wal_observer() is None
