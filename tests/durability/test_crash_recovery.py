"""Differential crash-recovery tests.

The invariant (ISSUE acceptance criterion): for a ≥200-transaction
scripted workload, killing the process at *any* injected fault point and
recovering yields a database equal to the in-memory oracle at some
prefix of the committed command sequence — with a policy-dependent floor
on how much may be lost — and ``FINDSTATE`` agrees with that oracle
prefix for every relation at every transaction number.

* ``always``    — nothing acknowledged is ever lost (floor = completed);
* ``batch(N,·)``— at most the pending batch is lost (floor = completed−N);
* ``never``     — only un-fsynced suffixes are lost, never corrupted
  (floor = the last completed checkpoint).

Crash points are swept over the store's own operation counter, so they
land *inside* appends, fsyncs, checkpoint publishes and compaction
deletes — not just between commands.
"""

import pytest

from repro.durability import (
    CrashPoint,
    DurableDatabase,
    FaultPlan,
    MemoryStore,
)

from tests.durability.conftest import assert_recovered_prefix

CHECKPOINT_EVERY = 40
BATCH_RECORDS = 8

POLICIES = {
    "always": "always",
    "batch": f"batch({BATCH_RECORDS}, 60000)",
    "never": "never",
}

DDB_OPTS = dict(
    checkpoint_every=CHECKPOINT_EVERY,
    keep_checkpoints=2,
    segment_bytes=2048,
)

#: Surviving-tail shapes at the crash: clean cut, a short torn prefix
#: with a flipped bit, and a long torn prefix.
TAILS = [
    pytest.param(0, False, id="tail0"),
    pytest.param(5, True, id="tail5-flipped"),
    pytest.param(200, False, id="tail200"),
]


def run_workload(store, commands, policy):
    """Execute commands until a CrashPoint fires (or all complete);
    returns how many were acknowledged."""
    completed = 0
    try:
        ddb = DurableDatabase(store, fsync=policy, **DDB_OPTS)
        for command in commands:
            ddb.execute(command)
            completed += 1
        ddb.close()
    except CrashPoint:
        pass
    return completed


def loss_floor(policy_key, completed):
    """The policy's guaranteed-durable prefix after ``completed``
    acknowledged commands (checkpoints always fsync the log)."""
    checkpoint_floor = CHECKPOINT_EVERY * (completed // CHECKPOINT_EVERY)
    if policy_key == "always":
        return completed
    if policy_key == "batch":
        return max(checkpoint_floor, completed - BATCH_RECORDS)
    return checkpoint_floor


def probe_total_ops(workload, policy):
    """Fault-free run: the store-op count whose range the crash points
    sweep."""
    store = MemoryStore()
    run_workload(store, workload, policy)
    return store.ops


def crash_points(total_ops):
    """A spread of crash ops: the fragile early ops, mid-run points
    around checkpoint boundaries, and the very end."""
    raw = [
        1,
        2,
        5,
        total_ops // 8,
        total_ops // 3,
        total_ops // 2,
        (2 * total_ops) // 3,
        total_ops - 5,
        total_ops - 1,
    ]
    return sorted({op for op in raw if 1 <= op <= total_ops})


@pytest.mark.parametrize("policy_key", list(POLICIES))
@pytest.mark.parametrize("keep_tail,flip", TAILS)
def test_crash_matrix(policy_key, keep_tail, flip, workload, oracle):
    policy = POLICIES[policy_key]
    total_ops = probe_total_ops(workload, policy)
    assert total_ops > len(workload)  # the sweep covers every command
    for crash_op in crash_points(total_ops):
        plan = FaultPlan(
            crash_at_op=crash_op,
            keep_tail_bytes=keep_tail,
            flip_bit_in_tail=flip,
            seed=crash_op,
        )
        store = MemoryStore(plan)
        completed = run_workload(store, workload, policy)
        assert completed < len(workload)
        store.crash()
        recovered = DurableDatabase(store, fsync=policy, **DDB_OPTS)
        assert_recovered_prefix(
            recovered.database,
            oracle,
            completed,
            loss_floor(policy_key, completed),
        )
        recovered.close()


@pytest.mark.parametrize("policy_key", list(POLICIES))
def test_clean_shutdown_loses_nothing(policy_key, workload, oracle):
    """close() syncs: a crash *after* a clean shutdown recovers the full
    history under every policy, including ``never``."""
    store = MemoryStore()
    completed = run_workload(store, workload, POLICIES[policy_key])
    assert completed == len(workload)
    store.crash()
    recovered = DurableDatabase(store, fsync=POLICIES[policy_key])
    assert recovered.database == oracle[-1]


def test_recovered_database_keeps_working(workload, oracle):
    """Post-recovery, the database accepts the rest of the workload and
    ends exactly where the oracle does."""
    policy = POLICIES["batch"]
    total_ops = probe_total_ops(workload, policy)
    plan = FaultPlan(crash_at_op=total_ops // 2, keep_tail_bytes=3)
    store = MemoryStore(plan)
    completed = run_workload(store, workload, policy)
    store.crash()
    ddb = DurableDatabase(store, fsync=policy, **DDB_OPTS)
    match = next(
        i
        for i in range(completed + 1, -1, -1)
        if oracle[i] == ddb.database
    )
    for command in workload[match:]:
        ddb.execute(command)
    ddb.close()
    assert ddb.database == oracle[-1]
    reopened = DurableDatabase(store, fsync=policy)
    assert reopened.database == oracle[-1]


def test_lying_fsync_still_recovers_a_prefix(workload, oracle):
    """A lying fsync (reported durable, wasn't) can lose everything
    since the last checkpoint *publish* — but recovery still lands on a
    committed prefix, and the rebased log keeps later commands durable."""
    plan = FaultPlan(sync_lies=True)
    store = MemoryStore(plan)
    completed = run_workload(store, workload[:100], "always")
    assert completed == 100
    store.crash()
    ddb = DurableDatabase(store, fsync="always", **DDB_OPTS)
    # checkpoints go through replace(), which is atomic-and-durable, so
    # the floor is the last checkpoint boundary even though every
    # segment file vanished
    match = assert_recovered_prefix(
        ddb.database,
        oracle,
        completed,
        CHECKPOINT_EVERY * (completed // CHECKPOINT_EVERY),
    )
    # honest disk from here on: continue and verify full durability
    for command in workload[match:120]:
        ddb.execute(command)
    ddb.close()
    assert DurableDatabase(store).database == oracle[120]


def test_repeated_crashes(workload, oracle):
    """Crash, recover, crash again mid-recovery-tail, recover again —
    each recovery is itself crash-safe."""
    policy = POLICIES["always"]
    total_ops = probe_total_ops(workload, policy)
    store = MemoryStore(
        FaultPlan(crash_at_op=total_ops // 2, keep_tail_bytes=7, seed=1)
    )
    completed = run_workload(store, workload, policy)
    store.crash()

    ddb = DurableDatabase(store, fsync=policy, **DDB_OPTS)
    match = next(
        i
        for i in range(completed + 1, -1, -1)
        if oracle[i] == ddb.database
    )
    # arm a second crash while the recovered database keeps executing
    store._plan = FaultPlan(crash_at_op=store.ops + 23, seed=2)
    second_completed = match
    try:
        for command in workload[match:]:
            ddb.execute(command)
            second_completed += 1
    except CrashPoint:
        pass
    store.crash()
    final = DurableDatabase(store, fsync=policy, **DDB_OPTS)
    assert_recovered_prefix(
        final.database, oracle, second_completed, second_completed
    )
