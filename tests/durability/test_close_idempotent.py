"""``DurableDatabase.close()`` is idempotent and safe mid-batch."""

import pytest

from repro.errors import StorageError
from repro.durability import DurableDatabase, MemoryStore

from tests.durability.conftest import scripted_workload


class TestCloseIdempotent:
    def test_double_close_is_a_no_op(self):
        ddb = DurableDatabase(MemoryStore(), fsync="always")
        ddb.close()
        assert ddb.closed
        ddb.close()  # second close must not raise or touch the store
        assert ddb.closed

    def test_close_mid_batch_fsyncs_pending_records_once(self):
        workload = scripted_workload(length=30, seed=11)
        store = MemoryStore()
        # a batch policy that will never trigger on its own: every
        # record is still pending when close() arrives
        ddb = DurableDatabase(
            store, fsync="batch(1000, 600000)", checkpoint_every=0
        )
        for command in workload:
            ddb.execute(command)
        before = ddb.database
        ddb.close()
        ddb.close()
        store.crash()  # only fsynced bytes survive
        recovered = DurableDatabase(store)
        assert recovered.database == before

    def test_execute_after_close_is_refused(self):
        workload = scripted_workload(length=5, seed=1)
        ddb = DurableDatabase(MemoryStore(), fsync="always")
        ddb.execute(workload[0])
        ddb.close()
        with pytest.raises(StorageError):
            ddb.execute(workload[1])

    def test_context_manager_plus_explicit_close(self):
        workload = scripted_workload(length=5, seed=2)
        store = MemoryStore()
        with DurableDatabase(store, fsync="always") as ddb:
            for command in workload:
                ddb.execute(command)
            ddb.close()  # early close inside the with-block is fine
        assert ddb.closed
        assert DurableDatabase(store).database == ddb.database

    def test_replica_handoff_after_close(self):
        # the promote() shape: close() releases the durable handle and a
        # new one over the same store picks up exactly where it stopped
        workload = scripted_workload(length=20, seed=4)
        store = MemoryStore()
        ddb = DurableDatabase(store, fsync="batch(64, 60000)")
        for command in workload:
            ddb.execute(command)
        ddb.close()
        successor = DurableDatabase(store, fsync="always")
        assert successor.wal.last_lsn == 20
        assert successor.database == ddb.database
        ddb.close()  # the old handle stays inert
        successor.execute(scripted_workload(length=21, seed=4)[20])
        assert successor.wal.last_lsn == 21
