"""Tests for checkpoints and checkpoint-plus-replay recovery."""

import json

import pytest

from repro.errors import StorageError
from repro.durability import DurableDatabase, MemoryStore
from repro.durability.checkpoint import (
    checkpoint_name,
    drop_old_checkpoints,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.durability.recovery import recover


def corrupt_checkpoint(store, name):
    """Flip one bit inside the checkpoint's embedded database body."""
    data = store.read(name)
    offset = data.index(b'"database"') + len(b'"database"') + 10
    store.corrupt(name, offset)


class TestCheckpointFiles:
    def test_roundtrip(self, oracle):
        store = MemoryStore()
        database = oracle[100]
        name = write_checkpoint(store, database, 100)
        lsn, loaded = read_checkpoint(store, name)
        assert lsn == 100
        assert loaded == database
        assert latest_checkpoint(store) == (100, database)

    def test_newest_wins(self, oracle):
        store = MemoryStore()
        write_checkpoint(store, oracle[50], 50)
        write_checkpoint(store, oracle[120], 120)
        lsn, loaded = latest_checkpoint(store)
        assert (lsn, loaded) == (120, oracle[120])

    def test_crc_detects_corruption(self, oracle):
        store = MemoryStore()
        name = write_checkpoint(store, oracle[30], 30)
        corrupt_checkpoint(store, name)
        with pytest.raises(StorageError, match="CRC"):
            read_checkpoint(store, name)

    def test_corrupt_newest_falls_back(self, oracle):
        store = MemoryStore()
        write_checkpoint(store, oracle[50], 50)
        name = write_checkpoint(store, oracle[120], 120)
        corrupt_checkpoint(store, name)
        assert latest_checkpoint(store) == (50, oracle[50])

    def test_all_corrupt_means_none(self, oracle):
        store = MemoryStore()
        for lsn in (10, 20):
            corrupt_checkpoint(
                store, write_checkpoint(store, oracle[lsn], lsn)
            )
        assert latest_checkpoint(store) is None

    def test_unsupported_version_rejected(self, oracle):
        store = MemoryStore()
        name = write_checkpoint(store, oracle[10], 10)
        envelope = json.loads(store.read(name).decode())
        envelope["version"] = 99
        store.replace(name, json.dumps(envelope).encode())
        with pytest.raises(StorageError, match="version"):
            read_checkpoint(store, name)

    def test_drop_old_checkpoints(self, oracle):
        store = MemoryStore()
        for lsn in (10, 20, 30, 40):
            write_checkpoint(store, oracle[lsn], lsn)
        kept = drop_old_checkpoints(store, keep=2)
        assert kept == (30, 40)
        assert list_checkpoints(store) == (
            checkpoint_name(30),
            checkpoint_name(40),
        )
        with pytest.raises(StorageError, match="at least one"):
            drop_old_checkpoints(store, keep=0)


class TestRecovery:
    def test_empty_store_recovers_empty(self):
        result = recover(MemoryStore())
        assert result.database.transaction_number == 0
        assert (result.checkpoint_lsn, result.replayed) == (0, 0)

    def test_replay_without_checkpoint(self, workload, oracle):
        store = MemoryStore()
        with DurableDatabase(
            store, fsync="always", checkpoint_every=0
        ) as ddb:
            for command in workload[:60]:
                ddb.execute(command)
        result = recover(store)
        assert result.database == oracle[60]
        assert result.checkpoint_lsn == 0
        assert result.replayed == 60

    def test_checkpoint_bounds_replay(self, workload, oracle):
        store = MemoryStore()
        with DurableDatabase(
            store, fsync="always", checkpoint_every=0
        ) as ddb:
            for command in workload[:50]:
                ddb.execute(command)
            ddb.checkpoint()
            for command in workload[50:60]:
                ddb.execute(command)
        result = recover(store)
        assert result.database == oracle[60]
        assert result.checkpoint_lsn == 50
        assert result.replayed == 10

    def test_compaction_preserves_recovery(self, workload, oracle):
        store = MemoryStore()
        with DurableDatabase(
            store,
            fsync="always",
            checkpoint_every=20,
            keep_checkpoints=2,
            segment_bytes=2048,
        ) as ddb:
            for command in workload[:90]:
                ddb.execute(command)
        # compaction really dropped something
        assert recover(store).database == oracle[90]

    def test_corrupt_newest_checkpoint_replays_longer_tail(
        self, workload, oracle
    ):
        """Recovery falls back to the older checkpoint; compaction kept
        every WAL record past it, so nothing is lost."""
        store = MemoryStore()
        with DurableDatabase(
            store,
            fsync="always",
            checkpoint_every=20,
            keep_checkpoints=2,
            segment_bytes=2048,
        ) as ddb:
            for command in workload[:90]:
                ddb.execute(command)
        checkpoints = list_checkpoints(store)
        assert len(checkpoints) == 2
        corrupt_checkpoint(store, checkpoints[-1])
        result = recover(store)
        assert result.database == oracle[90]
        assert result.checkpoint_lsn < 90

    def test_divergent_log_fails_loudly(self, workload, oracle):
        """If every checkpoint is lost *and* the early log was compacted
        away, replay cannot reach a consistent state — recovery must
        raise, not silently return a wrong database."""
        store = MemoryStore()
        with DurableDatabase(
            store,
            fsync="always",
            checkpoint_every=20,
            keep_checkpoints=2,
            segment_bytes=2048,
        ) as ddb:
            for command in workload[:90]:
                ddb.execute(command)
        compacted = recover(store)
        assert compacted.checkpoint_lsn > 0
        for name in list_checkpoints(store):
            store.delete(name)
        with pytest.raises(StorageError, match="diverged"):
            recover(store)

    def test_checkpoint_outliving_log_rebases_lsns(
        self, workload, oracle
    ):
        """A checkpoint newer than the entire surviving log (total WAL
        loss) must not make post-recovery commands invisible to the
        *next* recovery."""
        store = MemoryStore()
        with DurableDatabase(
            store, fsync="always", checkpoint_every=0
        ) as ddb:
            for command in workload[:40]:
                ddb.execute(command)
            ddb.checkpoint()
        for name in store.list():
            if name.startswith("wal-"):
                store.delete(name)
        ddb = DurableDatabase(store, fsync="always", checkpoint_every=0)
        assert ddb.database == oracle[40]
        assert ddb.wal.last_lsn == 40  # rebased past the covered range
        for command in workload[40:55]:
            ddb.execute(command)
        ddb.close()
        again = DurableDatabase(store, fsync="always")
        assert again.database == oracle[55]
