"""Tests for historical tuples and states (coalescing, timeslices)."""

import pytest
from hypothesis import given, settings

from repro.errors import IntervalError, SchemaError
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple

from tests.conftest import kv_historical_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


class TestHistoricalTuple:
    def test_construction_with_schema(self):
        t = HistoricalTuple([1, 2], PeriodSet([(0, 5)]), schema=KV)
        assert t["k"] == 1
        assert t.valid_time.covers(3)

    def test_raw_values_without_schema_rejected(self):
        with pytest.raises(SchemaError):
            HistoricalTuple([1, 2], PeriodSet([(0, 5)]))

    def test_empty_valid_time_rejected(self):
        with pytest.raises(IntervalError):
            HistoricalTuple([1, 2], PeriodSet.empty(), schema=KV)

    def test_restricted_to(self):
        t = HistoricalTuple([1, 2], PeriodSet([(0, 10)]), schema=KV)
        clipped = t.restricted_to(PeriodSet([(5, 20)]))
        assert clipped is not None
        assert clipped.valid_time == PeriodSet([(5, 10)])

    def test_restricted_to_disjoint_is_none(self):
        t = HistoricalTuple([1, 2], PeriodSet([(0, 5)]), schema=KV)
        assert t.restricted_to(PeriodSet([(7, 9)])) is None

    def test_concat_intersects_valid_times(self):
        a = HistoricalTuple([1], PeriodSet([(0, 10)]), schema=Schema(["x"]))
        b = HistoricalTuple([2], PeriodSet([(5, 20)]), schema=Schema(["y"]))
        joined = a.concat(b)
        assert joined is not None
        assert joined.valid_time == PeriodSet([(5, 10)])
        assert joined.value.values == (1, 2)

    def test_concat_disjoint_is_none(self):
        a = HistoricalTuple([1], PeriodSet([(0, 5)]), schema=Schema(["x"]))
        b = HistoricalTuple([2], PeriodSet([(6, 9)]), schema=Schema(["y"]))
        assert a.concat(b) is None


class TestCoalescing:
    def test_value_equivalent_tuples_merge(self):
        state = HistoricalState.from_rows(
            KV, [([1, 2], [(0, 5)]), ([1, 2], [(5, 9)])]
        )
        assert len(state) == 1
        (t,) = state.tuples
        assert t.valid_time == PeriodSet([(0, 9)])

    def test_distinct_values_stay_apart(self):
        state = HistoricalState.from_rows(
            KV, [([1, 2], [(0, 5)]), ([3, 4], [(0, 5)])]
        )
        assert len(state) == 2

    def test_schema_mismatch_rejected(self):
        t = HistoricalTuple([1], PeriodSet([(0, 5)]), schema=Schema(["x"]))
        with pytest.raises(SchemaError):
            HistoricalState(KV, [t])

    def test_equality_is_canonical(self):
        a = HistoricalState.from_rows(
            KV, [([1, 2], [(0, 3)]), ([1, 2], [(3, 7)])]
        )
        b = HistoricalState.from_rows(KV, [([1, 2], [(0, 7)])])
        assert a == b
        assert hash(a) == hash(b)


class TestTimeslice:
    def test_snapshot_at(self):
        state = HistoricalState.from_rows(
            KV,
            [([1, 1], [(0, 5)]), ([2, 2], [(3, 9)]), ([3, 3], [(7, 9)])],
        )
        snap = state.snapshot_at(4)
        assert snap == SnapshotState(KV, [[1, 1], [2, 2]])

    def test_snapshot_at_gap_is_empty(self):
        state = HistoricalState.from_rows(KV, [([1, 1], [(0, 2), (5, 8)])])
        assert state.snapshot_at(3).is_empty()

    def test_window(self):
        state = HistoricalState.from_rows(
            KV, [([1, 1], [(0, 10)]), ([2, 2], [(20, 30)])]
        )
        windowed = state.window(PeriodSet([(5, 25)]))
        assert windowed == HistoricalState.from_rows(
            KV, [([1, 1], [(5, 10)]), ([2, 2], [(20, 25)])]
        )

    def test_value_parts(self):
        state = HistoricalState.from_rows(
            KV, [([1, 1], [(0, 5)]), ([2, 2], [(9, 12)])]
        )
        assert state.value_parts() == SnapshotState(
            KV, [[1, 1], [2, 2]]
        )

    def test_valid_time_of(self):
        state = HistoricalState.from_rows(KV, [([1, 1], [(0, 5)])])
        present = SnapshotTuple(KV, [1, 1])
        absent = SnapshotTuple(KV, [9, 9])
        assert state.valid_time_of(present) == PeriodSet([(0, 5)])
        assert state.valid_time_of(absent).is_empty()


@settings(max_examples=60)
@given(kv_historical_states())
def test_coalesced_states_have_unique_value_parts(state):
    values = [t.value for t in state.tuples]
    assert len(values) == len(set(values))


@settings(max_examples=60)
@given(kv_historical_states())
def test_every_tuple_has_nonempty_valid_time(state):
    assert all(not t.valid_time.is_empty() for t in state.tuples)
