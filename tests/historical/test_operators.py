"""Tests for the historical operators, including *snapshot reducibility*:
timeslicing commutes with every operator, which is what makes the
historical algebra a faithful generalization of the snapshot algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.historical.operators import (
    historical_derive,
    historical_difference,
    historical_product,
    historical_project,
    historical_rename,
    historical_select,
    historical_union,
)
from repro.historical.periods import PeriodSet
from repro.historical.predicates import Overlaps, ValidAt
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import (
    Intersect,
    TemporalConstant,
    ValidTime,
)
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.operators import (
    difference as snap_difference,
    product as snap_product,
    project as snap_project,
    select as snap_select,
    union as snap_union,
)
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema

from tests.conftest import kv_historical_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def hs(*rows):
    return HistoricalState.from_rows(KV, list(rows))


class TestUnion:
    def test_coalesces_value_equivalent(self):
        left = hs(([1, 1], [(0, 5)]))
        right = hs(([1, 1], [(5, 9)]), ([2, 2], [(0, 3)]))
        result = historical_union(left, right)
        assert result == hs(([1, 1], [(0, 9)]), ([2, 2], [(0, 3)]))


class TestDifference:
    def test_subtracts_valid_time(self):
        left = hs(([1, 1], [(0, 10)]))
        right = hs(([1, 1], [(3, 6)]))
        assert historical_difference(left, right) == hs(
            ([1, 1], [(0, 3), (6, 10)])
        )

    def test_total_removal_drops_tuple(self):
        left = hs(([1, 1], [(3, 6)]))
        right = hs(([1, 1], [(0, 10)]))
        assert historical_difference(left, right).is_empty()

    def test_unrelated_values_untouched(self):
        left = hs(([1, 1], [(0, 5)]))
        right = hs(([2, 2], [(0, 5)]))
        assert historical_difference(left, right) == left


class TestProduct:
    def test_intersects_valid_times(self):
        left = HistoricalState.from_rows(
            Schema(["x"]), [([1], [(0, 10)])]
        )
        right = HistoricalState.from_rows(
            Schema(["y"]), [([2], [(5, 20)])]
        )
        result = historical_product(left, right)
        assert len(result) == 1
        (t,) = result.tuples
        assert t.valid_time == PeriodSet([(5, 10)])

    def test_never_concurrent_pairs_vanish(self):
        left = HistoricalState.from_rows(Schema(["x"]), [([1], [(0, 3)])])
        right = HistoricalState.from_rows(
            Schema(["y"]), [([2], [(5, 9)])]
        )
        assert historical_product(left, right).is_empty()


class TestProjectSelectRename:
    def test_project_coalesces(self):
        state = hs(([1, 1], [(0, 5)]), ([1, 2], [(5, 9)]))
        result = historical_project(state, ["k"])
        assert result == HistoricalState.from_rows(
            Schema([Attribute("k", INTEGER)]), [([1], [(0, 9)])]
        )

    def test_select_on_value_part(self):
        state = hs(([1, 1], [(0, 5)]), ([2, 2], [(0, 5)]))
        result = historical_select(
            state, Comparison(attr("k"), "=", lit(2))
        )
        assert result == hs(([2, 2], [(0, 5)]))

    def test_rename(self):
        state = hs(([1, 1], [(0, 5)]))
        renamed = historical_rename(state, {"k": "key"})
        assert renamed.schema.names == ("key", "v")
        assert len(renamed) == 1


class TestDerive:
    def test_identity_defaults(self):
        state = hs(([1, 1], [(0, 5)]), ([2, 2], [(3, 9)]))
        assert historical_derive(state) == state

    def test_temporal_selection(self):
        state = hs(([1, 1], [(0, 5)]), ([2, 2], [(6, 9)]))
        result = historical_derive(
            state, predicate=ValidAt(ValidTime(), 7)
        )
        assert result == hs(([2, 2], [(6, 9)]))

    def test_valid_time_derivation(self):
        state = hs(([1, 1], [(0, 10)]))
        window = TemporalConstant(PeriodSet([(3, 6)]))
        result = historical_derive(
            state, expression=Intersect(ValidTime(), window)
        )
        assert result == hs(([1, 1], [(3, 6)]))

    def test_empty_derived_time_drops_tuple(self):
        state = hs(([1, 1], [(0, 3)]))
        window = TemporalConstant(PeriodSet([(7, 9)]))
        result = historical_derive(
            state, expression=Intersect(ValidTime(), window)
        )
        assert result.is_empty()

    def test_overlaps_predicate(self):
        state = hs(([1, 1], [(0, 3)]), ([2, 2], [(5, 9)]))
        window = TemporalConstant(PeriodSet([(4, 6)]))
        result = historical_derive(
            state, predicate=Overlaps(ValidTime(), window)
        )
        assert result == hs(([2, 2], [(5, 9)]))


# ---------------------------------------------------------------------------
# Snapshot reducibility: timeslice(op̂(states)) == op(timeslice(states)).
# ---------------------------------------------------------------------------

P = Comparison(attr("k"), ">", lit(4))
probe_chronons = st.integers(min_value=0, max_value=60)


@settings(max_examples=60)
@given(kv_historical_states(), kv_historical_states(), probe_chronons)
def test_union_snapshot_reducible(left, right, chronon):
    sliced = historical_union(left, right).snapshot_at(chronon)
    assert sliced == snap_union(
        left.snapshot_at(chronon), right.snapshot_at(chronon)
    )


@settings(max_examples=60)
@given(kv_historical_states(), kv_historical_states(), probe_chronons)
def test_difference_snapshot_reducible(left, right, chronon):
    sliced = historical_difference(left, right).snapshot_at(chronon)
    assert sliced == snap_difference(
        left.snapshot_at(chronon), right.snapshot_at(chronon)
    )


@settings(max_examples=60)
@given(kv_historical_states(), probe_chronons)
def test_select_snapshot_reducible(state, chronon):
    sliced = historical_select(state, P).snapshot_at(chronon)
    assert sliced == snap_select(state.snapshot_at(chronon), P)


@settings(max_examples=60)
@given(kv_historical_states(), probe_chronons)
def test_project_snapshot_reducible(state, chronon):
    sliced = historical_project(state, ["k"]).snapshot_at(chronon)
    assert sliced == snap_project(state.snapshot_at(chronon), ["k"])


@settings(max_examples=40)
@given(kv_historical_states(), kv_historical_states(), probe_chronons)
def test_product_snapshot_reducible(left, right, chronon):
    renamed = historical_rename(right, {"k": "k2", "v": "v2"})
    sliced = historical_product(left, renamed).snapshot_at(chronon)
    from repro.snapshot.derived import rename as snap_rename

    assert sliced == snap_product(
        left.snapshot_at(chronon),
        snap_rename(right.snapshot_at(chronon), {"k": "k2", "v": "v2"}),
    )


@settings(max_examples=60)
@given(kv_historical_states(), kv_historical_states())
def test_historical_union_commutative(left, right):
    assert historical_union(left, right) == historical_union(right, left)


@settings(max_examples=60)
@given(kv_historical_states())
def test_historical_union_idempotent(state):
    assert historical_union(state, state) == state


@settings(max_examples=60)
@given(kv_historical_states(), kv_historical_states())
def test_difference_then_union_restores_subset(left, right):
    # (L − R) ∪ (L ∩-time R) == L, phrased via difference only:
    removed = historical_difference(left, right)
    kept = historical_difference(left, removed)
    assert historical_union(removed, kept) == left
