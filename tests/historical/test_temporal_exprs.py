"""Tests for the V (temporal expression) and G (temporal predicate)
domains."""

import pytest

from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.historical.predicates import (
    Contains,
    Equals,
    Meets,
    NonEmpty,
    Overlaps,
    Precedes,
    TemporalAnd,
    TemporalNot,
    TemporalOr,
    ValidAt,
)
from repro.historical.temporal_exprs import (
    Extend,
    First,
    Intersect,
    Last,
    Shift,
    TemporalConstant,
    Union,
    ValidTime,
)
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.schema import Schema

SCHEMA = Schema(["x"])


def row(periods) -> HistoricalTuple:
    return HistoricalTuple([1], PeriodSet(periods), schema=SCHEMA)


class TestExpressions:
    def test_valid_time(self):
        t = row([(3, 7)])
        assert ValidTime().evaluate(t) == PeriodSet([(3, 7)])

    def test_constant(self):
        t = row([(3, 7)])
        c = TemporalConstant(PeriodSet([(0, 2)]))
        assert c.evaluate(t) == PeriodSet([(0, 2)])

    def test_constant_coerces_raw_intervals(self):
        c = TemporalConstant([(0, 2)])  # type: ignore[arg-type]
        assert c.periods == PeriodSet([(0, 2)])

    def test_first(self):
        t = row([(3, 7), (10, 12)])
        assert First(ValidTime()).evaluate(t) == PeriodSet.from_chronon(3)

    def test_last(self):
        t = row([(3, 7), (10, 12)])
        assert Last(ValidTime()).evaluate(t) == PeriodSet.from_chronon(11)

    def test_last_of_unbounded_is_empty(self):
        t = row([(3, FOREVER)])
        assert Last(ValidTime()).evaluate(t).is_empty()

    def test_intersect_and_union(self):
        t = row([(0, 10)])
        window = TemporalConstant(PeriodSet([(5, 15)]))
        assert Intersect(ValidTime(), window).evaluate(t) == PeriodSet(
            [(5, 10)]
        )
        assert Union(ValidTime(), window).evaluate(t) == PeriodSet(
            [(0, 15)]
        )

    def test_extend(self):
        t = row([(0, 3)])
        target = TemporalConstant(PeriodSet([(8, 10)]))
        assert Extend(ValidTime(), target).evaluate(t) == PeriodSet(
            [(0, 10)]
        )

    def test_extend_to_unbounded_target(self):
        t = row([(0, 3)])
        target = TemporalConstant(PeriodSet([(8, FOREVER)]))
        assert Extend(ValidTime(), target).evaluate(t) == PeriodSet(
            [(0, FOREVER)]
        )

    def test_extend_backwards_is_noop(self):
        t = row([(5, 9)])
        target = TemporalConstant(PeriodSet([(0, 2)]))
        assert Extend(ValidTime(), target).evaluate(t) == PeriodSet(
            [(5, 9)]
        )

    def test_shift(self):
        t = row([(3, 7)])
        assert Shift(ValidTime(), 2).evaluate(t) == PeriodSet([(5, 9)])

    def test_nesting(self):
        t = row([(3, 7), (10, 12)])
        expr = Shift(First(ValidTime()), 1)
        assert expr.evaluate(t) == PeriodSet.from_chronon(4)


class TestPredicates:
    def test_precedes(self):
        t = row([(0, 3)])
        later = TemporalConstant(PeriodSet([(5, 8)]))
        assert Precedes(ValidTime(), later).evaluate(t)
        assert not Precedes(later, ValidTime()).evaluate(t)

    def test_overlaps(self):
        t = row([(0, 5)])
        window = TemporalConstant(PeriodSet([(4, 8)]))
        assert Overlaps(ValidTime(), window).evaluate(t)

    def test_contains(self):
        t = row([(0, 10)])
        inner = TemporalConstant(PeriodSet([(2, 4)]))
        assert Contains(ValidTime(), inner).evaluate(t)
        assert not Contains(inner, ValidTime()).evaluate(t)

    def test_meets(self):
        t = row([(0, 5)])
        follows = TemporalConstant(PeriodSet([(5, 8)]))
        assert Meets(ValidTime(), follows).evaluate(t)
        assert not Meets(follows, ValidTime()).evaluate(t)

    def test_equals(self):
        t = row([(0, 5)])
        same = TemporalConstant(PeriodSet([(0, 5)]))
        assert Equals(ValidTime(), same).evaluate(t)

    def test_nonempty(self):
        t = row([(0, 5)])
        gap = TemporalConstant(PeriodSet([(7, 9)]))
        assert NonEmpty(ValidTime()).evaluate(t)
        assert not NonEmpty(Intersect(ValidTime(), gap)).evaluate(t)

    def test_valid_at(self):
        t = row([(0, 5)])
        assert ValidAt(ValidTime(), 3).evaluate(t)
        assert not ValidAt(ValidTime(), 5).evaluate(t)

    def test_connectives(self):
        t = row([(0, 5)])
        p = TemporalAnd(
            ValidAt(ValidTime(), 3),
            TemporalNot(ValidAt(ValidTime(), 9)),
        )
        assert p.evaluate(t)
        q = TemporalOr(
            ValidAt(ValidTime(), 9), ValidAt(ValidTime(), 3)
        )
        assert q.evaluate(t)

    def test_sugar_operators(self):
        t = row([(0, 5)])
        p = ValidAt(ValidTime(), 3) & ~ValidAt(ValidTime(), 9)
        assert p.evaluate(t)

    def test_structural_equality(self):
        a = Precedes(ValidTime(), First(ValidTime()))
        b = Precedes(ValidTime(), First(ValidTime()))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Overlaps(ValidTime(), First(ValidTime()))
