"""Tests for canonical period sets, with set-semantics properties."""

import pytest
from hypothesis import given, settings

from repro.errors import IntervalError
from repro.historical.chronons import FOREVER
from repro.historical.intervals import Interval
from repro.historical.periods import PeriodSet

from tests.conftest import period_sets


def covered(ps: PeriodSet, upto: int = 70) -> set[int]:
    """The chronons < upto covered by a period set (reference model)."""
    return {c for c in range(upto) if ps.covers(c)}


class TestCanonicalization:
    def test_adjacent_merge(self):
        assert PeriodSet([(1, 3), (3, 5)]) == PeriodSet([(1, 5)])

    def test_overlapping_merge(self):
        assert PeriodSet([(1, 4), (2, 6)]) == PeriodSet([(1, 6)])

    def test_disjoint_stay_separate(self):
        ps = PeriodSet([(1, 3), (5, 7)])
        assert len(ps.intervals) == 2

    def test_order_independent(self):
        assert PeriodSet([(5, 7), (1, 3)]) == PeriodSet([(1, 3), (5, 7)])

    def test_unbounded_absorbs(self):
        ps = PeriodSet([(1, 3), (2, FOREVER)])
        assert ps == PeriodSet([(1, FOREVER)])

    def test_interval_objects_accepted(self):
        assert PeriodSet([Interval(1, 3)]) == PeriodSet([(1, 3)])

    def test_garbage_rejected(self):
        with pytest.raises(IntervalError):
            PeriodSet([42])  # type: ignore[list-item]


class TestConstructorsAndAccess:
    def test_empty(self):
        ps = PeriodSet.empty()
        assert ps.is_empty()
        assert not ps

    def test_from_chronon(self):
        ps = PeriodSet.from_chronon(5)
        assert ps.covers(5)
        assert not ps.covers(4)
        assert not ps.covers(6)

    def test_always(self):
        ps = PeriodSet.always()
        assert ps.covers(0)
        assert ps.covers(10**9)
        assert ps.is_unbounded()

    def test_first_last(self):
        ps = PeriodSet([(3, 5), (8, 12)])
        assert ps.first() == 3
        assert ps.last() == 11

    def test_first_of_empty_raises(self):
        with pytest.raises(IntervalError):
            PeriodSet.empty().first()

    def test_last_of_unbounded_raises(self):
        with pytest.raises(IntervalError):
            PeriodSet([(3, FOREVER)]).last()

    def test_duration(self):
        assert PeriodSet([(3, 5), (8, 12)]).duration() == 6
        assert PeriodSet([(3, FOREVER)]).duration() is None

    def test_chronons(self):
        assert PeriodSet([(1, 3), (5, 6)]).chronons() == [1, 2, 5]


class TestAlgebra:
    def test_union(self):
        assert PeriodSet([(1, 3)]).union(PeriodSet([(2, 5)])) == PeriodSet(
            [(1, 5)]
        )

    def test_intersect(self):
        assert PeriodSet([(1, 5), (8, 12)]).intersect(
            PeriodSet([(3, 10)])
        ) == PeriodSet([(3, 5), (8, 10)])

    def test_difference(self):
        assert PeriodSet([(1, 10)]).difference(
            PeriodSet([(3, 5)])
        ) == PeriodSet([(1, 3), (5, 10)])

    def test_extend_to(self):
        assert PeriodSet([(1, 3)]).extend_to(6) == PeriodSet([(1, 7)])

    def test_extend_noop_when_covered(self):
        ps = PeriodSet([(1, 5)])
        assert ps.extend_to(2) == ps

    def test_shift(self):
        assert PeriodSet([(1, 3), (5, 7)]).shift(2) == PeriodSet(
            [(3, 5), (7, 9)]
        )

    def test_overlaps(self):
        assert PeriodSet([(1, 3)]).overlaps(PeriodSet([(2, 5)]))
        assert not PeriodSet([(1, 3)]).overlaps(PeriodSet([(3, 5)]))

    def test_contains_set(self):
        big = PeriodSet([(0, 10)])
        assert big.contains_set(PeriodSet([(2, 4), (6, 8)]))
        assert not PeriodSet([(2, 4)]).contains_set(big)
        assert big.contains_set(PeriodSet.empty())

    def test_precedes(self):
        assert PeriodSet([(1, 3)]).precedes(PeriodSet([(5, 7)]))
        assert not PeriodSet([(1, 6)]).precedes(PeriodSet([(5, 7)]))
        assert not PeriodSet.empty().precedes(PeriodSet([(5, 7)]))


# ---------------------------------------------------------------------------
# Set-semantics properties: PeriodSet operations must agree with plain
# chronon-set operations (the reference model).
# ---------------------------------------------------------------------------


@settings(max_examples=80)
@given(period_sets(), period_sets())
def test_union_matches_set_model(a, b):
    assert covered(a.union(b)) == covered(a) | covered(b)


@settings(max_examples=80)
@given(period_sets(), period_sets())
def test_intersect_matches_set_model(a, b):
    assert covered(a.intersect(b)) == covered(a) & covered(b)


@settings(max_examples=80)
@given(period_sets(), period_sets())
def test_difference_matches_set_model(a, b):
    assert covered(a.difference(b)) == covered(a) - covered(b)


@settings(max_examples=80)
@given(period_sets())
def test_canonical_form_is_disjoint_sorted_nonadjacent(ps):
    runs = ps.intervals
    for i in range(len(runs) - 1):
        assert not runs[i].is_unbounded
        assert runs[i].end < runs[i + 1].start  # gap, not just disjoint


@settings(max_examples=80)
@given(period_sets(), period_sets())
def test_demorgan_style_identity(a, b):
    # a − b == a − (a ∩ b)
    assert a.difference(b) == a.difference(a.intersect(b))


@settings(max_examples=80)
@given(period_sets())
def test_roundtrip_through_interval_list(ps):
    assert PeriodSet(ps.intervals) == ps
