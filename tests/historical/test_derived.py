"""Tests for derived historical operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.historical.derived import (
    historical_intersection,
    historical_natural_join,
    historical_theta_join,
)
from repro.historical.operators import (
    historical_difference,
    historical_product,
    historical_rename,
    historical_select,
)
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.derived import natural_join as snap_natural_join
from repro.snapshot.predicates import Comparison, attr
from repro.snapshot.schema import Schema

from tests.conftest import kv_historical_states

EMP = Schema([Attribute("name", STRING), Attribute("dept", STRING)])
DEPT = Schema([Attribute("dept", STRING), Attribute("floor", INTEGER)])


def emp_state():
    return HistoricalState.from_rows(
        EMP,
        [
            (["ann", "cs"], [(0, 10)]),
            (["bob", "ee"], [(5, 15)]),
        ],
    )


def dept_state():
    return HistoricalState.from_rows(
        DEPT,
        [
            (["cs", 3], [(2, 20)]),
            (["ee", 1], [(0, 6)]),
        ],
    )


class TestIntersection:
    def test_basic(self):
        a = HistoricalState.from_rows(EMP, [(["ann", "cs"], [(0, 10)])])
        b = HistoricalState.from_rows(EMP, [(["ann", "cs"], [(5, 20)])])
        out = historical_intersection(a, b)
        assert out == HistoricalState.from_rows(
            EMP, [(["ann", "cs"], [(5, 10)])]
        )

    def test_disjoint_values_vanish(self):
        a = HistoricalState.from_rows(EMP, [(["ann", "cs"], [(0, 10)])])
        b = HistoricalState.from_rows(EMP, [(["bob", "ee"], [(0, 10)])])
        assert historical_intersection(a, b).is_empty()

    @settings(max_examples=40)
    @given(kv_historical_states(), kv_historical_states())
    def test_matches_double_difference(self, left, right):
        # L ∩ R == L −̂ (L −̂ R)
        assert historical_intersection(
            left, right
        ) == historical_difference(
            left, historical_difference(left, right)
        )


class TestNaturalJoin:
    def test_join_intersects_valid_times(self):
        out = historical_natural_join(emp_state(), dept_state())
        assert out.schema.names == ("name", "dept", "floor")
        rows = {
            t.value.values: t.valid_time for t in out.tuples
        }
        # ann@cs: [0,10) ∩ [2,20) = [2,10)
        assert rows[("ann", "cs", 3)] == PeriodSet([(2, 10)])
        # bob@ee: [5,15) ∩ [0,6) = [5,6)
        assert rows[("bob", "ee", 1)] == PeriodSet([(5, 6)])

    def test_never_concurrent_pairs_drop(self):
        late_dept = HistoricalState.from_rows(
            DEPT, [(["cs", 3], [(50, 60)])]
        )
        assert historical_natural_join(
            emp_state(), late_dept
        ).is_empty()

    def test_no_common_attributes_is_product(self):
        other = HistoricalState.from_rows(
            Schema(["x"]), [(["q"], [(0, 100)])]
        )
        assert historical_natural_join(
            emp_state(), other
        ) == historical_product(emp_state(), other)

    def test_identical_schema_is_intersection(self):
        assert historical_natural_join(
            emp_state(), emp_state()
        ) == historical_intersection(emp_state(), emp_state())

    @settings(max_examples=40)
    @given(
        kv_historical_states(),
        kv_historical_states(),
        st.integers(min_value=0, max_value=60),
    )
    def test_snapshot_reducible(self, left, right, chronon):
        renamed = historical_rename(right, {"v": "w"})
        sliced = historical_natural_join(left, renamed).snapshot_at(
            chronon
        )
        from repro.snapshot.derived import rename as snap_rename

        expected = snap_natural_join(
            left.snapshot_at(chronon),
            snap_rename(right.snapshot_at(chronon), {"v": "w"}),
        )
        assert sliced == expected


class TestThetaJoin:
    def test_matches_definition(self):
        renamed = historical_rename(dept_state(), {"dept": "dname"})
        predicate = Comparison(attr("dept"), "=", attr("dname"))
        assert historical_theta_join(
            emp_state(), renamed, predicate
        ) == historical_select(
            historical_product(emp_state(), renamed), predicate
        )
