"""Tests for chronons and half-open intervals."""

import pytest
from hypothesis import given, settings

from repro.errors import IntervalError
from repro.historical.chronons import BEGINNING, FOREVER, as_chronon
from repro.historical.intervals import Interval

from tests.conftest import intervals


class TestChronons:
    def test_as_chronon_accepts_nonnegative(self):
        assert as_chronon(0) == 0
        assert as_chronon(17) == 17

    def test_negative_rejected(self):
        with pytest.raises(IntervalError):
            as_chronon(-1)

    def test_bool_rejected(self):
        with pytest.raises(IntervalError):
            as_chronon(True)

    def test_forever_is_greatest(self):
        assert FOREVER > 10**12
        assert not (FOREVER < 5)
        assert FOREVER >= FOREVER
        assert FOREVER == FOREVER

    def test_forever_singleton(self):
        from repro.historical.chronons import _Forever

        assert _Forever() is FOREVER

    def test_beginning(self):
        assert BEGINNING == 0


class TestConstruction:
    def test_bounded(self):
        i = Interval(3, 7)
        assert i.start == 3
        assert i.end == 7
        assert i.duration() == 4

    def test_unbounded(self):
        i = Interval(3, FOREVER)
        assert i.is_unbounded
        assert i.duration() is None

    def test_empty_rejected(self):
        with pytest.raises(IntervalError):
            Interval(3, 3)

    def test_inverted_rejected(self):
        with pytest.raises(IntervalError):
            Interval(7, 3)


class TestRelationships:
    def test_covers_half_open(self):
        i = Interval(3, 7)
        assert not i.covers(2)
        assert i.covers(3)
        assert i.covers(6)
        assert not i.covers(7)

    def test_unbounded_covers(self):
        assert Interval(3, FOREVER).covers(10**9)

    def test_overlaps(self):
        assert Interval(3, 7).overlaps(Interval(6, 10))
        assert not Interval(3, 7).overlaps(Interval(7, 10))

    def test_meets(self):
        assert Interval(3, 7).meets(Interval(7, 10))
        assert not Interval(3, 7).meets(Interval(8, 10))

    def test_contains(self):
        assert Interval(3, 10).contains(Interval(4, 9))
        assert not Interval(3, 10).contains(Interval(4, 11))
        assert Interval(3, FOREVER).contains(Interval(4, FOREVER))
        assert not Interval(3, 10).contains(Interval(4, FOREVER))

    def test_precedes(self):
        assert Interval(1, 3).precedes(Interval(3, 5))
        assert not Interval(1, 4).precedes(Interval(3, 5))
        assert not Interval(1, FOREVER).precedes(Interval(3, 5))


class TestCombination:
    def test_intersect(self):
        assert Interval(3, 7).intersect(Interval(5, 10)) == Interval(5, 7)

    def test_intersect_disjoint_is_none(self):
        assert Interval(3, 5).intersect(Interval(5, 7)) is None

    def test_intersect_with_unbounded(self):
        assert Interval(3, FOREVER).intersect(
            Interval(5, 10)
        ) == Interval(5, 10)

    def test_merge(self):
        assert Interval(3, 7).merge(Interval(7, 10)) == Interval(3, 10)

    def test_merge_disjoint_raises(self):
        with pytest.raises(IntervalError):
            Interval(3, 5).merge(Interval(6, 8))

    def test_subtract_middle_splits(self):
        assert Interval(0, 10).subtract(Interval(3, 6)) == [
            Interval(0, 3),
            Interval(6, 10),
        ]

    def test_subtract_prefix(self):
        assert Interval(0, 10).subtract(Interval(0, 4)) == [
            Interval(4, 10)
        ]

    def test_subtract_everything(self):
        assert Interval(3, 6).subtract(Interval(0, 10)) == []

    def test_subtract_disjoint(self):
        assert Interval(0, 3).subtract(Interval(5, 8)) == [Interval(0, 3)]

    def test_subtract_bounded_from_unbounded(self):
        assert Interval(0, FOREVER).subtract(Interval(3, 6)) == [
            Interval(0, 3),
            Interval(6, FOREVER),
        ]

    def test_shift(self):
        assert Interval(3, 7).shift(2) == Interval(5, 9)
        assert Interval(3, FOREVER).shift(-3) == Interval(0, FOREVER)

    def test_shift_below_zero_raises(self):
        with pytest.raises(IntervalError):
            Interval(3, 7).shift(-4)

    def test_chronons(self):
        assert Interval(3, 6).chronons() == [3, 4, 5]

    def test_chronons_unbounded_raises(self):
        with pytest.raises(IntervalError):
            Interval(3, FOREVER).chronons()


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=80)
@given(intervals(), intervals())
def test_overlap_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@settings(max_examples=80)
@given(intervals(), intervals())
def test_intersect_agrees_with_cover(a, b):
    shared = a.intersect(b)
    probe_points = {a.start, b.start, a.start + 1, b.start + 1}
    for p in probe_points:
        both = a.covers(p) and b.covers(p)
        assert both == (shared is not None and shared.covers(p))


@settings(max_examples=80)
@given(intervals(), intervals())
def test_subtract_agrees_with_cover(a, b):
    pieces = a.subtract(b)
    probes = {a.start, a.start + 5, b.start, b.start + 5, 0, 55}
    for p in probes:
        expected = a.covers(p) and not b.covers(p)
        assert expected == any(piece.covers(p) for piece in pieces)
