"""Tests for temporal aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IntervalError, SchemaError
from repro.historical.aggregates import (
    aggregate_at,
    aggregate_series,
    duration_aggregate,
)
from repro.historical.chronons import FOREVER
from repro.historical.state import HistoricalState
from repro.snapshot.aggregates import aggregate as snapshot_aggregate
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema

from tests.conftest import kv_historical_states

PAY = Schema([Attribute("who", STRING), Attribute("salary", INTEGER)])


@pytest.fixture
def payroll():
    return HistoricalState.from_rows(
        PAY,
        [
            (["ann", 100], [(0, 10)]),
            (["ann", 150], [(10, 15)]),
            (["bob", 80], [(5, 15)]),
        ],
    )


class TestInstantaneous:
    def test_aggregate_at(self, payroll):
        out = aggregate_at(
            payroll, 7, [], {"n": ("count", None),
                             "total": ("sum", "salary")}
        )
        # at chronon 7: ann@100 and bob@80
        assert out.sorted_rows() == [(2, 180)]

    def test_aggregate_at_gap(self, payroll):
        out = aggregate_at(payroll, 20, [], {"n": ("count", None)})
        assert out.is_empty()

    def test_series(self, payroll):
        series = aggregate_series(
            payroll, [0, 7, 12], [], {"total": ("sum", "salary")}
        )
        totals = {
            chronon: (state.sorted_rows()[0][0] if len(state) else 0)
            for chronon, state in series
        }
        assert totals == {0: 100, 7: 180, 12: 230}


class TestDurationWeighted:
    def test_count_and_total_duration(self, payroll):
        out = duration_aggregate(
            payroll,
            ["who"],
            {"facts": ("count", None), "d": ("total_duration", None)},
        )
        rows = {row[0]: row[1:] for row in out.sorted_rows()}
        assert rows["ann"] == (2, 15)  # 10 + 5 chronons
        assert rows["bob"] == (1, 10)

    def test_weighted_sum_and_avg(self, payroll):
        out = duration_aggregate(
            payroll,
            ["who"],
            {
                "paid": ("weighted_sum", "salary"),
                "rate": ("weighted_avg", "salary"),
            },
        )
        rows = {row[0]: row[1:] for row in out.sorted_rows()}
        # ann: 100×10 + 150×5 = 1750 over 15 chronons
        assert rows["ann"] == (1750, 1750 / 15)
        assert rows["bob"] == (800, 80.0)

    def test_global_group(self, payroll):
        out = duration_aggregate(
            payroll, [], {"d": ("total_duration", None)}
        )
        assert out.sorted_rows() == [(25,)]

    def test_unbounded_rejected(self):
        forever = HistoricalState.from_rows(
            PAY, [(["ann", 100], [(0, FOREVER)])]
        )
        with pytest.raises(IntervalError, match="FOREVER"):
            duration_aggregate(
                forever, [], {"d": ("total_duration", None)}
            )

    def test_validation(self, payroll):
        with pytest.raises(SchemaError):
            duration_aggregate(payroll, [], {})
        with pytest.raises(SchemaError, match="unknown duration"):
            duration_aggregate(payroll, [], {"m": ("median", "salary")})
        with pytest.raises(SchemaError, match="requires an input"):
            duration_aggregate(payroll, [], {"s": ("weighted_sum", None)})
        with pytest.raises(SchemaError, match="no input"):
            duration_aggregate(payroll, [], {"n": ("count", "salary")})
        with pytest.raises(SchemaError, match="collide"):
            duration_aggregate(
                payroll, ["who"], {"who": ("count", None)}
            )


@settings(max_examples=40)
@given(
    kv_historical_states(),
    st.integers(min_value=0, max_value=60),
)
def test_aggregate_at_equals_snapshot_aggregate_of_timeslice(
    state, chronon
):
    sliced = state.snapshot_at(chronon)
    if sliced.is_empty():
        return
    direct = aggregate_at(
        state, chronon, ["k"], {"n": ("count", None)}
    )
    via_snapshot = snapshot_aggregate(
        sliced, ["k"], {"n": ("count", None)}
    )
    assert direct == via_snapshot


@settings(max_examples=40)
@given(kv_historical_states())
def test_total_duration_is_sum_of_tuple_durations(state):
    bounded = HistoricalState(
        state.schema,
        [t for t in state.tuples if not t.valid_time.is_unbounded()],
    )
    if bounded.is_empty():
        return
    out = duration_aggregate(
        bounded, [], {"d": ("total_duration", None)}
    )
    expected = sum(
        t.valid_time.duration() for t in bounded.tuples
    )
    assert out.sorted_rows() == [(expected,)]
