"""Tests for domains and attributes."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.snapshot.attributes import (
    ANY,
    BOOLEAN,
    INTEGER,
    NUMBER,
    STRING,
    USER_DEFINED_TIME,
    Attribute,
    Domain,
    enumerated_domain,
)


class TestBuiltinDomains:
    def test_integer_accepts_ints(self):
        assert 5 in INTEGER
        assert -3 in INTEGER

    def test_integer_rejects_bool(self):
        # bool is a subclass of int in Python; the domain must not leak it.
        assert True not in INTEGER

    def test_integer_rejects_float(self):
        assert 5.0 not in INTEGER

    def test_number_accepts_int_and_float(self):
        assert 5 in NUMBER
        assert 5.5 in NUMBER

    def test_number_rejects_bool(self):
        assert False not in NUMBER

    def test_string_accepts_str(self):
        assert "hello" in STRING

    def test_string_rejects_int(self):
        assert 5 not in STRING

    def test_boolean_accepts_only_bool(self):
        assert True in BOOLEAN
        assert 1 not in BOOLEAN

    def test_user_defined_time_is_nonnegative_ints(self):
        assert 0 in USER_DEFINED_TIME
        assert 17 in USER_DEFINED_TIME
        assert -1 not in USER_DEFINED_TIME
        assert "3" not in USER_DEFINED_TIME

    def test_any_accepts_hashables(self):
        assert 5 in ANY
        assert "x" in ANY
        assert (1, 2) in ANY

    def test_any_rejects_unhashables(self):
        assert [1, 2] not in ANY

    def test_validate_returns_value(self):
        assert INTEGER.validate(7) == 7

    def test_validate_raises_domain_error(self):
        with pytest.raises(DomainError):
            INTEGER.validate("seven")


class TestDomainEquality:
    def test_domains_equal_by_name(self):
        assert Domain("d", lambda v: True) == Domain("d", lambda v: False)

    def test_different_names_unequal(self):
        assert INTEGER != STRING

    def test_hashable(self):
        assert len({INTEGER, STRING, INTEGER}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Domain("", lambda v: True)


class TestEnumeratedDomain:
    def test_membership(self):
        color = enumerated_domain("color", ["red", "green"])
        assert "red" in color
        assert "blue" not in color

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            enumerated_domain("void", [])


class TestAttribute:
    def test_construction(self):
        a = Attribute("name", STRING)
        assert a.name == "name"
        assert a.domain is STRING

    def test_default_domain_is_any(self):
        assert Attribute("x").domain == ANY

    def test_equality_includes_domain(self):
        assert Attribute("x", INTEGER) != Attribute("x", STRING)
        assert Attribute("x", INTEGER) == Attribute("x", INTEGER)

    def test_renamed_keeps_domain(self):
        renamed = Attribute("x", INTEGER).renamed("y")
        assert renamed.name == "y"
        assert renamed.domain is INTEGER

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_non_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", "integer")  # type: ignore[arg-type]
