"""Tests for the predicate domain F."""

import pytest

from repro.errors import PredicateError
from repro.snapshot.predicates import (
    And,
    AttributeRef,
    Comparison,
    FalsePredicate,
    Literal,
    Not,
    Or,
    TruePredicate,
    attr,
    lit,
)

ROW = {"name": "ann", "salary": 90, "dept": "physics"}


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("=", False),
            ("!=", True),
            ("<", True),
            ("<=", True),
            (">", False),
            (">=", False),
        ],
    )
    def test_all_operators(self, op, expected):
        predicate = Comparison(attr("salary"), op, lit(100))
        assert predicate.evaluate(ROW) is expected

    def test_attr_to_attr(self):
        predicate = Comparison(attr("name"), "!=", attr("dept"))
        assert predicate.evaluate(ROW)

    def test_bare_values_become_literals(self):
        predicate = Comparison(attr("salary"), "=", 90)
        assert predicate.evaluate(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison(attr("a"), "~", lit(1))

    def test_unknown_attribute_raises(self):
        predicate = Comparison(attr("ghost"), "=", lit(1))
        with pytest.raises(PredicateError, match="ghost"):
            predicate.evaluate(ROW)

    def test_incomparable_values_raise(self):
        predicate = Comparison(attr("salary"), "<", lit("high"))
        with pytest.raises(PredicateError):
            predicate.evaluate(ROW)

    def test_referenced_attributes(self):
        predicate = Comparison(attr("a"), "=", attr("b"))
        assert predicate.referenced_attributes() == {"a", "b"}

    def test_renamed(self):
        predicate = Comparison(attr("a"), "=", lit(1)).renamed({"a": "x"})
        assert predicate.referenced_attributes() == {"x"}


class TestConnectives:
    def test_and(self):
        p = And(
            Comparison(attr("salary"), ">", lit(50)),
            Comparison(attr("dept"), "=", lit("physics")),
        )
        assert p.evaluate(ROW)

    def test_or_short_circuit_semantics(self):
        p = Or(
            Comparison(attr("salary"), ">", lit(50)),
            Comparison(attr("ghost"), "=", lit(1)),
        )
        # left is true; the erroneous right side is never evaluated
        assert p.evaluate(ROW)

    def test_not(self):
        p = Not(Comparison(attr("salary"), ">", lit(50)))
        assert not p.evaluate(ROW)

    def test_operator_sugar(self):
        p = (
            Comparison(attr("salary"), ">", lit(50))
            & ~Comparison(attr("dept"), "=", lit("math"))
        ) | FalsePredicate()
        assert p.evaluate(ROW)

    def test_true_false(self):
        assert TruePredicate().evaluate(ROW)
        assert not FalsePredicate().evaluate(ROW)

    def test_referenced_attributes_union(self):
        p = And(
            Comparison(attr("a"), "=", lit(1)),
            Or(
                Comparison(attr("b"), "=", lit(2)),
                Not(Comparison(attr("c"), "=", lit(3))),
            ),
        )
        assert p.referenced_attributes() == {"a", "b", "c"}

    def test_renamed_recurses(self):
        p = And(
            Comparison(attr("a"), "=", lit(1)),
            Not(Comparison(attr("a"), ">", lit(0))),
        ).renamed({"a": "z"})
        assert p.referenced_attributes() == {"z"}


class TestEqualityAndHash:
    def test_structural_equality(self):
        a = Comparison(attr("x"), "=", lit(1))
        b = Comparison(AttributeRef("x"), "=", Literal(1))
        assert a == b
        assert hash(a) == hash(b)

    def test_connective_equality(self):
        a = And(TruePredicate(), FalsePredicate())
        b = And(TruePredicate(), FalsePredicate())
        assert a == b
        assert a != Or(TruePredicate(), FalsePredicate())


class TestCompiledPredicates:
    """compile_predicate must agree with evaluate on every input."""

    def _schema(self):
        from repro.snapshot.schema import Schema

        return Schema(["name", "salary", "dept"])

    def test_agreement_on_row(self):
        from repro.snapshot.predicates import compile_predicate

        schema = self._schema()
        values = ("ann", 90, "physics")
        predicates = [
            Comparison(attr("salary"), ">", lit(50)),
            And(
                Comparison(attr("dept"), "=", lit("physics")),
                Not(Comparison(attr("name"), "=", lit("bob"))),
            ),
            Or(FalsePredicate(), TruePredicate()),
            ~Comparison(attr("salary"), "<=", attr("salary")),
        ]
        for predicate in predicates:
            compiled = compile_predicate(predicate, schema)
            assert compiled(values) == predicate.evaluate(ROW)

    def test_unknown_attribute_fails_at_compile_time(self):
        from repro.snapshot.predicates import compile_predicate

        with pytest.raises(PredicateError, match="ghost"):
            compile_predicate(
                Comparison(attr("ghost"), "=", lit(1)), self._schema()
            )

    def test_incomparable_values_fail_at_run_time(self):
        from repro.snapshot.predicates import compile_predicate

        compiled = compile_predicate(
            Comparison(attr("salary"), "<", lit("high")), self._schema()
        )
        with pytest.raises(PredicateError, match="compare"):
            compiled(("ann", 90, "physics"))


def test_compiled_select_equals_dict_select_property():
    """Property: σ via compiled predicates equals per-tuple dict
    evaluation on random states and predicates."""
    import random

    from repro.snapshot.attributes import INTEGER, Attribute
    from repro.snapshot.predicates import compile_predicate
    from repro.snapshot.schema import Schema
    from repro.snapshot.state import SnapshotState

    rng = random.Random(5)
    schema = Schema(
        [Attribute("k", INTEGER), Attribute("v", INTEGER)]
    )
    for _ in range(50):
        state = SnapshotState(
            schema,
            [
                [rng.randrange(10), rng.randrange(5)]
                for _ in range(rng.randrange(0, 12))
            ],
        )
        predicate = And(
            Comparison(attr("k"), rng.choice([">", "<", "=", "!="]),
                       lit(rng.randrange(10))),
            Or(
                Comparison(attr("v"), ">=", lit(rng.randrange(5))),
                Not(Comparison(attr("k"), "=", attr("v"))),
            ),
        )
        compiled = compile_predicate(predicate, schema)
        for t in state.tuples:
            assert compiled(t.values) == predicate.evaluate(t.as_dict())
