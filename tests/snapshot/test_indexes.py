"""Tests for secondary indexes: result equality with σ, caching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.snapshot.attributes import ANY, INTEGER, Attribute
from repro.snapshot.indexes import (
    HashIndex,
    IndexPool,
    SortedIndex,
    select_eq,
    select_range,
)
from repro.snapshot.operators import select
from repro.snapshot.predicates import And, Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


@pytest.fixture
def state():
    return kv((1, 10), (2, 20), (3, 10), (4, 30), (5, 10))


class TestHashIndex:
    def test_lookup(self, state):
        index = HashIndex(state, "v")
        assert {t["k"] for t in index.lookup(10)} == {1, 3, 5}
        assert index.lookup(99) == frozenset()

    def test_distinct_values(self, state):
        assert HashIndex(state, "v").distinct_values() == 3

    def test_unknown_attribute_rejected(self, state):
        with pytest.raises(SchemaError):
            HashIndex(state, "ghost")


class TestSortedIndex:
    def test_range(self, state):
        index = SortedIndex(state, "k")
        assert {t["k"] for t in index.range(2, 5)} == {2, 3, 4}

    def test_open_bounds(self, state):
        index = SortedIndex(state, "k")
        assert {t["k"] for t in index.range(None, 3)} == {1, 2}
        assert {t["k"] for t in index.range(4, None)} == {4, 5}
        assert len(index.range()) == 5

    def test_incomparable_values_rejected(self):
        schema = Schema([Attribute("x", ANY)])
        mixed = SnapshotState(schema, [[1], ["a"]])
        with pytest.raises(SchemaError, match="incomparable"):
            SortedIndex(mixed, "x")


class TestIndexAwareSelect:
    def test_select_eq_matches_sigma(self, state):
        via_index = select_eq(state, "v", 10)
        via_scan = select(state, Comparison(attr("v"), "=", lit(10)))
        assert via_index == via_scan

    def test_select_range_matches_sigma(self, state):
        via_index = select_range(state, "k", 2, 5)
        via_scan = select(
            state,
            And(
                Comparison(attr("k"), ">=", lit(2)),
                Comparison(attr("k"), "<", lit(5)),
            ),
        )
        assert via_index == via_scan

    @settings(max_examples=60)
    @given(kv_states(), st.integers(min_value=0, max_value=9))
    def test_select_eq_property(self, state, value):
        assert select_eq(state, "k", value) == select(
            state, Comparison(attr("k"), "=", lit(value))
        )

    @settings(max_examples=60)
    @given(
        kv_states(),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    )
    def test_select_range_property(self, state, low, high):
        assert select_range(state, "k", low, high) == select(
            state,
            And(
                Comparison(attr("k"), ">=", lit(low)),
                Comparison(attr("k"), "<", lit(high)),
            ),
        )


class TestIndexPool:
    def test_caches_by_state_and_attribute(self, state):
        pool = IndexPool()
        first = pool.hash_index(state, "v")
        second = pool.hash_index(state, "v")
        assert first is second
        assert pool.cached_indexes() == 1

    def test_distinct_attributes_get_distinct_indexes(self, state):
        pool = IndexPool()
        pool.hash_index(state, "v")
        pool.hash_index(state, "k")
        assert pool.cached_indexes() == 2

    def test_value_equal_state_hits_cache(self, state):
        # a structurally equal state is the same cache key
        twin = kv((1, 10), (2, 20), (3, 10), (4, 30), (5, 10))
        pool = IndexPool()
        first = pool.hash_index(state, "v")
        second = pool.hash_index(twin, "v")
        assert first is second

    def test_eviction_bounds_memory(self, state):
        pool = IndexPool(max_entries=2)
        for value in range(5):
            extra = kv((value, value))
            pool.hash_index(extra, "k")
        assert pool.cached_indexes() <= 2

    def test_select_helpers_accept_pool(self, state):
        pool = IndexPool()
        select_eq(state, "v", 10, pool=pool)
        select_range(state, "k", 1, 3, pool=pool)
        assert pool.cached_indexes() == 2
