"""Tests for relation schemas."""

import pytest

from repro.errors import SchemaError
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema


@pytest.fixture
def schema():
    return Schema(
        [Attribute("name", STRING), Attribute("salary", INTEGER)]
    )


class TestConstruction:
    def test_from_strings(self):
        s = Schema(["a", "b"])
        assert s.names == ("a", "b")

    def test_from_attributes(self, schema):
        assert schema.degree == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_empty_schema_allowed(self):
        assert Schema([]).degree == 0

    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            Schema([42])  # type: ignore[list-item]


class TestAccess:
    def test_getitem_by_name(self, schema):
        assert schema["salary"].domain is INTEGER

    def test_getitem_by_position(self, schema):
        assert schema[0].name == "name"

    def test_unknown_name_raises(self, schema):
        with pytest.raises(SchemaError, match="salaryy"):
            schema["salaryy"]

    def test_position(self, schema):
        assert schema.position("salary") == 1

    def test_contains(self, schema):
        assert "name" in schema
        assert "dept" not in schema

    def test_iteration_in_order(self, schema):
        assert [a.name for a in schema] == ["name", "salary"]

    def test_domain_of(self, schema):
        assert schema.domain_of("name") is STRING


class TestCompatibility:
    def test_same_attributes_compatible(self, schema):
        other = Schema(
            [Attribute("name", STRING), Attribute("salary", INTEGER)]
        )
        assert schema.is_compatible_with(other)

    def test_order_matters(self, schema):
        reordered = Schema(
            [Attribute("salary", INTEGER), Attribute("name", STRING)]
        )
        assert not schema.is_compatible_with(reordered)

    def test_domain_matters(self, schema):
        retyped = Schema(
            [Attribute("name", STRING), Attribute("salary", STRING)]
        )
        assert not schema.is_compatible_with(retyped)

    def test_require_compatible_raises(self, schema):
        with pytest.raises(SchemaError, match="union"):
            schema.require_compatible(Schema(["x"]), "union")


class TestDerivation:
    def test_project_preserves_given_order(self, schema):
        assert schema.project(["salary", "name"]).names == (
            "salary",
            "name",
        )

    def test_project_unknown_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.project(["nope"])

    def test_concat(self, schema):
        other = Schema(["dept"])
        assert schema.concat(other).names == ("name", "salary", "dept")

    def test_concat_collision_raises(self, schema):
        with pytest.raises(SchemaError, match="name"):
            schema.concat(Schema(["name"]))

    def test_rename(self, schema):
        renamed = schema.rename({"name": "employee"})
        assert renamed.names == ("employee", "salary")
        assert renamed["employee"].domain is STRING

    def test_rename_unknown_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.rename({"ghost": "spirit"})

    def test_common_names(self, schema):
        other = Schema(
            [Attribute("salary", INTEGER), Attribute("dept", STRING)]
        )
        assert schema.common_names(other) == ("salary",)

    def test_hash_and_equality(self, schema):
        twin = Schema(
            [Attribute("name", STRING), Attribute("salary", INTEGER)]
        )
        assert schema == twin
        assert hash(schema) == hash(twin)
