"""Tests for the five primitive snapshot operators, including the
algebraic laws (hypothesis) whose preservation the paper claims."""

import pytest
from hypothesis import given, settings

from repro.errors import SchemaError
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.operators import (
    difference,
    product,
    project,
    select,
    union,
)
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


class TestUnion:
    def test_basic(self):
        assert union(kv((1, 1)), kv((2, 2))) == kv((1, 1), (2, 2))

    def test_duplicates_collapse(self):
        assert union(kv((1, 1)), kv((1, 1))) == kv((1, 1))

    def test_incompatible_schemas_raise(self):
        other = SnapshotState(Schema(["x"]), [["a"]])
        with pytest.raises(SchemaError):
            union(kv((1, 1)), other)

    def test_with_empty(self):
        assert union(kv((1, 1)), SnapshotState.empty(KV)) == kv((1, 1))


class TestDifference:
    def test_basic(self):
        assert difference(kv((1, 1), (2, 2)), kv((1, 1))) == kv((2, 2))

    def test_disjoint(self):
        assert difference(kv((1, 1)), kv((2, 2))) == kv((1, 1))

    def test_self_difference_is_empty(self):
        state = kv((1, 1), (2, 2))
        assert difference(state, state).is_empty()


class TestProduct:
    def test_cardinality_multiplies(self):
        left = kv((1, 1), (2, 2))
        right = SnapshotState(Schema(["x"]), [["a"], ["b"], ["c"]])
        assert len(product(left, right)) == 6

    def test_schema_concatenates(self):
        right = SnapshotState(Schema(["x"]), [["a"]])
        result = product(kv((1, 1)), right)
        assert result.schema.names == ("k", "v", "x")

    def test_name_collision_raises(self):
        with pytest.raises(SchemaError):
            product(kv((1, 1)), kv((2, 2)))

    def test_empty_annihilates(self):
        right = SnapshotState.empty(Schema(["x"]))
        assert product(kv((1, 1)), right).is_empty()


class TestProject:
    def test_basic(self):
        result = project(kv((1, 10), (2, 10)), ["v"])
        assert result.sorted_rows() == [(10,)]

    def test_reorders(self):
        result = project(kv((1, 10)), ["v", "k"])
        assert result.schema.names == ("v", "k")
        assert result.sorted_rows() == [(10, 1)]

    def test_duplicate_names_raise(self):
        with pytest.raises(SchemaError):
            project(kv((1, 10)), ["k", "k"])

    def test_unknown_name_raises(self):
        with pytest.raises(SchemaError):
            project(kv((1, 10)), ["z"])


class TestSelect:
    def test_basic(self):
        result = select(
            kv((1, 10), (2, 20)), Comparison(attr("v"), ">", lit(15))
        )
        assert result.sorted_rows() == [(2, 20)]

    def test_empty_result_keeps_schema(self):
        result = select(
            kv((1, 10)), Comparison(attr("v"), ">", lit(100))
        )
        assert result.is_empty()
        assert result.schema == KV


# ---------------------------------------------------------------------------
# Algebraic laws (paper claim C2), property-based.
# ---------------------------------------------------------------------------

P1 = Comparison(attr("k"), ">", lit(4))
P2 = Comparison(attr("v"), "<", lit(3))


@settings(max_examples=60)
@given(kv_states())
def test_select_commutes(state):
    assert select(select(state, P1), P2) == select(select(state, P2), P1)


@settings(max_examples=60)
@given(kv_states(), kv_states())
def test_select_distributes_over_union(left, right):
    assert select(union(left, right), P1) == union(
        select(left, P1), select(right, P1)
    )


@settings(max_examples=60)
@given(kv_states(), kv_states())
def test_select_distributes_over_difference(left, right):
    assert select(difference(left, right), P1) == difference(
        select(left, P1), select(right, P1)
    )


@settings(max_examples=60)
@given(kv_states(), kv_states())
def test_union_commutative(left, right):
    assert union(left, right) == union(right, left)


@settings(max_examples=60)
@given(kv_states(), kv_states(), kv_states())
def test_union_associative(a, b, c):
    assert union(union(a, b), c) == union(a, union(b, c))


@settings(max_examples=60)
@given(kv_states())
def test_union_idempotent(state):
    assert union(state, state) == state


@settings(max_examples=60)
@given(kv_states(), kv_states())
def test_project_distributes_over_union(left, right):
    assert project(union(left, right), ["k"]) == union(
        project(left, ["k"]), project(right, ["k"])
    )


@settings(max_examples=60)
@given(kv_states())
def test_project_cascade(state):
    assert project(project(state, ["k", "v"]), ["k"]) == project(
        state, ["k"]
    )


@settings(max_examples=40)
@given(kv_states())
def test_select_pushes_below_product(state):
    other = SnapshotState(Schema(["x"]), [["a"], ["b"]])
    assert select(product(state, other), P1) == product(
        select(state, P1), other
    )
