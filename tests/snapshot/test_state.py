"""Tests for SnapshotState itself (construction, convenience mutators)."""

import pytest

from repro.errors import SchemaError
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


class TestConstruction:
    def test_rows_collapse_to_set(self):
        state = SnapshotState(KV, [[1, 1], [1, 1], [2, 2]])
        assert len(state) == 2
        assert state.cardinality == 2

    def test_accepts_prebuilt_tuples(self):
        t = SnapshotTuple(KV, [1, 1])
        state = SnapshotState(KV, [t])
        assert t in state

    def test_prebuilt_tuple_schema_checked(self):
        t = SnapshotTuple(Schema(["x"]), ["a"])
        with pytest.raises(SchemaError):
            SnapshotState(KV, [t])

    def test_mappings_accepted(self):
        state = SnapshotState(KV, [{"k": 1, "v": 2}])
        assert state.sorted_rows() == [(1, 2)]

    def test_empty(self):
        state = SnapshotState.empty(KV)
        assert state.is_empty()
        assert not state
        assert len(state) == 0


class TestConvenienceMutators:
    def test_with_tuple_returns_new_state(self):
        state = SnapshotState(KV, [[1, 1]])
        bigger = state.with_tuple([2, 2])
        assert len(bigger) == 2
        assert len(state) == 1

    def test_with_tuple_idempotent_on_duplicate(self):
        state = SnapshotState(KV, [[1, 1]])
        assert state.with_tuple([1, 1]) == state

    def test_with_tuple_schema_checked(self):
        state = SnapshotState(KV, [[1, 1]])
        wrong = SnapshotTuple(Schema(["x"]), ["a"])
        with pytest.raises(SchemaError):
            state.with_tuple(wrong)

    def test_without_tuple(self):
        state = SnapshotState(KV, [[1, 1], [2, 2]])
        smaller = state.without_tuple([1, 1])
        assert smaller.sorted_rows() == [(2, 2)]
        # removing an absent tuple is a no-op
        assert smaller.without_tuple([9, 9]) == smaller


class TestViews:
    def test_sorted_rows_deterministic(self):
        a = SnapshotState(KV, [[2, 2], [1, 1]])
        b = SnapshotState(KV, [[1, 1], [2, 2]])
        assert a.sorted_rows() == b.sorted_rows()

    def test_iteration_and_contains(self):
        state = SnapshotState(KV, [[1, 1]])
        (only,) = list(state)
        assert only["k"] == 1
        assert SnapshotTuple(KV, [1, 1]) in state

    def test_repr_truncates(self):
        big = SnapshotState(KV, [[i, i] for i in range(10)])
        assert "..." in repr(big)
