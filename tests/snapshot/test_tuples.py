"""Tests for snapshot tuples."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple


@pytest.fixture
def schema():
    return Schema(
        [Attribute("name", STRING), Attribute("salary", INTEGER)]
    )


class TestConstruction:
    def test_from_sequence(self, schema):
        t = SnapshotTuple(schema, ["ann", 90])
        assert t.values == ("ann", 90)

    def test_from_mapping(self, schema):
        t = SnapshotTuple(schema, {"salary": 90, "name": "ann"})
        assert t.values == ("ann", 90)

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(SchemaError):
            SnapshotTuple(schema, ["ann"])

    def test_mapping_missing_key_rejected(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            SnapshotTuple(schema, {"name": "ann"})

    def test_mapping_extra_key_rejected(self, schema):
        with pytest.raises(SchemaError, match="extra"):
            SnapshotTuple(
                schema, {"name": "ann", "salary": 1, "x": 2}
            )

    def test_domain_violation_rejected(self, schema):
        with pytest.raises(DomainError):
            SnapshotTuple(schema, ["ann", "ninety"])


class TestAccess:
    def test_getitem_by_name(self, schema):
        assert SnapshotTuple(schema, ["ann", 90])["salary"] == 90

    def test_getitem_by_position(self, schema):
        assert SnapshotTuple(schema, ["ann", 90])[0] == "ann"

    def test_as_dict(self, schema):
        t = SnapshotTuple(schema, ["ann", 90])
        assert t.as_dict() == {"name": "ann", "salary": 90}

    def test_len_and_iter(self, schema):
        t = SnapshotTuple(schema, ["ann", 90])
        assert len(t) == 2
        assert list(t) == ["ann", 90]


class TestDerivation:
    def test_project(self, schema):
        t = SnapshotTuple(schema, ["ann", 90]).project(["salary"])
        assert t.values == (90,)
        assert t.schema.names == ("salary",)

    def test_concat(self, schema):
        other = SnapshotTuple(Schema(["dept"]), ["physics"])
        joined = SnapshotTuple(schema, ["ann", 90]).concat(other)
        assert joined.values == ("ann", 90, "physics")

    def test_replace(self, schema):
        t = SnapshotTuple(schema, ["ann", 90]).replace(salary=95)
        assert t["salary"] == 95
        assert t["name"] == "ann"

    def test_replace_unknown_raises(self, schema):
        with pytest.raises(SchemaError):
            SnapshotTuple(schema, ["ann", 90]).replace(dept="x")

    def test_replace_checks_domain(self, schema):
        with pytest.raises(DomainError):
            SnapshotTuple(schema, ["ann", 90]).replace(salary="high")


class TestEquality:
    def test_equal_tuples(self, schema):
        assert SnapshotTuple(schema, ["ann", 90]) == SnapshotTuple(
            schema, ["ann", 90]
        )

    def test_hashable(self, schema):
        a = SnapshotTuple(schema, ["ann", 90])
        b = SnapshotTuple(schema, ["ann", 90])
        assert len({a, b}) == 1

    def test_schema_part_of_identity(self, schema):
        other_schema = Schema(
            [Attribute("alias", STRING), Attribute("salary", INTEGER)]
        )
        assert SnapshotTuple(schema, ["ann", 90]) != SnapshotTuple(
            other_schema, ["ann", 90]
        )
