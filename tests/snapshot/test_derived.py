"""Tests for derived operators, each checked against its primitive
definition where practical."""

import pytest
from hypothesis import given, settings

from repro.errors import SchemaError
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.derived import (
    antijoin,
    divide,
    intersection,
    natural_join,
    rename,
    semijoin,
    theta_join,
)
from repro.snapshot.operators import difference, product, project, select
from repro.snapshot.predicates import Comparison, attr
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
EMP = Schema([Attribute("name", STRING), Attribute("dept", STRING)])
DEPT = Schema([Attribute("dept", STRING), Attribute("floor", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


@pytest.fixture
def emp():
    return SnapshotState(
        EMP, [["ann", "cs"], ["bob", "math"], ["cat", "cs"]]
    )


@pytest.fixture
def dept():
    return SnapshotState(DEPT, [["cs", 3], ["physics", 1]])


class TestIntersection:
    def test_basic(self):
        assert intersection(kv((1, 1), (2, 2)), kv((2, 2), (3, 3))) == kv(
            (2, 2)
        )

    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_matches_primitive_definition(self, left, right):
        # R ∩ S = R − (R − S)
        assert intersection(left, right) == difference(
            left, difference(left, right)
        )


class TestRename:
    def test_basic(self, emp):
        renamed = rename(emp, {"name": "who"})
        assert renamed.schema.names == ("who", "dept")
        assert len(renamed) == 3

    def test_enables_self_product(self, emp):
        doubled = product(emp, rename(emp, {"name": "n2", "dept": "d2"}))
        assert len(doubled) == 9


class TestThetaJoin:
    def test_matches_definition(self, emp, dept):
        renamed_dept = rename(dept, {"dept": "dname"})
        predicate = Comparison(attr("dept"), "=", attr("dname"))
        assert theta_join(emp, renamed_dept, predicate) == select(
            product(emp, renamed_dept), predicate
        )


class TestNaturalJoin:
    def test_basic(self, emp, dept):
        result = natural_join(emp, dept)
        assert result.schema.names == ("name", "dept", "floor")
        assert result.sorted_rows() == [
            ("ann", "cs", 3),
            ("cat", "cs", 3),
        ]

    def test_no_common_attributes_is_product(self, emp):
        other = SnapshotState(Schema(["x"]), [["a"], ["b"]])
        assert natural_join(emp, other) == product(emp, other)

    def test_identical_schemas_is_intersection(self, emp):
        other = SnapshotState(EMP, [["ann", "cs"], ["zed", "law"]])
        assert natural_join(emp, other) == intersection(emp, other)

    def test_join_is_commutative_up_to_columns(self, emp, dept):
        left = natural_join(emp, dept)
        right = natural_join(dept, emp)
        common_order = ["name", "dept", "floor"]
        assert project(left, common_order) == project(
            right, common_order
        )


class TestSemijoinAntijoin:
    def test_semijoin(self, emp, dept):
        assert semijoin(emp, dept).sorted_rows() == [
            ("ann", "cs"),
            ("cat", "cs"),
        ]

    def test_antijoin(self, emp, dept):
        assert antijoin(emp, dept).sorted_rows() == [("bob", "math")]

    def test_semijoin_plus_antijoin_partition(self, emp, dept):
        combined = semijoin(emp, dept).tuples | antijoin(emp, dept).tuples
        assert combined == emp.tuples

    def test_semijoin_no_common_nonempty_right(self, emp):
        other = SnapshotState(Schema(["x"]), [["a"]])
        assert semijoin(emp, other) == emp

    def test_semijoin_no_common_empty_right(self, emp):
        other = SnapshotState.empty(Schema(["x"]))
        assert semijoin(emp, other).is_empty()


class TestDivide:
    def test_textbook_example(self):
        enrolled = SnapshotState(
            Schema(
                [Attribute("student", STRING), Attribute("course", STRING)]
            ),
            [
                ["ann", "db"],
                ["ann", "os"],
                ["bob", "db"],
                ["cat", "db"],
                ["cat", "os"],
            ],
        )
        required = SnapshotState(
            Schema([Attribute("course", STRING)]), [["db"], ["os"]]
        )
        assert divide(enrolled, required).sorted_rows() == [
            ("ann",),
            ("cat",),
        ]

    def test_divide_by_empty_divisor_instance(self):
        # an empty divisor instance: everything qualifies vacuously
        enrolled = SnapshotState(
            Schema(
                [Attribute("student", STRING), Attribute("course", STRING)]
            ),
            [["ann", "db"]],
        )
        required = SnapshotState.empty(
            Schema([Attribute("course", STRING)])
        )
        assert divide(enrolled, required).sorted_rows() == [("ann",)]

    def test_non_subset_schema_raises(self, emp, dept):
        with pytest.raises(SchemaError):
            divide(emp, dept)  # 'floor' not in emp

    def test_zero_degree_divisor_raises(self, emp):
        with pytest.raises(SchemaError):
            divide(emp, SnapshotState.empty(Schema([])))

    def test_equal_schema_raises(self, emp):
        with pytest.raises(SchemaError):
            divide(emp, emp)  # must be a *proper* subset
