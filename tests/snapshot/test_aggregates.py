"""Tests for grouping and aggregation."""

import pytest
from hypothesis import given, settings

from repro.errors import SchemaError
from repro.snapshot.aggregates import aggregate
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

STAFF = Schema(
    [
        Attribute("name", STRING),
        Attribute("dept", STRING),
        Attribute("salary", INTEGER),
    ]
)


@pytest.fixture
def staff():
    return SnapshotState(
        STAFF,
        [
            ["ann", "cs", 100],
            ["bob", "cs", 60],
            ["cat", "ee", 80],
            ["dan", "ee", 40],
            ["eve", "ee", 90],
        ],
    )


class TestGrouping:
    def test_group_by_with_count_and_sum(self, staff):
        out = aggregate(
            staff,
            ["dept"],
            {"n": ("count", None), "total": ("sum", "salary")},
        )
        assert out.schema.names == ("dept", "n", "total")
        assert out.sorted_rows() == [("cs", 2, 160), ("ee", 3, 210)]

    def test_min_max_avg(self, staff):
        out = aggregate(
            staff,
            ["dept"],
            {
                "lo": ("min", "salary"),
                "hi": ("max", "salary"),
                "mean": ("avg", "salary"),
            },
        )
        rows = {row[0]: row[1:] for row in out.sorted_rows()}
        assert rows["cs"] == (60, 100, 80.0)
        assert rows["ee"] == (40, 90, 70.0)

    def test_global_aggregate(self, staff):
        out = aggregate(staff, [], {"n": ("count", None)})
        assert out.sorted_rows() == [(5,)]

    def test_global_aggregate_on_empty_state(self):
        out = aggregate(
            SnapshotState.empty(STAFF), [], {"n": ("count", None)}
        )
        assert out.is_empty()  # GROUP BY semantics: no groups

    def test_min_max_work_on_strings(self, staff):
        out = aggregate(staff, [], {"first": ("min", "name")})
        assert out.sorted_rows() == [("ann",)]

    def test_composes_with_rollback(self):
        from repro.core.commands import DefineRelation, ModifyState
        from repro.core.expressions import Const, Rollback
        from repro.core.sentences import run

        s1 = SnapshotState(STAFF, [["ann", "cs", 100]])
        s2 = SnapshotState(
            STAFF, [["ann", "cs", 100], ["bob", "cs", 60]]
        )
        db = run(
            [
                DefineRelation("staff", "rollback"),
                ModifyState("staff", Const(s1)),
                ModifyState("staff", Const(s2)),
            ]
        )
        totals = []
        for txn in (2, 3):
            state = Rollback("staff", txn).evaluate(db)
            out = aggregate(state, [], {"total": ("sum", "salary")})
            totals.append(out.sorted_rows()[0][0])
        assert totals == [100, 160]


class TestValidation:
    def test_no_aggregations_rejected(self, staff):
        with pytest.raises(SchemaError):
            aggregate(staff, ["dept"], {})

    def test_unknown_function_rejected(self, staff):
        with pytest.raises(SchemaError, match="median"):
            aggregate(staff, [], {"m": ("median", "salary")})

    def test_unknown_input_attribute_rejected(self, staff):
        with pytest.raises(SchemaError):
            aggregate(staff, [], {"s": ("sum", "bonus")})

    def test_sum_requires_input(self, staff):
        with pytest.raises(SchemaError, match="requires an input"):
            aggregate(staff, [], {"s": ("sum", None)})

    def test_count_takes_no_input(self, staff):
        with pytest.raises(SchemaError, match="no input"):
            aggregate(staff, [], {"n": ("count", "salary")})

    def test_output_collides_with_group_by(self, staff):
        with pytest.raises(SchemaError, match="collide"):
            aggregate(staff, ["dept"], {"dept": ("count", None)})

    def test_duplicate_group_by_rejected(self, staff):
        with pytest.raises(SchemaError):
            aggregate(staff, ["dept", "dept"], {"n": ("count", None)})


@settings(max_examples=40)
@given(kv_states())
def test_count_partition_property(state):
    """Sum of per-group counts equals the state's cardinality."""
    out = aggregate(state, ["k"], {"n": ("count", None)})
    assert sum(row[1] for row in out.sorted_rows()) == len(state)


@settings(max_examples=40)
@given(kv_states())
def test_group_keys_are_exactly_projection(state):
    from repro.snapshot.operators import project

    out = aggregate(state, ["k"], {"n": ("count", None)})
    keys = {row[0] for row in out.sorted_rows()}
    expected = {t["k"] for t in project(state, ["k"]).tuples}
    assert keys == expected
