"""The shipping surface: WAL tailing, PrimaryStream, FaultyStream."""

import pytest

from repro.errors import StreamGapError, WalError
from repro.durability import DurableDatabase, MemoryStore
from repro.durability.faults import FaultPlan
from repro.replication import FaultyStream, PrimaryStream

from tests.replication.conftest import chaos_seed


class TestReadFrom:
    def _primary(self, workload, n=30, **kwargs):
        kwargs.setdefault("fsync", "always")
        kwargs.setdefault("checkpoint_every", 0)
        ddb = DurableDatabase(MemoryStore(), **kwargs)
        for command in workload[:n]:
            ddb.execute(command)
        return ddb

    def test_tail_is_ordered_and_contiguous(self, workload):
        ddb = self._primary(workload)
        batch = ddb.wal.read_from(1)
        assert [lsn for lsn, _ in batch] == list(range(1, 31))
        assert ddb.wal.read_from(31) == []

    def test_limit_bounds_the_batch(self, workload):
        ddb = self._primary(workload)
        batch = ddb.wal.read_from(5, limit=7)
        assert [lsn for lsn, _ in batch] == list(range(5, 12))

    def test_nonpositive_lsn_rejected(self, workload):
        ddb = self._primary(workload, n=3)
        with pytest.raises(WalError):
            ddb.wal.read_from(0)

    def test_compacted_prefix_raises_authoritative_gap(self, workload):
        ddb = self._primary(
            workload,
            n=40,
            segment_bytes=256,
            keep_checkpoints=1,
        )
        ddb.checkpoint()
        first = ddb.wal.first_lsn
        assert first > 1, "workload must span several dropped segments"
        with pytest.raises(StreamGapError) as info:
            ddb.wal.read_from(1)
        assert info.value.compacted
        assert info.value.got == first
        # the retained suffix still reads fine
        batch = ddb.wal.read_from(first)
        assert batch[0][0] == first

    def test_rebased_log_serves_only_the_future(self, workload):
        # after rebase(k) nothing ≤ k is retained: read_from must not
        # silently return [] and strand a replica
        ddb = self._primary(workload, n=10)
        ddb.wal.rebase(25)
        with pytest.raises(StreamGapError) as info:
            ddb.wal.read_from(11)
        assert info.value.compacted
        assert ddb.wal.read_from(26) == []


class TestPrimaryStream:
    def test_fetch_decodes_nothing_ships_bytes(self, primary, workload):
        for command in workload[:12]:
            primary.execute(command)
        stream = PrimaryStream(primary)
        batch = stream.fetch(0, limit=5)
        assert [lsn for lsn, _ in batch] == [1, 2, 3, 4, 5]
        assert all(isinstance(p, bytes) for _, p in batch)
        assert stream.first_lsn() == 1
        assert stream.last_lsn() == 12

    def test_snapshot_forces_a_checkpoint_when_none(
        self, primary, workload, oracle
    ):
        for command in workload[:8]:
            primary.execute(command)
        stream = PrimaryStream(primary)
        lsn, database = stream.snapshot()
        assert lsn == 8
        assert database == oracle[8]

    def test_snapshot_returns_newest_existing(self, primary, workload):
        for command in workload[:5]:
            primary.execute(command)
        primary.checkpoint()
        for command in workload[5:9]:
            primary.execute(command)
        stream = PrimaryStream(primary)
        lsn, _ = stream.snapshot()
        assert lsn == 5  # existing checkpoint, not a forced new one


class TestFaultyStream:
    def _stream(self, primary, workload, plan):
        for command in workload[:20]:
            primary.execute(command)
        return FaultyStream(PrimaryStream(primary), plan)

    def test_clean_plan_is_passthrough(self, primary, workload):
        faulty = self._stream(primary, workload, FaultPlan(seed=1))
        assert faulty.fetch(0, limit=20) == PrimaryStream(
            primary
        ).fetch(0, limit=20)

    def test_transient_errors_are_replication_errors(
        self, primary, workload
    ):
        from repro.errors import ReplicationError

        plan = FaultPlan(seed=chaos_seed(5), stream_error_rate=1.0)
        faulty = self._stream(primary, workload, plan)
        with pytest.raises(ReplicationError):
            faulty.fetch(0)

    def test_mangling_is_seed_deterministic(self, primary, workload):
        kwargs = dict(
            stream_drop_rate=0.3,
            stream_duplicate_rate=0.3,
            stream_reorder_rate=0.3,
            stream_truncate_rate=0.3,
        )
        one = self._stream(
            primary, workload, FaultPlan(seed=7, **kwargs)
        )
        two = FaultyStream(one.inner, FaultPlan(seed=7, **kwargs))
        for after in (0, 5, 10):
            assert one.fetch(after, limit=6) == two.fetch(
                after, limit=6
            )

    def test_mangled_batches_only_rearrange_real_records(
        self, primary, workload
    ):
        plan = FaultPlan(
            seed=chaos_seed(9),
            stream_drop_rate=0.25,
            stream_duplicate_rate=0.25,
            stream_reorder_rate=0.25,
            stream_truncate_rate=0.25,
        )
        faulty = self._stream(primary, workload, plan)
        clean = {
            lsn: payload
            for lsn, payload in PrimaryStream(primary).fetch(
                0, limit=20
            )
        }
        for round_ in range(50):
            batch = faulty.fetch(0, limit=10)
            for lsn, payload in batch:
                # faults lose/duplicate/shuffle records but never forge
                assert clean[lsn] == payload
