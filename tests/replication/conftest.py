"""Shared fixtures for the replication suite.

The suite reuses the durability suite's differential machinery: the
scripted workload (every command shape the WAL codec ships) and its
in-memory oracle.  `REPRO_CHAOS_SEED` reseeds the chaos tests from the
environment so CI can roll a fresh schedule per run while any failure
stays reproducible by exporting the printed seed.
"""

from __future__ import annotations

import os

import pytest

from repro.durability import DurableDatabase, MemoryStore
from repro.replication import PrimaryStream, Replica, RetryPolicy

from tests.durability.conftest import (  # noqa: F401  (re-exported fixtures)
    oracle,
    scripted_workload,
    workload,
)


def chaos_seed(default: int = 0) -> int:
    """The base seed for randomized fault schedules; CI varies it via
    the REPRO_CHAOS_SEED environment variable."""
    return int(os.environ.get("REPRO_CHAOS_SEED", default))


@pytest.fixture
def primary():
    """A durable primary over a fresh in-memory store, with automatic
    checkpointing disabled so tests control compaction explicitly."""
    ddb = DurableDatabase(
        MemoryStore(), fsync="always", checkpoint_every=0
    )
    yield ddb
    ddb.close()


@pytest.fixture
def stream(primary):
    return PrimaryStream(primary)


@pytest.fixture
def fast_retry():
    """A generous attempt budget with zero sleeping — chaos tests retry
    through injected faults without slowing the suite down."""
    return RetryPolicy(max_attempts=64, base_delay=0.0, max_delay=0.0)


def make_replica(stream, **kwargs):
    kwargs.setdefault("retry", RetryPolicy.none())
    return Replica(stream, **kwargs)
