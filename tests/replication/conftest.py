"""Shared fixtures for the replication suite.

The suite reuses the durability suite's differential machinery: the
scripted workload (every command shape the WAL codec ships) and its
in-memory oracle.  `REPRO_CHAOS_SEED` reseeds the chaos tests from the
environment so CI can roll a fresh schedule per run while any failure
stays reproducible by exporting the printed seed.
"""

from __future__ import annotations

import os

import pytest

from repro.durability import DurableDatabase, MemoryStore
from repro.replication import PrimaryStream, Replica, RetryPolicy

from tests.durability.conftest import (  # noqa: F401  (re-exported fixtures)
    oracle,
    scripted_workload,
    workload,
)


def chaos_seed(default: int = 0) -> int:
    """The base seed for randomized fault schedules; CI varies it via
    the REPRO_CHAOS_SEED environment variable.  When that is unset the
    run seed (``tests/conftest.py``) stands in for ``default``, so every
    chaos schedule stays reproducible from the printed header seed."""
    explicit = os.environ.get("REPRO_CHAOS_SEED")
    if explicit:
        return int(explicit)
    from tests.conftest import RUN_SEED, derive_seed

    return derive_seed(RUN_SEED, f"chaos-default-{default}")


def case_seed(test_seed: int, salt: int = 0) -> int:
    """The seed for one chaos test case: ``REPRO_CHAOS_SEED`` (the CI
    override, combined with ``salt`` exactly as the pre-run-seed suite
    did) when set, else the per-test ``test_seed`` fixture value — which
    the failure report stamps automatically."""
    explicit = os.environ.get("REPRO_CHAOS_SEED")
    if explicit:
        return int(explicit) * 1000 + salt
    return test_seed


@pytest.fixture
def primary():
    """A durable primary over a fresh in-memory store, with automatic
    checkpointing disabled so tests control compaction explicitly."""
    ddb = DurableDatabase(
        MemoryStore(), fsync="always", checkpoint_every=0
    )
    yield ddb
    ddb.close()


@pytest.fixture
def stream(primary):
    return PrimaryStream(primary)


@pytest.fixture
def fast_retry():
    """A generous attempt budget with zero sleeping — chaos tests retry
    through injected faults without slowing the suite down."""
    return RetryPolicy(max_attempts=64, base_delay=0.0, max_delay=0.0)


def make_replica(stream, **kwargs):
    kwargs.setdefault("retry", RetryPolicy.none())
    return Replica(stream, **kwargs)
