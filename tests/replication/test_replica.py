"""Replica behavior: catch-up, idempotence, gaps, re-snapshot,
divergence condemnation, bounded staleness, promotion."""

import pytest

from repro.errors import (
    DivergenceError,
    ReplicationError,
    RetryExhaustedError,
    StaleReadError,
)
from repro.core.expressions import Rollback
from repro.core.txn import NOW
from repro.durability import DurableDatabase, MemoryStore
from repro.durability.codec import decode_record, encode_record
from repro.persistence.json_codec import database_to_dict
from repro.replication import PrimaryStream, Replica, RetryPolicy

from tests.replication.conftest import make_replica

IDENTIFIERS = ("r", "s", "h", "t")


def feed(primary, workload, n, start=0):
    for command in workload[start:n]:
        primary.execute(command)


class TestCatchUp:
    def test_caught_up_replica_equals_primary(
        self, primary, stream, workload, oracle
    ):
        feed(primary, workload, 60)
        replica = make_replica(stream)
        applied = replica.catch_up()
        assert applied == 60
        assert replica.applied_lsn == primary.wal.last_lsn
        assert replica.lag() == 0
        assert replica.database == oracle[60]
        assert database_to_dict(replica.database) == database_to_dict(
            primary.database
        )

    def test_incremental_tailing(self, primary, stream, workload, oracle):
        replica = make_replica(stream)
        for n in (10, 25, 60):
            feed(primary, workload, n, start=primary.wal.last_lsn)
            replica.catch_up()
            assert replica.database == oracle[n]

    def test_poll_applies_one_bounded_round(
        self, primary, stream, workload
    ):
        feed(primary, workload, 30)
        replica = make_replica(stream, batch_records=10)
        assert replica.poll() == 10
        assert replica.applied_lsn == 10
        assert replica.poll() == 10
        replica.catch_up()
        assert replica.poll() == 0  # caught up: a no-op

    def test_historical_reads_match_primary_at_every_txn(
        self, primary, stream, workload
    ):
        # the acceptance read: rho(R, N) for any N ≤ applied is the
        # primary's answer exactly
        feed(primary, workload, 80)
        replica = make_replica(stream)
        replica.catch_up()
        for identifier in ("r", "t"):  # the kinds that keep history
            for txn in range(0, 81, 4):
                expression = Rollback(identifier, txn)
                assert replica.evaluate(expression) == primary.evaluate(
                    expression
                ), (identifier, txn)
        for identifier in IDENTIFIERS:
            for txn in (0, 1, 40, 80):
                assert replica.state_at(
                    identifier, txn
                ) == primary.state_at(identifier, txn)


class TestDeliveryFaults:
    def test_duplicates_are_skipped_idempotently(
        self, primary, workload, oracle
    ):
        feed(primary, workload, 20)

        class DuplicatingStream(PrimaryStream):
            def fetch(self, after_lsn, limit=256):
                batch = super().fetch(after_lsn, limit)
                return [r for record in batch for r in (record, record)]

        replica = make_replica(DuplicatingStream(primary))
        replica.catch_up()
        assert replica.database == oracle[20]

    def test_in_batch_gap_refetches_not_applies(
        self, primary, workload, oracle, fast_retry
    ):
        feed(primary, workload, 20)
        dropped = {5, 11}

        class LossyOnceStream(PrimaryStream):
            def __init__(self, inner):
                super().__init__(inner)
                self.lost = set(dropped)

            def fetch(self, after_lsn, limit=256):
                batch = super().fetch(after_lsn, limit)
                kept = [
                    (lsn, p) for lsn, p in batch if lsn not in self.lost
                ]
                self.lost -= {lsn for lsn, _ in batch}
                return kept

        replica = make_replica(LossyOnceStream(primary), retry=fast_retry)
        replica.catch_up()
        assert replica.database == oracle[20]
        assert replica.applied_lsn == 20

    def test_permanent_loss_exhausts_the_budget(self, primary, workload):
        feed(primary, workload, 10)

        class BlackholeStream(PrimaryStream):
            def fetch(self, after_lsn, limit=256):
                return []

        replica = make_replica(
            BlackholeStream(primary),
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.0, max_delay=0.0
            ),
        )
        with pytest.raises(RetryExhaustedError) as info:
            replica.catch_up()
        assert info.value.attempts == 3

    def test_undecodable_record_is_transport_not_divergence(
        self, primary, workload
    ):
        feed(primary, workload, 5)

        class CorruptingStream(PrimaryStream):
            def fetch(self, after_lsn, limit=256):
                return [
                    (lsn, b"\x00garbage")
                    for lsn, _ in super().fetch(after_lsn, limit)
                ]

        replica = make_replica(CorruptingStream(primary))
        with pytest.raises(RetryExhaustedError) as info:
            replica.catch_up()
        assert not isinstance(info.value.__cause__, DivergenceError)
        assert not replica.diverged  # transport damage never condemns


class TestResnapshot:
    def _compacting_primary(self, workload, n):
        primary = DurableDatabase(
            MemoryStore(),
            fsync="always",
            checkpoint_every=0,
            keep_checkpoints=1,
            segment_bytes=256,
        )
        feed(primary, workload, n)
        return primary

    def test_fallen_off_the_log_rebuilds_from_checkpoint(
        self, workload, oracle
    ):
        primary = self._compacting_primary(workload, 5)
        stream = PrimaryStream(primary)
        replica = make_replica(stream)
        replica.catch_up()
        feed(primary, workload, 60, start=5)
        primary.checkpoint()
        assert primary.wal.first_lsn > replica.applied_lsn + 1
        replica.catch_up()
        assert replica.database == oracle[60]
        assert replica.applied_lsn == 60

    def test_bootstrap_against_compacted_primary(self, workload, oracle):
        primary = self._compacting_primary(workload, 50)
        primary.checkpoint()
        assert primary.wal.first_lsn > 1
        replica = make_replica(PrimaryStream(primary))
        replica.catch_up()
        assert replica.database == oracle[50]

    def test_resnapshot_preserves_backend_mirror(self, workload, oracle):
        from repro.storage import DeltaBackend
        from repro.storage.versioned_db import (
            VersionedDatabase,
            backends_agree,
        )

        primary = self._compacting_primary(workload, 10)
        replica = make_replica(
            PrimaryStream(primary), backend=DeltaBackend()
        )
        replica.catch_up()
        feed(primary, workload, 70, start=10)
        primary.checkpoint()
        replica.catch_up()
        assert replica.database == oracle[70]
        reference = VersionedDatabase(DeltaBackend())
        reference.restore(oracle[70])
        probes = [
            (identifier, txn)
            for identifier in IDENTIFIERS
            for txn in range(0, 71, 7)
        ]
        assert backends_agree(
            [replica.durable.versioned.backend, reference.backend],
            probes,
        )


class TestDivergence:
    def _forging_stream(self, primary):
        class ForgingStream(PrimaryStream):
            def fetch(self, after_lsn, limit=256):
                batch = super().fetch(after_lsn, limit)
                forged = []
                for lsn, payload in batch:
                    command, txn = decode_record(payload)
                    forged.append(
                        (lsn, encode_record(command, txn + 1))
                    )
                return forged

        return ForgingStream(primary)

    def test_txn_mismatch_condemns_the_replica(self, primary, workload):
        feed(primary, workload, 10)
        replica = make_replica(self._forging_stream(primary))
        with pytest.raises(DivergenceError):
            replica.catch_up()
        assert replica.diverged
        with pytest.raises(DivergenceError):
            replica.catch_up()  # stays condemned
        with pytest.raises(DivergenceError):
            replica.evaluate(Rollback("r", NOW))  # and refuses reads

    def test_divergence_is_never_retried(self, primary, workload):
        feed(primary, workload, 10)
        fetches = []

        class CountingForger(PrimaryStream):
            def fetch(self, after_lsn, limit=256):
                fetches.append(after_lsn)
                batch = super().fetch(after_lsn, limit)
                return [
                    (lsn, encode_record(*decode_record(p)[:1], 999))
                    for lsn, p in batch
                ]

        replica = make_replica(
            CountingForger(primary),
            retry=RetryPolicy(
                max_attempts=50, base_delay=0.0, max_delay=0.0
            ),
        )
        with pytest.raises(DivergenceError):
            replica.catch_up()
        assert len(fetches) == 1

    def test_diverged_replica_refuses_promotion(self, primary, workload):
        feed(primary, workload, 10)
        replica = make_replica(self._forging_stream(primary))
        with pytest.raises(DivergenceError):
            replica.catch_up()
        with pytest.raises(DivergenceError):
            replica.promote()


class TestBoundedStaleness:
    def test_reject_over_max_lag(self, primary, stream, workload):
        feed(primary, workload, 10)
        replica = make_replica(stream, max_lag=3)
        replica.catch_up()
        feed(primary, workload, 13, start=10)
        assert replica.evaluate(Rollback("r", NOW)) is not None
        feed(primary, workload, 20, start=13)
        with pytest.raises(StaleReadError) as info:
            replica.evaluate(Rollback("r", NOW))
        assert info.value.lag == 10
        assert info.value.max_lag == 3
        replica.catch_up()
        assert replica.evaluate(Rollback("r", NOW)) == primary.evaluate(
            Rollback("r", NOW)
        )

    def test_serve_stale_when_configured(self, primary, stream, workload):
        feed(primary, workload, 10)
        replica = make_replica(stream, max_lag=0, on_stale="serve")
        replica.catch_up()
        feed(primary, workload, 15, start=10)
        # knowingly stale, but served: the pre-advance answer
        before = replica.evaluate(Rollback("s", NOW))
        assert before == Rollback("s", NOW).evaluate(replica.database)

    def test_configuration_validated(self, stream):
        with pytest.raises(ReplicationError):
            Replica(stream, max_lag=-1)
        with pytest.raises(ReplicationError):
            Replica(stream, on_stale="panic")
        with pytest.raises(ReplicationError):
            Replica(stream, batch_records=0)


class TestCrashRestart:
    def test_replica_resumes_from_its_durable_prefix(
        self, primary, stream, workload, oracle
    ):
        feed(primary, workload, 40)
        store = MemoryStore()
        replica = make_replica(stream, store=store, fsync="always")
        replica.catch_up()
        store.crash()  # lose the volatile page cache, keep durable bytes
        resumed = make_replica(stream, store=store, fsync="always")
        assert resumed.applied_lsn == 40
        feed(primary, workload, 55, start=40)
        resumed.catch_up()
        assert resumed.database == oracle[55]

    def test_lazy_fsync_replica_refetches_lost_tail(
        self, primary, stream, workload, oracle
    ):
        feed(primary, workload, 40)
        store = MemoryStore()
        replica = make_replica(
            stream, store=store, fsync="batch(1000, 60000)"
        )
        replica.catch_up()
        store.crash()  # the un-fsynced tail evaporates
        resumed = make_replica(stream, store=store)
        assert resumed.applied_lsn <= 40
        resumed.catch_up()  # ... and is simply re-fetched
        assert resumed.database == oracle[40]


class TestPromotion:
    def test_promoted_replica_extends_without_lsn_reuse(
        self, primary, stream, workload, oracle
    ):
        feed(primary, workload, 30)
        replica = make_replica(stream)
        replica.catch_up()
        promoted = replica.promote()
        assert replica.promoted
        assert promoted.wal.last_lsn == 30
        promoted.execute(workload[30])
        assert promoted.wal.last_lsn == 31  # applied_lsn + 1: no reuse
        assert promoted.database == oracle[31]

    def test_promotion_survives_restart(self, primary, stream, workload):
        feed(primary, workload, 20)
        store = MemoryStore()
        replica = make_replica(stream, store=store, fsync="never")
        replica.catch_up()
        promoted = replica.promote()  # checkpoints at the promotion LSN
        promoted.execute(workload[20])
        promoted.close()
        reopened = DurableDatabase(store)
        assert reopened.wal.last_lsn >= 20

    def test_promoted_replica_refuses_stream_applies(
        self, primary, stream, workload
    ):
        feed(primary, workload, 10)
        replica = make_replica(stream)
        replica.catch_up()
        replica.promote()
        with pytest.raises(ReplicationError):
            replica.catch_up()
        with pytest.raises(ReplicationError):
            replica.promote()  # and cannot promote twice

    def test_promoted_reads_skip_staleness(
        self, primary, stream, workload
    ):
        feed(primary, workload, 10)
        replica = make_replica(stream, max_lag=0)
        replica.catch_up()
        replica.promote()
        feed(primary, workload, 20, start=10)  # old primary races ahead
        # the promoted replica is its own authority now: no StaleReadError
        assert replica.evaluate(Rollback("r", NOW)) == Rollback(
            "r", NOW
        ).evaluate(replica.database)
