"""Differential chaos: randomized workloads × randomized fault
schedules, replayed against the in-memory oracle.

Invariant: whatever the delivery layer does — drop, duplicate, reorder,
truncate, error — a replica that reports itself caught up holds a
database byte-for-byte equal (via the canonical JSON encoding) to the
primary's at the same transaction number.  ``REPRO_CHAOS_SEED`` varies
the schedules in CI; every printed seed reproduces its run exactly.
"""

import random

import pytest

from repro.core.expressions import Rollback
from repro.durability import DurableDatabase, MemoryStore
from repro.durability.faults import FaultPlan
from repro.persistence.json_codec import database_to_dict
from repro.replication import (
    FaultyStream,
    PrimaryStream,
    Replica,
    RetryPolicy,
)

from tests.durability.conftest import oracle_history, scripted_workload
from tests.replication.conftest import case_seed

IDENTIFIERS = ("r", "s", "h", "t")


def _fault_plan(rng):
    return FaultPlan(
        seed=rng.randrange(1 << 30),
        stream_drop_rate=rng.uniform(0.0, 0.35),
        stream_duplicate_rate=rng.uniform(0.0, 0.35),
        stream_reorder_rate=rng.uniform(0.0, 0.35),
        stream_truncate_rate=rng.uniform(0.0, 0.35),
        stream_error_rate=rng.uniform(0.0, 0.25),
    )


def _retry():
    return RetryPolicy(max_attempts=200, base_delay=0.0, max_delay=0.0)


@pytest.mark.parametrize("case", range(6))
def test_replica_converges_under_arbitrary_delivery_faults(case, test_seed):
    seed = case_seed(test_seed, case)
    rng = random.Random(seed)
    workload = scripted_workload(length=120, seed=rng.randrange(1 << 16))
    oracle = oracle_history(workload)
    primary = DurableDatabase(
        MemoryStore(), fsync="always", checkpoint_every=0
    )
    replica = Replica(
        FaultyStream(PrimaryStream(primary), _fault_plan(rng)),
        retry=_retry(),
        batch_records=rng.choice([1, 3, 8, 32]),
    )
    executed = 0
    while executed < len(workload):
        step = rng.randint(1, 17)
        for command in workload[executed : executed + step]:
            primary.execute(command)
        executed = min(executed + step, len(workload))
        replica.catch_up()
        assert replica.applied_lsn == executed, f"seed={seed}"
        assert database_to_dict(replica.database) == database_to_dict(
            oracle[executed]
        ), f"seed={seed}"
    expression = Rollback(
        "r", rng.randrange(primary.transaction_number + 1)
    )
    assert replica.evaluate(expression) == primary.evaluate(expression)


@pytest.mark.parametrize("case", range(3))
def test_replica_converges_across_compaction_and_faults(case, test_seed):
    # the primary checkpoints and compacts mid-stream, so lagging
    # replicas fall off the log and must re-snapshot — under delivery
    # faults the whole way
    seed = case_seed(test_seed, case)
    rng = random.Random(seed)
    workload = scripted_workload(length=150, seed=rng.randrange(1 << 16))
    oracle = oracle_history(workload)
    primary = DurableDatabase(
        MemoryStore(),
        fsync="always",
        checkpoint_every=0,
        keep_checkpoints=1,
        segment_bytes=rng.choice([128, 256, 512]),
    )
    replica = Replica(
        FaultyStream(PrimaryStream(primary), _fault_plan(rng)),
        retry=_retry(),
    )
    executed = 0
    while executed < len(workload):
        step = rng.randint(5, 40)
        for command in workload[executed : executed + step]:
            primary.execute(command)
        executed = min(executed + step, len(workload))
        if rng.random() < 0.6:
            primary.checkpoint()  # compacts the tail away
        replica.catch_up()
        assert database_to_dict(replica.database) == database_to_dict(
            oracle[executed]
        ), f"seed={seed}"


@pytest.mark.parametrize("case", range(3))
def test_replica_crash_restart_converges(case, test_seed):
    # the replica itself crashes (volatile state lost, durable prefix
    # kept) at random points and resumes over the same store
    seed = case_seed(test_seed, case)
    rng = random.Random(seed)
    workload = scripted_workload(length=100, seed=rng.randrange(1 << 16))
    oracle = oracle_history(workload)
    primary = DurableDatabase(
        MemoryStore(), fsync="always", checkpoint_every=0
    )
    stream = FaultyStream(PrimaryStream(primary), _fault_plan(rng))
    store = MemoryStore()
    fsync = rng.choice(["always", "batch(8, 60000)", "never"])
    replica = Replica(stream, store=store, fsync=fsync, retry=_retry())
    executed = 0
    while executed < len(workload):
        step = rng.randint(1, 25)
        for command in workload[executed : executed + step]:
            primary.execute(command)
        executed = min(executed + step, len(workload))
        replica.catch_up()
        if rng.random() < 0.5:
            store.crash()
            replica = Replica(
                stream, store=store, fsync=fsync, retry=_retry()
            )
            assert replica.applied_lsn <= executed
            replica.catch_up()
        assert database_to_dict(replica.database) == database_to_dict(
            oracle[executed]
        ), f"seed={seed}"


def test_failover_promotion_continues_history(test_seed):
    # primary dies mid-stream; a caught-up replica is promoted and new
    # writes extend the same LSN space with no reuse; a second replica
    # then follows the new primary to the combined history
    seed = case_seed(test_seed)
    rng = random.Random(seed)
    workload = scripted_workload(length=80, seed=seed % (1 << 16))
    oracle = oracle_history(workload)
    primary = DurableDatabase(
        MemoryStore(), fsync="always", checkpoint_every=0
    )
    replica = Replica(
        FaultyStream(PrimaryStream(primary), _fault_plan(rng)),
        retry=_retry(),
    )
    for command in workload[:50]:
        primary.execute(command)
    replica.catch_up()
    primary.close()  # the primary is gone

    promoted = replica.promote()
    assert promoted.wal.last_lsn == 50
    for command in workload[50:]:
        promoted.execute(command)
    assert promoted.wal.last_lsn == len(workload)  # contiguous, no reuse
    assert database_to_dict(promoted.database) == database_to_dict(
        oracle[len(workload)]
    )

    follower = Replica(
        FaultyStream(PrimaryStream(promoted), _fault_plan(rng)),
        retry=_retry(),
    )
    follower.catch_up()
    assert database_to_dict(follower.database) == database_to_dict(
        oracle[len(workload)]
    )
    lsns = [lsn for lsn, _ in promoted.wal.read_from(1)]
    assert lsns == sorted(set(lsns)), "LSN space must never fork"
