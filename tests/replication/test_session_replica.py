"""Session(replica_of=...): the read-only replica surface of the
language layer."""

import pytest

from repro.errors import ReplicationError, StaleReadError
from repro.lang.session import Session
from repro.replication import PrimaryStream, Replica, RetryPolicy


@pytest.fixture
def primary_session(tmp_path):
    session = Session(
        durable_dir=str(tmp_path / "primary"), fsync="always"
    )
    session.execute(
        "define_relation(r, rollback);"
        'modify_state(r, state (k: integer) { (1), (2) });'
    )
    yield session
    session.close()


def _replica_session(primary_session, **kwargs):
    kwargs.setdefault("retry", RetryPolicy.none())
    return Session(replica_of=primary_session, **kwargs)


class TestReadOnly:
    def test_queries_match_the_primary(self, primary_session):
        replica = _replica_session(primary_session)
        assert replica.transaction_number == 2
        assert replica.query("rollback(r, now)") == primary_session.query(
            "rollback(r, now)"
        )
        assert replica.display("r") == primary_session.display("r")
        assert "r" in replica.catalog()

    def test_commands_are_refused(self, primary_session):
        replica = _replica_session(primary_session)
        with pytest.raises(ReplicationError):
            replica.execute("define_relation(x, snapshot);")
        with pytest.raises(ReplicationError):
            replica.execute_command(
                'modify_state(r, state (k: integer) { (9) });'
            )
        # quel updates route through the same write path
        with pytest.raises(ReplicationError):
            replica.quel("append to r (k = 7)")

    def test_catch_up_and_lag(self, primary_session):
        replica = _replica_session(primary_session)
        assert replica.lag() == 0
        primary_session.execute(
            "modify_state(r, (rollback(r, now) union"
            ' state (k: integer) { (3) }));'
        )
        assert replica.lag() == 1
        assert replica.catch_up() == 1
        assert replica.transaction_number == 3
        assert replica.database == primary_session.database
        # history recorded the refreshed value
        assert replica.history[-1] == primary_session.database

    def test_staleness_bound_applies_to_queries(self, primary_session):
        replica = _replica_session(primary_session, max_lag=0)
        primary_session.execute(
            'modify_state(r, state (k: integer) { (4) });'
        )
        with pytest.raises(StaleReadError):
            replica.query("rollback(r, now)")
        replica.catch_up()
        assert replica.query("rollback(r, now)") is not None


class TestSources:
    def test_accepts_durable_database(self, primary_session):
        replica = Session(
            replica_of=primary_session.durable, retry=RetryPolicy.none()
        )
        assert replica.database == primary_session.database

    def test_accepts_stream_and_prebuilt_replica(self, primary_session):
        stream = PrimaryStream(primary_session.durable)
        by_stream = Session(replica_of=stream, retry=RetryPolicy.none())
        assert by_stream.database == primary_session.database
        prebuilt = Replica(stream, retry=RetryPolicy.none())
        by_replica = Session(replica_of=prebuilt)
        assert by_replica.replica is prebuilt

    def test_rejects_in_memory_session_and_junk(self):
        with pytest.raises(ValueError):
            Session(replica_of=Session())
        with pytest.raises(ValueError):
            Session(replica_of=42)

    def test_rejects_primary_and_replica_at_once(
        self, primary_session, tmp_path
    ):
        with pytest.raises(ValueError):
            Session(
                durable_dir=str(tmp_path / "both"),
                replica_of=primary_session,
            )


class TestFailover:
    def test_promote_makes_the_session_writable(self, primary_session):
        replica = _replica_session(primary_session)
        replica.promote()
        assert replica.replica is None
        assert replica.durable is not None
        replica.execute(
            "modify_state(r, (rollback(r, now) minus"
            ' state (k: integer) { (1) }));'
        )
        assert replica.transaction_number == 3
        state = replica.query("rollback(r, now)")
        assert sorted(t.values[0] for t in state.tuples) == [2]
        replica.close()

    def test_promote_requires_a_replica(self, primary_session):
        with pytest.raises(ReplicationError):
            primary_session.promote()
        assert primary_session.catch_up() == 0
        assert primary_session.lag() == 0
