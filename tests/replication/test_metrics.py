"""repl.* metrics flow through the observability hooks — and stay
completely absent when no observer is installed."""

from repro.durability import DurableDatabase, MemoryStore
from repro.durability.faults import FaultPlan
from repro.obsv import hooks
from repro.obsv.registry import MetricsRegistry
from repro.replication import (
    FaultyStream,
    PrimaryStream,
    Replica,
    RetryPolicy,
)

from tests.durability.conftest import scripted_workload


def _run_replicated_workload():
    workload = scripted_workload(length=60, seed=21)
    primary = DurableDatabase(
        MemoryStore(), fsync="always", checkpoint_every=0
    )
    plan = FaultPlan(
        seed=13,
        stream_drop_rate=0.2,
        stream_duplicate_rate=0.2,
        stream_error_rate=0.2,
    )
    replica = Replica(
        FaultyStream(PrimaryStream(primary), plan),
        retry=RetryPolicy(max_attempts=100, base_delay=0.0, max_delay=0.0),
        batch_records=4,
    )
    for command in workload[:30]:
        primary.execute(command)
    replica.catch_up()
    replica.evaluate  # read surface exercised elsewhere
    for command in workload[30:]:
        primary.execute(command)
    replica.catch_up()
    old = replica.promote()
    assert old.database == primary.database
    return replica


def test_repl_metrics_flow_through_hooks():
    registry = MetricsRegistry()
    hooks.install(registry)
    try:
        _run_replicated_workload()
    finally:
        hooks.uninstall()
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    assert counters["repl.records_applied"] == 60
    assert counters["repl.batches_fetched"] > 0
    assert counters["repl.transient_errors"] > 0
    assert counters["repl.retries"] > 0
    assert counters["repl.promotions"] == 1
    assert counters.get("repl.divergences_detected", 0) == 0
    histograms = snapshot["histograms"]
    assert "repl.batch_records" in histograms
    assert "repl.apply_seconds" in histograms
    assert "repl.catchup_seconds" in histograms


def test_no_observer_means_no_overhead_path():
    assert hooks.repl_observer() is None
    _run_replicated_workload()
    assert hooks.repl_observer() is None
