"""Regression: promotion is atomic with respect to its checkpoint.

The old ordering detached the replica *before* writing the promotion
checkpoint, so a checkpoint failure (dying disk, injected fault) left a
half-promoted orphan: no longer following the stream, not yet a durable
primary, and refusing both applies and retries.  The fix checkpoints
first — a failing checkpoint leaves the replica attached and still
following, and the caller can simply retry."""

import pytest

from repro.durability import MemoryStore
from repro.replication import promote

from tests.replication.conftest import make_replica


class CheckpointFaultStore(MemoryStore):
    """A store whose checkpoint publishes fail on demand.  Checkpoints
    land via ``replace`` on a ``checkpoint-*`` name; everything else
    (WAL appends, reads) stays healthy, mimicking a disk that is full
    for large atomic writes but still absorbing log appends."""

    def __init__(self):
        super().__init__()
        self.fail_checkpoints = False
        self.attempts = 0

    def replace(self, name, data):
        if name.startswith("checkpoint-"):
            self.attempts += 1
            if self.fail_checkpoints:
                raise OSError("injected checkpoint fault")
        super().replace(name, data)


def _ship(primary, replica, commands):
    for command in commands:
        primary.execute(command)
    replica.catch_up()


def test_failing_checkpoint_leaves_the_replica_following(
    primary, stream, workload
):
    store = CheckpointFaultStore()
    replica = make_replica(stream, store=store)
    _ship(primary, replica, workload[:12])

    store.fail_checkpoints = True
    with pytest.raises(OSError, match="injected checkpoint fault"):
        promote(replica)

    # the failed promotion changed nothing: still a follower, never
    # promoted, and new primary writes keep replicating
    assert not replica.promoted
    assert store.attempts == 1
    for command in workload[12:17]:
        primary.execute(command)
    assert replica.catch_up() > 0
    assert replica.applied_lsn == primary.wal.last_lsn
    assert replica.database == primary.database


def test_retrying_the_promotion_succeeds_after_the_fault_clears(
    primary, stream, workload
):
    store = CheckpointFaultStore()
    replica = make_replica(stream, store=store)
    _ship(primary, replica, workload[:12])

    store.fail_checkpoints = True
    with pytest.raises(OSError):
        promote(replica)
    store.fail_checkpoints = False

    durable = promote(replica)
    assert replica.promoted
    assert durable.database == primary.database
    # the promotion checkpoint landed on the retry
    assert any(n.startswith("checkpoint-") for n in store.list())


def test_checkpoint_false_skips_the_faulty_path_entirely(
    primary, stream, workload
):
    store = CheckpointFaultStore()
    replica = make_replica(stream, store=store)
    _ship(primary, replica, workload[:8])

    store.fail_checkpoints = True
    durable = promote(replica, checkpoint=False)
    assert replica.promoted
    assert durable.database == primary.database
