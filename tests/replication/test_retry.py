"""RetryPolicy: delay schedule, budget, deadline, and error typing."""

import pytest

from repro.errors import (
    DivergenceError,
    ReplicationError,
    RetryExhaustedError,
)
from repro.replication import RetryPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestDelays:
    def test_capped_exponential_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.1,
            max_delay=0.5,
            multiplier=2.0,
            jitter=0.0,
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_only_subtracts(self):
        policy = RetryPolicy(
            max_attempts=20,
            base_delay=0.1,
            max_delay=1.0,
            jitter=0.5,
            seed=11,
        )
        ceilings = [0.1 * 2.0 ** k for k in range(19)]
        for delay, ceiling in zip(policy.delays(), ceilings):
            assert 0 < delay <= min(1.0, ceiling)

    def test_seed_determines_schedule(self):
        a = RetryPolicy(max_attempts=10, seed=3)
        b = RetryPolicy(max_attempts=10, seed=3)
        assert list(a.delays()) == list(b.delays())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ReplicationError):
            RetryPolicy(**kwargs)


class TestRun:
    def test_returns_first_success(self):
        policy = RetryPolicy.none()
        assert policy.run(lambda: 42) == 42

    def test_retries_until_success(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=5,
            base_delay=0.1,
            jitter=0.0,
            sleep=clock.sleep,
            clock=clock.clock,
        )
        attempts = []

        def operation():
            attempts.append(1)
            if len(attempts) < 3:
                raise ReplicationError("flaky")
            return "done"

        assert policy.run(operation) == "done"
        assert len(attempts) == 3
        assert clock.sleeps == [0.1, 0.2]

    def test_exhaustion_chains_last_error(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=3,
            base_delay=0.0,
            max_delay=0.0,
            sleep=clock.sleep,
            clock=clock.clock,
        )

        def operation():
            raise ReplicationError("always down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(operation, describe="test op")
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, ReplicationError)
        assert "test op" in str(info.value)

    def test_deadline_stops_before_overrun(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=100,
            base_delay=1.0,
            max_delay=1.0,
            jitter=0.0,
            deadline=2.5,
            sleep=clock.sleep,
            clock=clock.clock,
        )
        attempts = []

        def operation():
            attempts.append(1)
            raise ReplicationError("down")

        with pytest.raises(RetryExhaustedError):
            policy.run(operation)
        # attempts at t=0, 1, 2; the next sleep would land past 2.5
        assert len(attempts) == 3
        assert clock.now <= 2.5

    def test_unrelated_errors_propagate(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)

        def operation():
            raise ValueError("not transport")

        with pytest.raises(ValueError):
            policy.run(operation)

    def test_no_retry_on_beats_retry_on(self):
        # DivergenceError IS-A ReplicationError but must surface on the
        # first occurrence, never be retried
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)
        attempts = []

        def operation():
            attempts.append(1)
            raise DivergenceError("forked history")

        with pytest.raises(DivergenceError):
            policy.run(operation, no_retry_on=(DivergenceError,))
        assert len(attempts) == 1
