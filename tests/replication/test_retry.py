"""RetryPolicy: delay schedule, budget, deadline, and error typing."""

import pytest

from repro.errors import (
    DivergenceError,
    ReplicationError,
    RetryExhaustedError,
)
from repro.replication import RetryPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestDelays:
    def test_capped_exponential_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.1,
            max_delay=0.5,
            multiplier=2.0,
            jitter=0.0,
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_only_subtracts(self):
        policy = RetryPolicy(
            max_attempts=20,
            base_delay=0.1,
            max_delay=1.0,
            jitter=0.5,
            seed=11,
        )
        ceilings = [0.1 * 2.0 ** k for k in range(19)]
        for delay, ceiling in zip(policy.delays(), ceilings):
            assert 0 < delay <= min(1.0, ceiling)

    def test_seed_determines_schedule(self):
        a = RetryPolicy(max_attempts=10, seed=3)
        b = RetryPolicy(max_attempts=10, seed=3)
        assert list(a.delays()) == list(b.delays())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ReplicationError):
            RetryPolicy(**kwargs)


class TestRun:
    def test_returns_first_success(self):
        policy = RetryPolicy.none()
        assert policy.run(lambda: 42) == 42

    def test_retries_until_success(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=5,
            base_delay=0.1,
            jitter=0.0,
            sleep=clock.sleep,
            clock=clock.clock,
        )
        attempts = []

        def operation():
            attempts.append(1)
            if len(attempts) < 3:
                raise ReplicationError("flaky")
            return "done"

        assert policy.run(operation) == "done"
        assert len(attempts) == 3
        assert clock.sleeps == [0.1, 0.2]

    def test_exhaustion_chains_last_error(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=3,
            base_delay=0.0,
            max_delay=0.0,
            sleep=clock.sleep,
            clock=clock.clock,
        )

        def operation():
            raise ReplicationError("always down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(operation, describe="test op")
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, ReplicationError)
        assert "test op" in str(info.value)

    def test_deadline_stops_before_overrun(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=100,
            base_delay=1.0,
            max_delay=1.0,
            jitter=0.0,
            deadline=2.5,
            sleep=clock.sleep,
            clock=clock.clock,
        )
        attempts = []

        def operation():
            attempts.append(1)
            raise ReplicationError("down")

        with pytest.raises(RetryExhaustedError):
            policy.run(operation)
        # attempts at t=0, 1, 2; the next sleep would land past 2.5
        assert len(attempts) == 3
        assert clock.now <= 2.5

    def test_unrelated_errors_propagate(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)

        def operation():
            raise ValueError("not transport")

        with pytest.raises(ValueError):
            policy.run(operation)

    def test_no_retry_on_beats_retry_on(self):
        # DivergenceError IS-A ReplicationError but must surface on the
        # first occurrence, never be retried
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)
        attempts = []

        def operation():
            attempts.append(1)
            raise DivergenceError("forked history")

        with pytest.raises(DivergenceError):
            policy.run(operation, no_retry_on=(DivergenceError,))
        assert len(attempts) == 1


class TestDeadlineVsBudget:
    """Regression tests pinning the deadline/backoff interaction: a
    deadline that would expire *during* the next backoff must raise
    immediately instead of sleeping past it, and the attempt budget and
    deadline must each be able to cut the other short."""

    def _policy(self, clock, **kwargs):
        kwargs.setdefault("jitter", 0.0)
        return RetryPolicy(
            sleep=clock.sleep, clock=clock.clock, **kwargs
        )

    def test_deadline_expiring_mid_backoff_raises_instead_of_sleeping(self):
        # the slow operation eats most of the budget; the pending 1s
        # backoff would overrun the 2.5s deadline, so the policy must
        # raise *without* that sleep ever happening
        clock = FakeClock()
        policy = self._policy(
            clock,
            max_attempts=100,
            base_delay=1.0,
            max_delay=1.0,
            deadline=2.5,
        )

        def slow_failure():
            clock.now += 0.9  # the operation itself consumes wall clock
            raise ReplicationError("down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(slow_failure)
        # attempts at t=0→0.9 (sleep to 1.9), t=1.9→2.8; the next
        # backoff would end at 3.8 > 2.5, so exactly one sleep happened
        assert clock.sleeps == [1.0]
        assert info.value.attempts == 2
        # the invariant under regression: never asleep past the deadline
        assert clock.now == pytest.approx(2.8)
        assert sum(clock.sleeps) <= policy.deadline

    def test_deadline_error_reports_attempts_and_elapsed(self):
        clock = FakeClock()
        policy = self._policy(
            clock,
            max_attempts=100,
            base_delay=1.0,
            max_delay=1.0,
            deadline=2.5,
        )

        def operation():
            raise ReplicationError("down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(operation)
        assert info.value.attempts == 3  # t=0, 1, 2; t=3 would overrun
        assert info.value.elapsed == pytest.approx(2.0)
        assert info.value.elapsed <= policy.deadline

    def test_attempt_budget_exhausts_before_a_generous_deadline(self):
        clock = FakeClock()
        policy = self._policy(
            clock,
            max_attempts=4,
            base_delay=0.5,
            max_delay=0.5,
            deadline=1000.0,
        )
        attempts = []

        def operation():
            attempts.append(1)
            raise ReplicationError("down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(operation)
        # the budget, not the deadline, stopped the loop: 4 attempts,
        # 3 backoffs, nowhere near 1000s
        assert len(attempts) == 4
        assert info.value.attempts == 4
        assert clock.sleeps == [0.5, 0.5, 0.5]
        assert clock.now < policy.deadline

    def test_deadline_cuts_a_generous_attempt_budget(self):
        clock = FakeClock()
        policy = self._policy(
            clock,
            max_attempts=10_000,
            base_delay=0.25,
            max_delay=0.25,
            deadline=1.0,
        )
        attempts = []

        def operation():
            attempts.append(1)
            raise ReplicationError("down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(operation)
        # the deadline, not the budget, stopped the loop
        assert info.value.attempts < policy.max_attempts
        assert clock.now <= policy.deadline
        assert attempts  # at least the free first attempt ran

    def test_success_just_inside_the_deadline_still_returns(self):
        # the deadline only gates *sleeps*: an attempt that begins
        # before the deadline and succeeds must return normally
        clock = FakeClock()
        policy = self._policy(
            clock,
            max_attempts=10,
            base_delay=1.0,
            max_delay=1.0,
            deadline=2.0,
        )
        outcomes = iter(
            [ReplicationError("down"), ReplicationError("down"), "ok"]
        )

        def operation():
            outcome = next(outcomes)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        assert policy.run(operation) == "ok"
        assert clock.sleeps == [1.0, 1.0]  # exactly at the boundary

    def test_first_attempt_is_free_even_with_tiny_deadline(self):
        # max_attempts=1 never consults the deadline at all: the single
        # attempt's failure must surface as exhaustion, not as a sleep
        clock = FakeClock()
        policy = self._policy(
            clock, max_attempts=1, base_delay=0.0, max_delay=0.0,
            deadline=0.001,
        )

        def operation():
            raise ReplicationError("down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(operation)
        assert info.value.attempts == 1
        assert clock.sleeps == []
