"""Tests for the parser: every construct of the concrete syntax."""

import pytest

from repro.errors import ParseError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.relation import RelationType
from repro.core.txn import NOW
from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.lang.parser import (
    parse_command,
    parse_expression,
    parse_sentence,
)
from repro.snapshot.attributes import INTEGER, STRING
from repro.snapshot.predicates import And, Comparison, Not, Or
from repro.snapshot.state import SnapshotState


class TestCommands:
    def test_define_relation(self):
        command = parse_command("define_relation(faculty, rollback)")
        assert command == DefineRelation("faculty", RelationType.ROLLBACK)

    @pytest.mark.parametrize(
        "name,rtype",
        [
            ("snapshot", RelationType.SNAPSHOT),
            ("rollback", RelationType.ROLLBACK),
            ("historical", RelationType.HISTORICAL),
            ("temporal", RelationType.TEMPORAL),
        ],
    )
    def test_all_relation_types(self, name, rtype):
        command = parse_command(f"define_relation(r, {name})")
        assert command.rtype is rtype

    def test_modify_state(self):
        command = parse_command(
            'modify_state(r, state (k: integer) { (1), (2) })'
        )
        assert isinstance(command, ModifyState)
        assert command.identifier == "r"
        assert isinstance(command.expression, Const)

    def test_sentence_splits_on_semicolons(self):
        commands = parse_sentence(
            "define_relation(a, rollback); define_relation(b, snapshot);"
        )
        assert len(commands) == 2

    def test_garbage_command_raises(self):
        with pytest.raises(ParseError):
            parse_command("explode(r)")

    def test_bad_type_raises(self):
        with pytest.raises(ParseError):
            parse_command("define_relation(r, bitemporal)")


class TestConstants:
    def test_snapshot_constant(self):
        e = parse_expression(
            'state (name: string, age: integer) { ("ann", 30), ("bob", 40) }'
        )
        assert isinstance(e, Const)
        state = e.state
        assert isinstance(state, SnapshotState)
        assert state.schema.names == ("name", "age")
        assert state.schema["name"].domain is STRING
        assert state.schema["age"].domain is INTEGER
        assert len(state) == 2

    def test_empty_snapshot_constant(self):
        e = parse_expression("state (k: integer) { }")
        assert e.state.is_empty()

    def test_default_domain_is_any(self):
        e = parse_expression("state (k) { (1) }")
        assert e.state.schema["k"].domain.name == "any"

    def test_boolean_literals(self):
        e = parse_expression("state (flag: boolean) { (true), (false) }")
        assert len(e.state) == 2

    def test_historical_constant_via_at(self):
        e = parse_expression(
            'state (k: integer) { (1) @ [0, 5) + [8, forever) }'
        )
        state = e.state
        assert isinstance(state, HistoricalState)
        (t,) = state.tuples
        assert t.valid_time == PeriodSet([(0, 5), (8, FOREVER)])

    def test_historical_keyword_forces_historical(self):
        e = parse_expression("historical state (k: integer) { (1) }")
        state = e.state
        assert isinstance(state, HistoricalState)
        (t,) = state.tuples
        assert t.valid_time == PeriodSet.always()

    def test_row_arity_checked(self):
        with pytest.raises(ParseError, match="degree"):
            parse_expression("state (k: integer, v: integer) { (1) }")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("state (k: blob) { }")


class TestOperators:
    def test_union_minus_times_precedence(self):
        # times binds tighter than minus binds tighter than union
        e = parse_expression(
            "state (a) { } union state (b) { } minus state (c) { } "
            "times state (d) { }"
        )
        assert isinstance(e, Union)
        assert isinstance(e.right, Difference)
        assert isinstance(e.right.right, Product)

    def test_parentheses_override(self):
        e = parse_expression(
            "(state (a) { } union state (b) { }) times state (c) { }"
        )
        assert isinstance(e, Product)
        assert isinstance(e.left, Union)

    def test_project(self):
        e = parse_expression("project [a, b] (state (a, b, c) { })")
        assert isinstance(e, Project)
        assert e.names == ("a", "b")

    def test_select_with_predicate(self):
        e = parse_expression(
            'select [a = 1 and not (b < 2 or c != "x")] (state (a, b, c) { })'
        )
        assert isinstance(e, Select)
        assert isinstance(e.predicate, And)
        assert isinstance(e.predicate.right, Not)
        assert isinstance(e.predicate.right.operand, Or)

    def test_rollback_with_integer(self):
        e = parse_expression("rollback(faculty, 17)")
        assert e == Rollback("faculty", 17)

    def test_rollback_with_now(self):
        e = parse_expression("rollback(faculty, now)")
        assert e == Rollback("faculty", NOW)

    def test_derive_full_form(self):
        e = parse_expression(
            "derive [valid overlaps periods [3, 9) ; "
            "intersect(valid, periods [3, 9))] "
            "(historical state (k) { (1) @ [0, 5) })"
        )
        assert isinstance(e, Derive)
        assert e.predicate is not None
        assert e.expression is not None

    def test_derive_empty_parts(self):
        e = parse_expression(
            "derive [ ; ] (historical state (k) { (1) @ [0, 5) })"
        )
        assert e.predicate is None
        assert e.expression is None

    def test_derive_g_connectives(self):
        e = parse_expression(
            "derive [validat(valid, 3) and nonempty(first(valid)) ; ] "
            "(historical state (k) { (1) @ [0, 5) })"
        )
        assert e.predicate is not None

    def test_v_expression_forms(self):
        e = parse_expression(
            "derive [ ; union(shift(last(valid), 1), "
            "extend(first(valid), valid))] "
            "(historical state (k) { (1) @ [0, 5) })"
        )
        assert e.expression is not None

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("rollback(r, now) rollback(s, now)")

    def test_comparator_required_in_predicate(self):
        with pytest.raises(ParseError, match="comparator"):
            parse_expression("select [a] (state (a) { })")


class TestEndToEnd:
    def test_paper_style_program(self):
        commands = parse_sentence(
            """
            -- build a tiny rollback database
            define_relation(faculty, rollback);
            modify_state(faculty,
                state (name: string, rank: string)
                      { ("merrie", "assistant") });
            modify_state(faculty,
                rollback(faculty, now)
                union state (name: string, rank: string)
                      { ("tom", "full") })
            """
        )
        from repro.core.sentences import run
        from repro.core.expressions import Rollback as R

        db = run(commands)
        assert db.transaction_number == 3
        assert len(R("faculty", NOW).evaluate(db)) == 2
        assert len(R("faculty", 2).evaluate(db)) == 1
