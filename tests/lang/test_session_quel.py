"""Tests for Session.quel: Quel statements executed interactively,
dispatched by relation kind."""

import pytest

from repro.errors import TranslationError
from repro.historical.periods import PeriodSet
from repro.lang.session import Session
from repro.snapshot.tuples import SnapshotTuple


@pytest.fixture
def session():
    s = Session()
    s.execute(
        """
        define_relation(emp, rollback);
        modify_state(emp,
            state (name: string, salary: integer) { ("ann", 50) });
        define_relation(chairs, temporal);
        modify_state(chairs,
            state (who: string) { ("ann") @ [0, 10) });
        """
    )
    return s


class TestSnapshotQuel:
    def test_append(self, session):
        session.quel('append to emp (name = "bob", salary = 70)')
        assert len(session.current_state("emp")) == 2

    def test_replace(self, session):
        session.quel('replace emp (salary = 60) where name = "ann"')
        assert session.current_state("emp").sorted_rows() == [
            ("ann", 60)
        ]

    def test_delete(self, session):
        session.quel("delete from emp where salary < 100")
        assert session.current_state("emp").is_empty()

    def test_retrieve(self, session):
        session.quel('append to emp (name = "bob", salary = 70)')
        result = session.quel(
            "retrieve (name) from emp where salary > 60"
        )
        assert result.sorted_rows() == [("bob",)]

    def test_retrieve_as_of(self, session):
        session.quel('replace emp (salary = 99) where name = "ann"')
        # txn 4 was the pre-replace database (setup used txns 1..4)
        result = session.quel(
            "retrieve (salary) from emp as of 2"
        )
        assert result.sorted_rows() == [(50,)]

    def test_updates_advance_transaction(self, session):
        before = session.transaction_number
        session.quel('append to emp (name = "cat", salary = 10)')
        assert session.transaction_number == before + 1


class TestTemporalQuel:
    def test_temporal_append(self, session):
        session.quel('append to chairs (who = "bob") valid [5, 20)')
        state = session.current_state("chairs")
        assert state.valid_time_of(
            SnapshotTuple(state.schema, ["bob"])
        ) == PeriodSet([(5, 20)])

    def test_terminate(self, session):
        session.quel('terminate chairs where who = "ann" at 5')
        state = session.current_state("chairs")
        assert state.valid_time_of(
            SnapshotTuple(state.schema, ["ann"])
        ) == PeriodSet([(0, 5)])

    def test_delete_dispatches_to_temporal(self, session):
        session.quel('delete from chairs where who = "ann"')
        assert session.current_state("chairs").is_empty()

    def test_plain_append_on_temporal_rejected(self, session):
        with pytest.raises(TranslationError, match="valid"):
            session.quel('append to chairs (who = "bob")')

    def test_retrieve_when(self, session):
        result = session.quel(
            "retrieve (who) from chairs when 5"
        )
        assert {t["who"] for t in result.tuples} == {"ann"}


class TestDispatchErrors:
    def test_unknown_relation(self, session):
        with pytest.raises(TranslationError, match="not defined"):
            session.quel('append to ghosts (who = "x", y = 1)')

    def test_catalog_reflects_current_schemas(self, session):
        catalog = session.catalog()
        assert set(catalog) == {"emp", "chairs"}
        assert catalog["emp"].names == ("name", "salary")
