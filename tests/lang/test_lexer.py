"""Tests for the lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType


def types(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_punctuation(self):
        assert types("( ) [ ] { } , ; : @ +")[:-1] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.COMMA,
            TokenType.SEMICOLON,
            TokenType.COLON,
            TokenType.AT,
            TokenType.PLUS,
        ]

    def test_comparators(self):
        assert values("= != < <= > >=") == [
            "=",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ]

    def test_integers(self):
        assert values("0 42 -7") == [0, 42, -7]

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("rollback faculty union dept")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENT
        assert tokens[2].type is TokenType.KEYWORD
        assert tokens[3].type is TokenType.IDENT

    def test_identifier_with_underscores_and_digits(self):
        (token, _) = tokenize("my_rel_2")
        assert token.type is TokenType.IDENT
        assert token.value == "my_rel_2"


class TestStrings:
    def test_simple(self):
        assert values('"hello"') == ["hello"]

    def test_escapes(self):
        assert values(r'"a\"b\\c\nd\te"') == ['a"b\\c\nd\te']

    def test_unterminated_raises(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('"oops')

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestCommentsAndErrors:
    def test_comments_skipped(self):
        assert values("42 -- the answer\n7") == [42, 7]

    def test_comment_at_eof(self):
        assert values("42 -- no newline") == [42]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_bang_alone_rejected(self):
        with pytest.raises(LexError):
            tokenize("a ! b")

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestTokenHelpers:
    def test_is_keyword(self):
        (token, _) = tokenize("union")
        assert token.is_keyword("union")
        assert not token.is_keyword("minus")

    def test_equality_ignores_position(self):
        a = Token(TokenType.INT, 5, 0)
        b = Token(TokenType.INT, 5, 10)
        assert a == b
