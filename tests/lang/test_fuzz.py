"""Fuzz tests: arbitrary input must fail with a typed ReproError (or
parse), never with an unrelated exception."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression, parse_sentence
from repro.quel.parser import parse_statement

printable_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=120,
)

# Text biased toward language-looking fragments to reach deeper parser
# states than uniform noise would.
fragments = st.lists(
    st.sampled_from(
        [
            "define_relation", "modify_state", "rollback", "state",
            "select", "project", "derive", "union", "minus", "times",
            "(", ")", "[", "]", "{", "}", ",", ";", "now", "forever",
            '"str"', "42", "-7", "=", "<=", "and", "or", "not", "@",
            "+", "ident", "r1", ":", "integer", "valid", "periods",
            "first", "append", "to", "retrieve", "from", "where",
        ]
    ),
    max_size=25,
).map(" ".join)


@settings(max_examples=200)
@given(printable_text)
def test_lexer_total(text):
    try:
        tokenize(text)
    except ReproError:
        pass


@settings(max_examples=200)
@given(fragments)
def test_expression_parser_total(text):
    try:
        parse_expression(text)
    except ReproError:
        pass


@settings(max_examples=200)
@given(fragments)
def test_sentence_parser_total(text):
    try:
        parse_sentence(text)
    except ReproError:
        pass


@settings(max_examples=200)
@given(fragments)
def test_quel_parser_total(text):
    try:
        parse_statement(text)
    except ReproError:
        pass


@settings(max_examples=100)
@given(printable_text)
def test_parser_total_on_noise(text):
    try:
        parse_sentence(text)
    except ReproError:
        pass
