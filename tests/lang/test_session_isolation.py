"""The ``Session(isolation=...)`` knob: serial (default), si, ssi.

A plain session can host multi-writer MVCC transactions; the language
surface (``execute``/``query``) and the transactional surface
(``begin``/``commit``/``run``) share one authoritative database value.
"""

from __future__ import annotations

import pytest

from repro.concurrency import MVCCManager, TransactionManager
from repro.core.commands import ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.errors import ConcurrencyError
from repro.lang.session import Session
from repro.server.store import ServerStore
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

V = Schema(["v"])


def vs(*values):
    return SnapshotState(V, [(v,) for v in values])


def append(identifier, value):
    return ModifyState(
        identifier, Union(Rollback(identifier), Const(vs(value)))
    )


class TestConstruction:
    def test_default_is_serial(self):
        assert Session().isolation == "serial"

    @pytest.mark.parametrize("level", ["si", "ssi"])
    def test_levels_accepted(self, level):
        assert Session(isolation=level).isolation == level

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="isolation"):
            Session(isolation="read-committed")

    def test_mvcc_requires_plain_session(self, tmp_path):
        with pytest.raises(ValueError, match="serialize writes"):
            Session(durable_dir=str(tmp_path), isolation="si")
        with pytest.raises(ValueError, match="serialize writes"):
            Session(shards=2, isolation="ssi")

    def test_manager_types(self):
        assert isinstance(
            Session(isolation="si").transaction_manager, MVCCManager
        )
        assert isinstance(
            Session().transaction_manager, TransactionManager
        )

    def test_durable_session_has_no_manager(self, tmp_path):
        session = Session(durable_dir=str(tmp_path))
        with pytest.raises(ConcurrencyError, match="commit path"):
            session.transaction_manager
        session.close()


class TestExplicitTransactions:
    @pytest.mark.parametrize("level", ["serial", "si", "ssi"])
    def test_begin_commit_moves_the_session(self, level):
        from repro.core.commands import DefineRelation

        session = Session(isolation=level)
        t = session.begin()
        t.stage(DefineRelation("r", "rollback"))
        t.stage(ModifyState("r", Const(vs("a"))))
        session.commit(t)
        assert session.query("rollback(r, now)") == vs("a")
        assert (
            session.transaction_number
            == session.database.transaction_number
        )

    def test_abort_leaves_database_unchanged(self):
        session = Session(isolation="si")
        session.execute("define_relation(r, rollback)")
        before = session.database
        t = session.begin()
        t.stage(append("r", "x"))
        session.abort(t)
        assert session.database is before

    def test_first_committer_wins_surfaces(self):
        session = Session(isolation="si")
        session.execute("define_relation(r, rollback)")
        first = session.begin()
        second = session.begin()
        first.stage(append("r", "one"))
        second.stage(append("r", "two"))
        session.commit(first)
        with pytest.raises(ConcurrencyError, match="first-committer"):
            session.commit(second)
        assert session.query("rollback(r, now)") == vs("one")

    def test_ssi_aborts_write_skew(self):
        session = Session(isolation="ssi")
        session.execute("define_relation(a, rollback)")
        session.execute("define_relation(b, rollback)")
        t0 = session.begin()
        t0.read(Rollback("b"))
        t0.stage(append("a", "t0"))
        session.commit(t0)
        t1 = session.begin()
        t1.read(Rollback("a"))
        t1.stage(append("b", "t1"))
        session.commit(t1)  # sequential: fine
        # now genuinely concurrent skew
        t2 = session.begin()
        t3 = session.begin()
        t2.read(Rollback("b"))
        t2.stage(append("a", "t2"))
        session.commit(t2)
        t3.read(Rollback("a"))
        t3.stage(append("b", "t3"))
        with pytest.raises(ConcurrencyError, match="ssi"):
            session.commit(t3)

    def test_run_retries_through_conflicts(self):
        session = Session(isolation="si")
        session.execute("define_relation(r, rollback)")
        rigged = {"done": False}

        def body(transaction):
            if not rigged["done"]:
                rigged["done"] = True
                rival = session.begin()
                rival.stage(append("r", "rival"))
                session.commit(rival)
            transaction.read(Rollback("r"))
            transaction.stage(append("r", "mine"))

        session.run(body)
        assert session.query("rollback(r, now)") == vs("rival", "mine")


class TestAutocommitRouting:
    @pytest.mark.parametrize("level", ["si", "ssi"])
    def test_execute_routes_through_the_manager(self, level):
        session = Session(isolation=level)
        session.execute("define_relation(r, rollback)")
        session.execute(
            "modify_state(r, state (v: string) { (\"a\") })"
        )
        manager = session.transaction_manager
        assert manager.commit_count == 2
        assert session.database is manager.database

    def test_serial_execute_and_transactions_share_state(self):
        session = Session()
        session.execute("define_relation(r, rollback)")
        t = session.begin()  # lazily creates the serial manager
        t.stage(append("r", "txn"))
        session.commit(t)
        # ...and autocommitted writes keep flowing through it
        session.execute(
            "modify_state(r, rollback(r, now))"
        )
        assert session.database is session.transaction_manager.database


class TestServerStoreIsolation:
    def test_default_serial(self):
        store = ServerStore()
        assert store.isolation == "serial"
        assert isinstance(store.manager, TransactionManager)

    @pytest.mark.parametrize("level", ["si", "ssi"])
    def test_mvcc_write_path(self, level):
        store = ServerStore(isolation=level)
        assert store.isolation == level
        assert isinstance(store.manager, MVCCManager)
        assert store.manager.isolation == level

    def test_mvcc_requires_plain_backing(self, tmp_path):
        with pytest.raises(ValueError, match="serialize writes"):
            ServerStore(durable_dir=str(tmp_path), isolation="si")
        with pytest.raises(ValueError, match="serialize writes"):
            ServerStore(shards=2, isolation="ssi")
