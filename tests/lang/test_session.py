"""Tests for interactive sessions and the state formatter."""

import pytest

from repro.core.database import EMPTY_DATABASE
from repro.lang.session import Session, format_state
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

PROGRAM = """
define_relation(faculty, rollback);
modify_state(faculty,
    state (name: string, rank: string) { ("merrie", "assistant") });
modify_state(faculty,
    rollback(faculty, now)
    union state (name: string, rank: string) { ("tom", "full") });
"""


class TestSession:
    def test_execute_program(self):
        session = Session()
        session.execute(PROGRAM)
        assert session.transaction_number == 3
        assert len(session.current_state("faculty")) == 2

    def test_incremental_equals_batch(self):
        """Executing commands one at a time equals evaluating the whole
        sentence — compositionality of C."""
        batch = Session()
        batch.execute(PROGRAM)

        incremental = Session()
        for line in [
            "define_relation(faculty, rollback)",
            'modify_state(faculty, state (name: string, rank: string)'
            ' { ("merrie", "assistant") })',
            'modify_state(faculty, rollback(faculty, now) union '
            'state (name: string, rank: string) { ("tom", "full") })',
        ]:
            incremental.execute_command(line)
        assert incremental.database == batch.database

    def test_query_is_side_effect_free(self):
        session = Session()
        session.execute(PROGRAM)
        before = session.database
        session.query("project [name] (rollback(faculty, now))")
        assert session.database == before

    def test_query_result(self):
        session = Session()
        session.execute(PROGRAM)
        result = session.query(
            'select [rank = "full"] (rollback(faculty, now))'
        )
        assert result.sorted_rows() == [("tom", "full")]

    def test_history_trail(self):
        session = Session()
        session.execute(PROGRAM)
        assert session.history[0] == EMPTY_DATABASE
        assert len(session.history) == 4  # empty + 3 commands
        txns = [db.transaction_number for db in session.history]
        assert txns == [0, 1, 2, 3]

    def test_display_table(self):
        session = Session()
        session.execute(PROGRAM)
        text = session.display("faculty")
        assert "faculty" in text
        assert "merrie" in text
        assert "tom" in text

    def test_display_past_state(self):
        session = Session()
        session.execute(PROGRAM)
        text = session.display("faculty", 2)
        assert "merrie" in text
        assert "tom" not in text

    def test_display_fresh_relation(self):
        session = Session()
        session.execute("define_relation(r, rollback)")
        assert "no recorded state" in session.display("r")


class TestFormatState:
    def test_empty_state(self):
        state = SnapshotState.empty(Schema(["a", "b"]))
        text = format_state(state)
        assert "(empty)" in text
        assert "a" in text

    def test_historical_state_shows_valid_column(self):
        from repro.historical.state import HistoricalState

        state = HistoricalState.from_rows(
            Schema(["k"]), [(["x"], [(0, 5)])]
        )
        text = format_state(state)
        assert "valid" in text
        assert "[0, 5)" in text


class TestHistoryLimit:
    def test_default_is_bounded(self):
        session = Session()
        assert session.history_limit == Session.DEFAULT_HISTORY_LIMIT

    def test_trail_is_trimmed_to_limit(self):
        session = Session(history_limit=3)
        session.execute("define_relation(r, rollback)")
        for i in range(10):
            session.execute(
                "modify_state(r, rollback(r, now) union "
                'state (k: integer) { (%d) })' % i
            )
        assert len(session.history) == 3
        # the retained suffix is the most recent databases, newest last
        txns = [db.transaction_number for db in session.history]
        assert txns == [9, 10, 11]
        assert session.history[-1] == session.database

    def test_none_retains_everything(self):
        session = Session(history_limit=None)
        session.execute("define_relation(r, rollback)")
        for i in range(10):
            session.execute(
                "modify_state(r, rollback(r, now) union "
                'state (k: integer) { (%d) })' % i
            )
        assert len(session.history) == 12  # empty + 11 commands

    def test_bounded_trail_is_a_suffix_of_unbounded(self):
        bounded = Session(history_limit=4)
        unbounded = Session(history_limit=None)
        for s in (bounded, unbounded):
            s.execute(PROGRAM)
            s.execute(
                "modify_state(faculty, rollback(faculty, now) union "
                'state (name: string, rank: string) { ("amy", "assoc") })'
            )
        assert bounded.history == unbounded.history[-4:]
        assert bounded.database == unbounded.database

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            Session(history_limit=0)
        with pytest.raises(ValueError):
            Session(history_limit=-5)


class TestPlanCache:
    def test_repeat_query_reuses_parsed_expression(self):
        session = Session()
        session.execute(PROGRAM)
        source = "project [name] (rollback(faculty, now))"
        first = session._cached_expression(source)
        assert session._cached_expression(source) is first
        assert session.plan_cache_info()["size"] == 1

    def test_query_results_unchanged_by_caching(self):
        cached = Session()
        uncached = Session(plan_cache_capacity=0)
        for s in (cached, uncached):
            s.execute(PROGRAM)
        source = 'select [rank = "full"] (rollback(faculty, now))'
        for _ in range(3):
            assert (
                cached.query(source).sorted_rows()
                == uncached.query(source).sorted_rows()
            )
        assert cached.plan_cache_info()["size"] == 1
        assert uncached.plan_cache_info()["size"] == 0

    def test_capacity_bounds_cache(self):
        session = Session(plan_cache_capacity=2)
        session.execute(PROGRAM)
        for name in ("name", "rank", "name", "rank"):
            session.query("project [%s] (rollback(faculty, now))" % name)
        session.query("rollback(faculty, now)")
        assert session.plan_cache_info()["size"] == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Session(plan_cache_capacity=-1)

    def test_whitespace_variants_share_one_plan(self):
        """The cache key is the normalized source, so reformatting a
        query must hit the plan compiled for its first spelling."""
        session = Session()
        session.execute(PROGRAM)
        spellings = [
            "project [name] (rollback(faculty, now))",
            "project  [name]  (rollback(faculty,  now))",
            "project [name]\n    (rollback(faculty, now))",
            "  project [name] (rollback(faculty, now))  ",
        ]
        results = [session.query(s).sorted_rows() for s in spellings]
        assert all(rows == results[0] for rows in results)
        info = session.plan_cache_info()
        assert info["size"] == 1
        assert info["misses"] == 1
        assert info["hits"] == len(spellings) - 1

    def test_info_reports_hits_and_misses(self):
        session = Session()
        session.execute(PROGRAM)
        assert session.plan_cache_info()["hits"] == 0
        session.query("rollback(faculty, now)")
        session.query("rollback(faculty, now)")
        session.query("project [rank] (rollback(faculty, now))")
        info = session.plan_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2

    def test_cached_plan_replans_after_new_transaction(self):
        """The cached compiled plan is tagged with the transaction
        number it was planned at; a later modification must re-plan,
        not serve the stale answer."""
        session = Session()
        session.execute(PROGRAM)
        source = "project [name] (rollback(faculty, now))"
        before = session.query(source).sorted_rows()
        session.execute(
            "modify_state(faculty, rollback(faculty, now) union "
            'state (name: string, rank: string) { ("zoe", "assoc") })'
        )
        after = session.query(source).sorted_rows()
        assert before != after
        assert ("zoe",) in after


class TestExplain:
    def test_explain_shows_plans_and_costs(self):
        session = Session()
        session.execute(PROGRAM)
        text = session.explain(
            'select [rank = "full"] (project [name, rank] '
            "(rollback(faculty, now)))"
        )
        assert text.startswith("plan  (cost ≈")
        assert "optimized" in text
        assert "Rollback[faculty" in text

    def test_explain_reports_accepted_rewrite(self):
        session = Session()
        session.execute(PROGRAM)
        # σ over ∪ splits into σ ∪ σ and prunes; the trace shows the
        # cost drop that justified keeping the rewrite
        text = session.explain(
            'select [rank = "full"] (rollback(faculty, now) union '
            "rollback(faculty, now))"
        )
        assert "rewrite" in text
        assert "kept" in text or "no cost-reducing rewrite" in text


class TestExecuteMany:
    BATCH = [
        "define_relation(faculty, rollback)",
        'modify_state(faculty, state (name: string, rank: string)'
        ' { ("merrie", "assistant") })',
        'modify_state(faculty, rollback(faculty, now) union '
        'state (name: string, rank: string) { ("tom", "full") })',
    ]

    def test_batch_equals_one_at_a_time(self):
        batched = Session()
        batched.execute_many(self.BATCH)
        sequential = Session()
        for line in self.BATCH:
            sequential.execute_command(line)
        assert batched.database == sequential.database
        assert batched.transaction_number == 3

    def test_sentence_items_are_split(self):
        session = Session()
        session.execute_many([PROGRAM])  # one multi-command sentence
        assert session.transaction_number == 3

    def test_durable_group_commit_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "db")
        session = Session(directory)
        session.execute_many(self.BATCH)
        session.close()
        reopened = Session(directory)
        assert reopened.transaction_number == 3
        assert len(reopened.current_state("faculty")) == 2
        reopened.close()
