"""Tests for interactive sessions and the state formatter."""

import pytest

from repro.core.database import EMPTY_DATABASE
from repro.lang.session import Session, format_state
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

PROGRAM = """
define_relation(faculty, rollback);
modify_state(faculty,
    state (name: string, rank: string) { ("merrie", "assistant") });
modify_state(faculty,
    rollback(faculty, now)
    union state (name: string, rank: string) { ("tom", "full") });
"""


class TestSession:
    def test_execute_program(self):
        session = Session()
        session.execute(PROGRAM)
        assert session.transaction_number == 3
        assert len(session.current_state("faculty")) == 2

    def test_incremental_equals_batch(self):
        """Executing commands one at a time equals evaluating the whole
        sentence — compositionality of C."""
        batch = Session()
        batch.execute(PROGRAM)

        incremental = Session()
        for line in [
            "define_relation(faculty, rollback)",
            'modify_state(faculty, state (name: string, rank: string)'
            ' { ("merrie", "assistant") })',
            'modify_state(faculty, rollback(faculty, now) union '
            'state (name: string, rank: string) { ("tom", "full") })',
        ]:
            incremental.execute_command(line)
        assert incremental.database == batch.database

    def test_query_is_side_effect_free(self):
        session = Session()
        session.execute(PROGRAM)
        before = session.database
        session.query("project [name] (rollback(faculty, now))")
        assert session.database == before

    def test_query_result(self):
        session = Session()
        session.execute(PROGRAM)
        result = session.query(
            'select [rank = "full"] (rollback(faculty, now))'
        )
        assert result.sorted_rows() == [("tom", "full")]

    def test_history_trail(self):
        session = Session()
        session.execute(PROGRAM)
        assert session.history[0] == EMPTY_DATABASE
        assert len(session.history) == 4  # empty + 3 commands
        txns = [db.transaction_number for db in session.history]
        assert txns == [0, 1, 2, 3]

    def test_display_table(self):
        session = Session()
        session.execute(PROGRAM)
        text = session.display("faculty")
        assert "faculty" in text
        assert "merrie" in text
        assert "tom" in text

    def test_display_past_state(self):
        session = Session()
        session.execute(PROGRAM)
        text = session.display("faculty", 2)
        assert "merrie" in text
        assert "tom" not in text

    def test_display_fresh_relation(self):
        session = Session()
        session.execute("define_relation(r, rollback)")
        assert "no recorded state" in session.display("r")


class TestFormatState:
    def test_empty_state(self):
        state = SnapshotState.empty(Schema(["a", "b"]))
        text = format_state(state)
        assert "(empty)" in text
        assert "a" in text

    def test_historical_state_shows_valid_column(self):
        from repro.historical.state import HistoricalState

        state = HistoricalState.from_rows(
            Schema(["k"]), [(["x"], [(0, 5)])]
        )
        text = format_state(state)
        assert "valid" in text
        assert "[0, 5)" in text
