"""Round-trip tests: parse(format(ast)) == ast."""

import pytest

from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.commands import DefineRelation, ModifyState, Sequence
from repro.core.txn import NOW
from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.historical.predicates import Overlaps, ValidAt
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import (
    Extend,
    First,
    Intersect,
    Last,
    Shift,
    TemporalConstant,
    ValidTime,
)
from repro.lang.ast_printer import format_command, format_expression
from repro.lang.parser import parse_command, parse_expression
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    TruePredicate,
    attr,
    lit,
)
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER), Attribute("v", STRING)])


def snapshot_const(*rows):
    return Const(SnapshotState(KV, [list(r) for r in rows]))


def historical_const():
    return Const(
        HistoricalState.from_rows(
            KV,
            [
                ([1, "a"], [(0, 5), (8, FOREVER)]),
                ([2, "b"], [(3, 7)]),
            ],
        )
    )


ROUND_TRIP_EXPRESSIONS = [
    snapshot_const((1, "a"), (2, "b")),
    historical_const(),
    Union(snapshot_const((1, "a")), snapshot_const((2, "b"))),
    Difference(snapshot_const((1, "a")), snapshot_const((2, "b"))),
    Product(
        snapshot_const((1, "a")),
        Const(SnapshotState(Schema(["x"]), [["q"]])),
    ),
    Project(snapshot_const((1, "a")), ["k"]),
    Select(
        snapshot_const((1, "a")),
        And(
            Comparison(attr("k"), ">=", lit(1)),
            Or(
                Comparison(attr("v"), "=", lit("a")),
                Not(Comparison(attr("v"), "!=", lit("b"))),
            ),
        ),
    ),
    Select(snapshot_const((1, "a")), TruePredicate()),
    Select(snapshot_const((1, "a")), FalsePredicate()),
    Rollback("faculty", NOW),
    Rollback("faculty", 42),
    Derive(
        historical_const(),
        predicate=Overlaps(
            ValidTime(), TemporalConstant(PeriodSet([(3, 9)]))
        ),
        expression=Intersect(
            ValidTime(), TemporalConstant(PeriodSet([(3, 9)]))
        ),
    ),
    Derive(
        historical_const(),
        predicate=ValidAt(First(ValidTime()), 2),
        expression=Shift(Last(ValidTime()), 3),
    ),
    Derive(
        historical_const(),
        expression=Extend(ValidTime(), TemporalConstant(PeriodSet([(9, 12)]))),
    ),
    Union(
        Select(Rollback("r", 3), Comparison(attr("k"), "<", lit(9))),
        Project(Rollback("r", NOW), ["k", "v"]),
    ),
]


@pytest.mark.parametrize(
    "expression", ROUND_TRIP_EXPRESSIONS, ids=lambda e: repr(e)[:50]
)
def test_expression_round_trip(expression):
    text = format_expression(expression)
    assert parse_expression(text) == expression


ROUND_TRIP_COMMANDS = [
    DefineRelation("faculty", "rollback"),
    DefineRelation("h", "temporal"),
    ModifyState("faculty", snapshot_const((1, "a"))),
    ModifyState(
        "faculty", Union(Rollback("faculty", NOW), snapshot_const((2, "b")))
    ),
]


@pytest.mark.parametrize(
    "command", ROUND_TRIP_COMMANDS, ids=lambda c: repr(c)[:50]
)
def test_command_round_trip(command):
    text = format_command(command)
    assert parse_command(text) == command


def test_sequence_formats_with_semicolon():
    program = Sequence(
        DefineRelation("r", "rollback"),
        ModifyState("r", snapshot_const((1, "a"))),
    )
    text = format_command(program)
    assert ";" in text
    from repro.lang.parser import parse_sentence

    commands = parse_sentence(text)
    assert commands == [program.first, program.second]
