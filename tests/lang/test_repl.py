"""Tests for the REPL, driven through StringIO streams."""

import io

import pytest

from repro.lang.repl import Repl, run_repl


def drive(lines):
    """Feed lines to a fresh Repl; return its full output."""
    out = io.StringIO()
    repl = Repl(out)
    for line in lines:
        alive = repl.feed(line)
        if not alive:
            break
    return out.getvalue(), repl


class TestStatements:
    def test_command_then_query(self):
        output, _ = drive(
            [
                "define_relation(r, rollback);",
                'modify_state(r, state (k: integer) { (1), (2) });',
                "rollback(r, now);",
            ]
        )
        assert "ok (txn 1)" in output
        assert "ok (txn 2)" in output
        assert "1" in output and "2" in output

    def test_multiline_statement(self):
        output, _ = drive(
            [
                "define_relation(r, rollback);",
                "modify_state(r,",
                "  state (k: integer)",
                "  { (7) });",
                "rollback(r, now);",
            ]
        )
        assert "7" in output

    def test_error_reported_not_fatal(self):
        output, repl = drive(
            [
                "select [oops] (nope);",
                "define_relation(r, rollback);",
            ]
        )
        assert "error:" in output
        assert "ok (txn 1)" in output
        assert repl.session.transaction_number == 1

    def test_empty_set_result(self):
        output, _ = drive(
            [
                "define_relation(r, rollback);",
                "rollback(r, now);",
            ]
        )
        assert "∅" in output

    def test_blank_lines_ignored(self):
        output, repl = drive(["", "   ", "define_relation(r, rollback);"])
        assert repl.session.transaction_number == 1


class TestMeta:
    def test_txn_and_relations(self):
        output, _ = drive(
            [
                "define_relation(a, rollback);",
                "define_relation(b, temporal);",
                ".txn",
                ".relations",
            ]
        )
        assert "\n2\n" in output
        assert "a: rollback" in output
        assert "b: temporal" in output

    def test_relations_when_empty(self):
        output, _ = drive([".relations"])
        assert "(no relations)" in output

    def test_help(self):
        output, _ = drive([".help"])
        assert "define_relation" in output
        assert ".save" in output

    def test_unknown_meta(self):
        output, _ = drive([".frobnicate"])
        assert "unknown meta command" in output

    def test_quit_stops(self):
        output, repl = drive(
            [".quit", "define_relation(r, rollback);"]
        )
        assert repl.session.transaction_number == 0

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "db.json"
        output, _ = drive(
            [
                "define_relation(r, rollback);",
                'modify_state(r, state (k: integer) { (5) });',
                f".save {path}",
            ]
        )
        assert "saved" in output

        output2, repl2 = drive([f".load {path}", "rollback(r, now);"])
        assert "loaded" in output2
        assert "5" in output2
        assert repl2.session.transaction_number == 2

    def test_save_without_path(self):
        output, _ = drive([".save"])
        assert "usage" in output

    def test_load_missing_file(self, tmp_path):
        output, _ = drive([f".load {tmp_path}/none.json"])
        assert "error" in output


class TestColonAliases:
    """Every meta command is also reachable with a ':' prefix — the
    spelling common in other database shells."""

    def test_colon_save_and_load(self, tmp_path):
        path = tmp_path / "db.json"
        output, _ = drive(
            [
                "define_relation(r, rollback);",
                'modify_state(r, state (k: integer) { (7) });',
                f":save {path}",
            ]
        )
        assert "saved" in output

        output2, repl2 = drive([f":load {path}", "rollback(r, now);"])
        assert "loaded" in output2
        assert "7" in output2
        assert repl2.session.transaction_number == 2

    def test_colon_txn_and_relations(self):
        output, _ = drive(
            ["define_relation(r, rollback);", ":txn", ":relations"]
        )
        assert "1" in output
        assert "r: rollback" in output

    def test_colon_help_and_quit(self):
        output, repl = drive([":help", ":quit", ".txn"])
        assert ":save" in output  # help mentions the ':' spelling
        assert "0" not in output.splitlines()[-1]  # .txn never ran

    def test_colon_unknown_is_reported(self):
        output, _ = drive([":frobnicate"])
        assert "unknown meta command" in output


class TestRunRepl:
    def test_banner_and_eof(self):
        stdin = io.StringIO("define_relation(r, rollback);\n")
        stdout = io.StringIO()
        run_repl(stdin, stdout)
        text = stdout.getvalue()
        assert "McKenzie" in text
        assert "ok (txn 1)" in text


class TestRemoteConnection:
    """``.connect`` turns the shell into a wire client; ``.disconnect``
    returns it to the local session."""

    @pytest.fixture
    def server(self):
        from repro.server.server import ServerConfig, ThreadedServer

        with ThreadedServer(ServerConfig(port=0, workers=2)) as handle:
            yield handle

    def test_connect_execute_query_disconnect(self, server):
        output, repl = drive(
            [
                f".connect {server.host}:{server.port}",
                "define_relation(remote, rollback);",
                "modify_state(remote, state (k: integer) { (5) });",
                "rollback(remote, now);",
                ".txn",
                ".disconnect",
                ".txn",
            ]
        )
        assert "connected to" in output
        assert "ok (txn 1)" in output
        assert "ok (txn 2)" in output
        assert "5" in output  # the printed remote relation
        assert "disconnected" in output
        # after disconnect the *local* session (txn 0) answers .txn
        assert output.rstrip().splitlines()[-1] == "0"
        assert not repl.connected

    def test_remote_errors_are_reported_not_fatal(self, server):
        output, repl = drive(
            [
                f".connect {server.host}:{server.port}",
                "rollback(missing, now);",
                "define_relation(r, rollback);",
            ]
        )
        assert "error:" in output
        assert "ok (txn 1)" in output
        assert repl.error_count == 1

    def test_connect_refused_is_reported(self):
        output, repl = drive([".connect 127.0.0.1:1"])
        assert "cannot connect" in output
        assert not repl.connected

    def test_connect_usage_errors(self):
        output, _ = drive([".connect", ".connect nocolon", ".connect h:x"])
        assert output.count("usage: .connect") >= 1
        assert "bad port" in output

    def test_disconnect_when_not_connected(self):
        output, _ = drive([".disconnect"])
        assert "not connected" in output

    def test_colon_connect_alias(self, server):
        output, _ = drive(
            [f":connect {server.host}:{server.port}", ":disconnect"]
        )
        assert "connected to" in output
        assert "disconnected" in output
