"""Shared fixtures and hypothesis strategies for the test suite.

Seed discipline for every randomized test (see ``docs/testing.md``):
one *run seed* is chosen per pytest run — from ``REPRO_TEST_SEED`` when
set, otherwise fresh from the system RNG — and printed in the report
header.  The ``test_seed`` fixture derives a per-test seed from it, and
any failing test that used ``test_seed`` gets a "reproduce with" section
appended to its failure report, so no randomized flake is ever
unreproducible.
"""

from __future__ import annotations

import os
import random
import zlib

import pytest
from hypothesis import strategies as st

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const
from repro.core.sentences import run
from repro.historical.chronons import FOREVER
from repro.historical.intervals import Interval
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

# ---------------------------------------------------------------------------
# seed discipline
# ---------------------------------------------------------------------------

#: The run seed: every randomized test derives its RNG from this one
#: number, so exporting ``REPRO_TEST_SEED=<printed value>`` replays the
#: entire run's randomness.
RUN_SEED: int = (
    int(os.environ["REPRO_TEST_SEED"])
    if os.environ.get("REPRO_TEST_SEED")
    else random.SystemRandom().randrange(2**31)
)


def derive_seed(run_seed: int, nodeid: str) -> int:
    """A per-test seed: the run seed folded with a stable hash of the
    test's node id, so tests stay independent of collection order."""
    return run_seed ^ zlib.crc32(nodeid.encode("utf-8"))


def pytest_report_header(config) -> str:
    return (
        f"repro run seed: {RUN_SEED} "
        f"(reproduce with REPRO_TEST_SEED={RUN_SEED})"
    )


@pytest.fixture
def test_seed(request) -> int:
    """This test's seed, derived from the run seed and the test's node
    id.  Failures stamp it into the report (see the hookwrapper below)."""
    return derive_seed(RUN_SEED, request.node.nodeid)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    if "test_seed" not in getattr(item, "fixturenames", ()):
        return
    seed = derive_seed(RUN_SEED, item.nodeid)
    report.sections.append(
        (
            "reproduction seed",
            f"this test drew its randomness from seed {seed}; rerun "
            f"the whole suite identically with "
            f"REPRO_TEST_SEED={RUN_SEED}, or pass seed={seed} to the "
            f"failing generator directly",
        )
    )


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def faculty_schema() -> Schema:
    """The example schema used throughout the paper-flavored tests."""
    return Schema(
        [Attribute("name", STRING), Attribute("rank", STRING)]
    )


@pytest.fixture
def kv_schema() -> Schema:
    """A small integer key/value schema."""
    return Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


@pytest.fixture
def faculty_states(faculty_schema):
    """Three successive snapshot states of the faculty relation."""
    s1 = SnapshotState(faculty_schema, [["merrie", "assistant"]])
    s2 = SnapshotState(
        faculty_schema,
        [["merrie", "assistant"], ["tom", "full"]],
    )
    s3 = SnapshotState(
        faculty_schema,
        [["merrie", "associate"], ["tom", "full"]],
    )
    return [s1, s2, s3]


@pytest.fixture
def rollback_db(faculty_schema, faculty_states):
    """A database with one rollback relation holding three states
    (at transactions 2, 3, 4; define_relation commits at 1)."""
    commands = [DefineRelation("faculty", "rollback")]
    commands += [
        ModifyState("faculty", Const(state)) for state in faculty_states
    ]
    return run(commands)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

#: Small integer chronons for interval endpoints.
chronons = st.integers(min_value=0, max_value=60)


@st.composite
def intervals(draw) -> Interval:
    """Random bounded or unbounded half-open intervals."""
    start = draw(st.integers(min_value=0, max_value=50))
    if draw(st.booleans()):
        length = draw(st.integers(min_value=1, max_value=30))
        return Interval(start, start + length)
    return Interval(start, FOREVER)


@st.composite
def period_sets(draw, max_intervals: int = 4) -> PeriodSet:
    """Random (possibly empty) period sets."""
    pieces = draw(
        st.lists(intervals(), min_size=0, max_size=max_intervals)
    )
    # At most one unbounded run survives canonicalization anyway.
    return PeriodSet(pieces)


@st.composite
def nonempty_period_sets(draw, max_intervals: int = 4) -> PeriodSet:
    pieces = draw(
        st.lists(intervals(), min_size=1, max_size=max_intervals)
    )
    return PeriodSet(pieces)


#: Rows for the k/v schema.
kv_rows = st.tuples(
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=4),
)


@st.composite
def kv_states(draw, max_rows: int = 8) -> SnapshotState:
    """Random snapshot states over the k/v schema."""
    schema = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
    rows = draw(st.lists(kv_rows, min_size=0, max_size=max_rows))
    return SnapshotState(schema, [list(r) for r in rows])


@st.composite
def kv_historical_states(draw, max_rows: int = 6) -> HistoricalState:
    """Random historical states over the k/v schema."""
    schema = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
    rows = draw(st.lists(kv_rows, min_size=0, max_size=max_rows))
    tuples = []
    for row in rows:
        periods = draw(nonempty_period_sets())
        tuples.append(
            HistoricalTuple(list(row), periods, schema=schema)
        )
    return HistoricalState(schema, tuples)
