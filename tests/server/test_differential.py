"""Concurrent clients vs the in-process Session oracle.

Each client replays a seeded, namespaced :class:`SentenceWorkload`
against the shared server while other clients hammer it concurrently;
namespacing makes every client's query results a pure function of its
own schedule, so the assertion is strict: every printed relation must be
**byte-identical** to what a lone in-process :class:`Session` answers
for the same schedule.  Seeds derive from the suite's run seed, so any
divergence is reproducible from the printed ``REPRO_TEST_SEED``."""

from __future__ import annotations

import threading

import pytest

from repro.lang.session import Session
from repro.server.client import ReproClient
from repro.server.loadgen import oracle_digests
from repro.server.server import ServerConfig, ThreadedServer
from repro.server.store import render_state
from repro.workloads.sentences import EXECUTE, QUERY, SentenceWorkload


@pytest.fixture
def server():
    config = ServerConfig(port=0, workers=4, queue_high=256)
    with ThreadedServer(config) as handle:
        yield handle


def _replay_through_wire(server, workload):
    """One client's run: every query's printed text, in order."""
    texts = []
    txns = []
    with ReproClient(server.host, server.port, timeout=60.0) as client:
        for kind, source in workload.items():
            if kind == EXECUTE:
                txns.append(client.execute(source))
            else:
                texts.append(client.query(source))
    return texts, txns


def _oracle_texts(workload):
    session = Session()
    texts = []
    for kind, source in workload.items():
        if kind == EXECUTE:
            session.execute(source)
        else:
            texts.append(render_state(session.query(source)))
    return texts


def test_single_client_byte_identical(server, test_seed):
    workload = SentenceWorkload(
        seed=test_seed % 2**31, namespace="solo", length=30
    )
    texts, txns = _replay_through_wire(server, workload)
    assert texts == _oracle_texts(workload)
    assert txns == sorted(txns)


def test_concurrent_clients_byte_identical(server, test_seed):
    """8 threads × 25 sentences, one shared database, zero divergence."""
    clients = 8
    workloads = [
        SentenceWorkload(
            seed=(test_seed + index) % 2**31,
            namespace=f"c{index}",
            length=25,
            read_fraction=0.6,
        )
        for index in range(clients)
    ]
    results: "list[tuple]" = [None] * clients
    errors: "list[Exception]" = []

    def run(index):
        try:
            results[index] = _replay_through_wire(
                server, workloads[index]
            )
        except Exception as error:  # pragma: no cover - reported below
            errors.append(error)

    threads = [
        threading.Thread(target=run, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    for index, workload in enumerate(workloads):
        texts, txns = results[index]
        assert texts == _oracle_texts(workload), (
            f"client {index} diverged from the oracle"
        )
        # global commit order is nondeterministic; per-client txns
        # must still be strictly monotonic
        assert txns == sorted(txns) and len(set(txns)) == len(txns)


def test_concurrent_clients_against_durable_backing(tmp_path, test_seed):
    """The same zero-divergence property when every write goes through
    the WAL."""
    config = ServerConfig(
        port=0,
        workers=4,
        queue_high=256,
        durable_dir=str(tmp_path / "db"),
        fsync="batch(64, 100)",
    )
    clients = 4
    with ThreadedServer(config) as server:
        workloads = [
            SentenceWorkload(
                seed=(test_seed ^ (index * 977)) % 2**31,
                namespace=f"d{index}",
                length=12,
            )
            for index in range(clients)
        ]
        results: "list[tuple]" = [None] * clients
        errors: "list[Exception]" = []

        def run(index):
            try:
                results[index] = _replay_through_wire(
                    server, workloads[index]
                )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        for index, workload in enumerate(workloads):
            texts, _ = results[index]
            assert texts == _oracle_texts(workload)


def test_oracle_digests_match_oracle_texts(test_seed):
    """The loadgen digest oracle and the full-text oracle agree — the
    digests the driver compares are digests of exactly these texts."""
    import hashlib

    workload = SentenceWorkload(
        seed=test_seed % 2**31, namespace="x", length=20
    )
    digests, texts = oracle_digests(workload)
    assert digests == [
        hashlib.sha256(t.encode("utf-8")).hexdigest()[:24] for t in texts
    ]
    assert len(digests) == sum(
        1 for kind, _ in workload.items() if kind == QUERY
    )
