"""The multi-process load driver: picklability, reporting, and the
200-concurrent-client acceptance run.

The full-scale run is the PR's acceptance criterion: 4 spawned
processes × 50 asyncio clients — 200 genuinely concurrent connections —
replay seeded workloads through real sockets and must finish with
**zero divergence** from the in-process oracle, with any overload shed
(``queue_full`` + client backoff) rather than hung."""

from __future__ import annotations

import pickle

import pytest

from repro.server.loadgen import (
    ClientRecord,
    DriverConfig,
    DriverReport,
    client_workload,
    drive_clients,
    driver_seed_from_env,
    oracle_digests,
    run_driver,
)
from repro.server.server import ServerConfig, ThreadedServer


class TestConfig:
    def test_round_trips_through_pickle(self):
        config = DriverConfig(
            port=1234, processes=3, clients_per_process=7, seed=42
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.total_clients == 21

    def test_client_seeds_are_distinct_and_deterministic(self):
        config = DriverConfig(processes=8, clients_per_process=32, seed=5)
        seeds = {
            config.client_seed(p, c)
            for p in range(config.processes)
            for c in range(config.clients_per_process)
        }
        assert len(seeds) == config.total_clients
        assert config.client_seed(3, 9) == DriverConfig(
            processes=8, clients_per_process=32, seed=5
        ).client_seed(3, 9)

    def test_client_workloads_namespaced_disjointly(self):
        config = DriverConfig(seed=1, relations=2)
        a = client_workload(config, 0, 1)
        b = client_workload(config, 1, 0)
        names_a = {a.relation(i) for i in range(a.relations)}
        names_b = {b.relation(i) for i in range(b.relations)}
        assert not names_a & names_b

    def test_seed_env_discipline(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SEED", raising=False)
        assert driver_seed_from_env(7) == 7
        monkeypatch.setenv("REPRO_TEST_SEED", "12345")
        assert driver_seed_from_env(7) == 12345


class TestReport:
    def _report(self, record: ClientRecord) -> DriverReport:
        return DriverReport(
            config=DriverConfig(seed=9),
            clients=[record],
            wall_seconds=1.0,
        )

    def test_verify_flags_divergence_with_seed(self):
        record = ClientRecord(0, 0, query_digests=["bogus"])
        divergences = self._report(record).verify()
        assert divergences
        assert "seed=9" in divergences[0]

    def test_verify_flags_errors_and_nonmonotonic_txns(self):
        record = ClientRecord(0, 0, errors=["boom"])
        assert "errors" in self._report(record).verify()[0]
        workload = client_workload(DriverConfig(seed=9), 0, 0)
        digests, _ = oracle_digests(workload)
        record = ClientRecord(0, 0, query_digests=digests, txns=[5, 3])
        assert "monotonic" in self._report(record).verify()[0]

    def test_verify_accepts_the_oracle_itself(self):
        workload = client_workload(DriverConfig(seed=9), 0, 0)
        digests, _ = oracle_digests(workload)
        record = ClientRecord(0, 0, query_digests=digests, txns=[1, 2])
        assert self._report(record).verify() == []


class TestSingleProcessDrive:
    def test_inline_drive_zero_divergence(self, test_seed):
        """processes=1 runs in-process — the cheap smoke of the full
        stack (real sockets, concurrent asyncio clients, oracle)."""
        with ThreadedServer(
            ServerConfig(port=0, workers=4, queue_high=256)
        ) as server:
            config = DriverConfig(
                host=server.host,
                port=server.port,
                processes=1,
                clients_per_process=10,
                requests_per_client=8,
                seed=test_seed % 2**31,
            )
            report = run_driver(config)
            assert report.verify() == []
            assert report.requests > 0
            assert report.throughput > 0
            percentiles = report.latency_percentiles_ms()
            assert percentiles["p99"] >= percentiles["p50"] >= 0

    def test_drive_clients_entry(self, test_seed):
        with ThreadedServer(ServerConfig(port=0, workers=2)) as server:
            config = DriverConfig(
                host=server.host,
                port=server.port,
                processes=1,
                clients_per_process=3,
                requests_per_client=5,
                seed=test_seed % 2**31,
            )
            records = drive_clients(config, process_index=0)
            assert len(records) == 3
            assert all(not r.errors for r in records)


@pytest.mark.slow
class TestAcceptance:
    def test_200_concurrent_clients_zero_divergence(self, test_seed):
        """The headline run: 4 spawn-processes × 50 clients against one
        server.  Every config crosses a process boundary by pickle, the
        queue is deliberately smaller than the client count so the run
        *must* shed and recover, and the oracle comparison is strict."""
        config_server = ServerConfig(
            port=0,
            workers=8,
            queue_high=64,
            queue_low=32,
            per_connection=4,
        )
        with ThreadedServer(config_server) as server:
            config = DriverConfig(
                host=server.host,
                port=server.port,
                processes=4,
                clients_per_process=50,
                requests_per_client=6,
                cardinality=4,
                seed=test_seed % 2**31,
                shed_retries=16,
                shed_backoff_s=0.02,
            )
            assert config.total_clients == 200
            report = run_driver(config)
            divergences = report.verify()
            assert divergences == [], "\n".join(divergences)
            # every client's full schedule completed despite shedding
            expected_per_client = len(
                client_workload(config, 0, 0).items()
            )
            assert report.requests == 200 * expected_per_client
            metrics = server.metrics()
            # the server stayed bounded: nothing in flight afterwards
            assert metrics["server.queue_depth"] == 0
            assert metrics["server.inflight"] == 0
            # every request was admitted exactly once; every shed the
            # clients saw is a shed the server counted
            assert metrics["server.accepted"] == report.requests
            assert metrics["server.shed"] == report.shed_events
