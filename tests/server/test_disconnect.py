"""The disconnect regressions: a client that vanishes mid-request or
mid-response must never leak an ACTIVE transaction, a worker slot, or an
admission slot.

These are the network-boundary version of PR 1's abort-on-raise fix:
the server's write path runs sentences under the TransactionManager, so
a failing or abandoned request must leave ``outstanding_count == 0``,
and admission's ``depth``/``inflight`` must return to zero however the
connection dies."""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.errors import RemoteError
from repro.server import protocol
from repro.server.client import ReproClient
from repro.server.server import ServerConfig, ThreadedServer
from repro.server.store import ensure_no_leaked_transactions

STATE = "state (k: integer, v: integer) { (1, 10) }"


def _wait_for(handle, predicate, timeout=10.0):
    """Poll the server's metrics until ``predicate(metrics)``."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        metrics = handle.metrics()
        if predicate(metrics):
            return metrics
        time.sleep(0.02)
    raise AssertionError(
        f"server never reached the expected state: {handle.metrics()}"
    )


@pytest.fixture
def server():
    config = ServerConfig(
        port=0, workers=1, queue_high=64, debug_ops=True
    )
    with ThreadedServer(config) as handle:
        yield handle


class TestFailedWrites:
    def test_failing_sentence_leaks_no_active_transaction(self, server):
        """A sentence that raises server-side aborts cleanly — the
        TransactionManager discipline, now load-bearing on the wire."""
        with ReproClient(server.host, server.port) as client:
            assert client.execute("define_relation(r, rollback)") == 1
            with pytest.raises(RemoteError):
                # fails mid-evaluation, after the transaction began
                client.execute("modify_state(r, rollback(missing, now))")
            with pytest.raises(RemoteError):
                client.execute("define_relation(r2, bogus_type)")
            txn = client.execute(f"modify_state(r, {STATE})")
            assert txn == 2  # failed sentences consumed no txn numbers
        server._on_loop(
            lambda: ensure_no_leaked_transactions(server.server.store)
        )


class TestDisconnectMidRequest:
    def test_queued_requests_orphaned_not_executed(self, server):
        """Hang up with work queued: slots release, nothing executes,
        nothing leaks."""
        with ReproClient(server.host, server.port) as setup:
            setup.execute("define_relation(r, rollback)")
            setup.execute(f"modify_state(r, {STATE})")
        sock = socket.create_connection(
            (server.host, server.port), timeout=30
        )
        # a stalled query occupies the single worker, three more queue
        messages = [
            protocol.request(1, "query", "rollback(r, now)", stall_ms=300)
        ] + [
            protocol.request(i, "query", "rollback(r, now)")
            for i in range(2, 5)
        ]
        sock.sendall(
            b"".join(protocol.encode_message(m) for m in messages)
        )
        _wait_for(server, lambda m: m["server.accepted"] >= 6)
        sock.close()  # vanish with one executing and three queued
        metrics = _wait_for(
            server,
            lambda m: m["server.queue_depth"] == 0
            and m["server.inflight"] == 0,
        )
        # the queued three were orphaned without occupying a worker
        assert metrics["server.orphaned"] == 3
        assert metrics["server.connections_open"] == 0
        server._on_loop(
            lambda: ensure_no_leaked_transactions(server.server.store)
        )
        # and the server still serves new clients afterwards
        with ReproClient(server.host, server.port) as client:
            assert client.ping() == 2

    def test_disconnect_during_write_does_not_leak(self, server):
        """Hang up while an execute is queued: whether or not it ran,
        no ACTIVE transaction and no slot survives."""
        with ReproClient(server.host, server.port) as setup:
            setup.execute("define_relation(w, rollback)")
        sock = socket.create_connection(
            (server.host, server.port), timeout=30
        )
        messages = [
            protocol.request(1, "query", "rollback(w, now)", stall_ms=200),
            protocol.request(2, "execute", f"modify_state(w, {STATE})"),
        ]
        sock.sendall(
            b"".join(protocol.encode_message(m) for m in messages)
        )
        _wait_for(server, lambda m: m["server.accepted"] >= 3)
        sock.close()
        _wait_for(
            server,
            lambda m: m["server.queue_depth"] == 0
            and m["server.inflight"] == 0,
        )
        server._on_loop(
            lambda: ensure_no_leaked_transactions(server.server.store)
        )
        # the database is still consistent: either the write was
        # orphaned (txn 1) or completed before the close (txn 2)
        with ReproClient(server.host, server.port) as client:
            assert client.ping() in (1, 2)


class TestDisconnectMidResponse:
    def test_close_before_reading_reply_frees_everything(self, server):
        """Hang up after the worker started but before the response is
        read: the failed response write must not kill the worker."""
        with ReproClient(server.host, server.port) as setup:
            setup.execute("define_relation(r, rollback)")
            setup.execute(f"modify_state(r, {STATE})")
        for _ in range(3):  # repeat: a leaked slot would accumulate
            sock = socket.create_connection(
                (server.host, server.port), timeout=30
            )
            sock.sendall(
                protocol.encode_message(
                    protocol.request(
                        1, "query", "rollback(r, now)", stall_ms=150
                    )
                )
            )
            _wait_for(server, lambda m: m["server.inflight"] == 1)
            # SO_LINGER(0) sends RST: the response write genuinely fails
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            sock.close()
            _wait_for(
                server,
                lambda m: m["server.inflight"] == 0
                and m["server.queue_depth"] == 0,
            )
        metrics = server.metrics()
        assert metrics["server.connections_open"] == 0
        server._on_loop(
            lambda: ensure_no_leaked_transactions(server.server.store)
        )
        # the worker survived all three aborted responses
        with ReproClient(server.host, server.port) as client:
            assert client.query("rollback(r, now)")
