"""The bounded dedup table: exactly-once classification and eviction.

The table's contract is strict: a cached ``(session, seq)`` replays its
reply (*hit*), a recorded seq whose reply was evicted refuses re-execution
(*stale*), and only a genuinely new seq reaches the database (*miss*).
Both bounds evict, neither bound can cause a double-apply.
"""

from __future__ import annotations

import pytest

from repro.errors import RemoteError
from repro.server.client import ReproClient
from repro.server.dedup import DedupTable
from repro.server.server import ServerConfig, ThreadedServer

REPLY = {"status": "ok", "txn": 7}


class TestClassification:
    def test_first_sighting_is_a_miss(self):
        table = DedupTable()
        verdict, cached = table.lookup("s", 1)
        assert (verdict, cached) == ("miss", None)
        assert table.misses == 1

    def test_recorded_seq_replays_as_hit(self):
        table = DedupTable()
        table.record("s", 1, REPLY)
        verdict, cached = table.lookup("s", 1)
        assert verdict == "hit"
        assert cached == REPLY
        assert table.hits == 1

    def test_cached_reply_is_a_copy(self):
        table = DedupTable()
        reply = dict(REPLY)
        table.record("s", 1, reply)
        reply["txn"] = 999
        _, cached = table.lookup("s", 1)
        assert cached["txn"] == 7

    def test_evicted_seq_is_stale_not_miss(self):
        """The double-apply guard: once seq 1's reply leaves the
        window, a retransmission of seq 1 must NOT look like new work."""
        table = DedupTable(max_replies=2)
        for seq in (1, 2, 3):
            table.record("s", seq, {"status": "ok", "txn": seq})
        verdict, cached = table.lookup("s", 1)
        assert (verdict, cached) == ("stale", None)
        assert table.stale_refused == 1
        assert table.replies_evicted == 1

    def test_count_miss_flag_suppresses_double_counting(self):
        table = DedupTable()
        table.lookup("s", 1)
        table.lookup("s", 1, count_miss=False)
        assert table.misses == 1

    def test_sessions_are_independent(self):
        table = DedupTable()
        table.record("a", 1, REPLY)
        assert table.lookup("b", 1)[0] == "miss"
        assert table.lookup("a", 1)[0] == "hit"


class TestEviction:
    def test_reply_window_is_bounded_per_session(self):
        table = DedupTable(max_replies=4)
        for seq in range(1, 11):
            table.record("s", seq, {"status": "ok", "txn": seq})
        assert table.replies == 4
        # the newest four replay; everything older is stale
        for seq in (7, 8, 9, 10):
            assert table.lookup("s", seq)[0] == "hit"
        for seq in (1, 6):
            assert table.lookup("s", seq)[0] == "stale"

    def test_sessions_evict_least_recently_used(self):
        table = DedupTable(max_sessions=2)
        table.record("a", 1, REPLY)
        table.record("b", 1, REPLY)
        table.lookup("a", 1)  # touch a: b is now the LRU session
        table.record("c", 1, REPLY)
        assert table.sessions == 2
        assert table.sessions_evicted == 1
        assert table.lookup("a", 1)[0] == "hit"
        assert table.lookup("b", 1)[0] == "miss"  # forgotten entirely

    def test_record_is_idempotent_per_seq(self):
        """A concurrent duplicate that raced past the lookup must not
        clobber the first definitive reply."""
        table = DedupTable()
        table.record("s", 1, {"status": "ok", "txn": 1})
        table.record("s", 1, {"status": "ok", "txn": 999})
        assert table.lookup("s", 1)[1] == {"status": "ok", "txn": 1}

    def test_bounds_are_validated(self):
        with pytest.raises(ValueError):
            DedupTable(max_sessions=0)
        with pytest.raises(ValueError):
            DedupTable(max_replies=0)

    def test_snapshot_has_the_catalogued_keys(self):
        table = DedupTable()
        table.record("s", 1, REPLY)
        table.lookup("s", 1)
        snapshot = table.snapshot()
        for key in (
            "server.dedup.sessions",
            "server.dedup.replies",
            "server.dedup.hits",
            "server.dedup.misses",
            "server.dedup.stale_refused",
            "server.dedup.sessions_evicted",
            "server.dedup.replies_evicted",
        ):
            assert key in snapshot
        assert snapshot["server.dedup.hits"] == 1


class TestServerReplay:
    """The wire-level contract over a real server."""

    @pytest.fixture
    def server(self):
        with ThreadedServer(
            ServerConfig(port=0, workers=2, dedup_replies=4)
        ) as handle:
            yield handle

    def test_retransmission_replays_the_same_txn(self, server):
        with ReproClient(server.host, server.port) as client:
            txn = client.execute(
                "define_relation(r, rollback)", session="sess", seq=1
            )
            again = client.execute(
                "define_relation(r, rollback)", session="sess", seq=1
            )
            assert again == txn
            # the sentence applied once: the server is still at txn
            assert client.ping() == txn
            assert server.metrics()["server.dedup.hits"] >= 1

    def test_stale_seq_is_refused_with_a_typed_error(self, server):
        with ReproClient(server.host, server.port) as client:
            client.execute(
                "define_relation(r0, rollback)", session="sess", seq=1
            )
            for seq in range(2, 7):  # push seq 1 out of the window of 4
                client.execute(
                    f"define_relation(r{seq}, rollback)",
                    session="sess",
                    seq=seq,
                )
            before = client.ping()
            with pytest.raises(RemoteError):
                client.execute(
                    "define_relation(r0, rollback)",
                    session="sess",
                    seq=1,
                )
            assert client.ping() == before  # and nothing re-executed

    def test_unstamped_requests_bypass_the_table(self, server):
        with ReproClient(server.host, server.port) as client:
            client.execute("define_relation(r, rollback)")
            metrics = server.metrics()
            assert metrics["server.dedup.sessions"] == 0
