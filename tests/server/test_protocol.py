"""Framing and message properties of the wire protocol.

The codec inherits the WAL's physical discipline; these tests give it
the WAL suite's adversarial treatment: every frame must round-trip
through arbitrary segmentation, and every torn, corrupted or oversized
frame must be *rejected* (never silently mis-framed)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.server import protocol
from repro.server.protocol import (
    HEADER_BYTES,
    FrameDecoder,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)


class TestFraming:
    @given(st.binary(max_size=4096))
    @settings(max_examples=100)
    def test_round_trip(self, payload):
        assert decode_frame(encode_frame(payload)) == payload

    @given(st.lists(st.binary(max_size=256), max_size=12))
    @settings(max_examples=60)
    def test_concatenated_frames_split_exactly(self, payloads):
        stream = b"".join(encode_frame(p) for p in payloads)
        assert list(FrameDecoder().feed(stream)) == payloads

    @given(
        st.lists(st.binary(max_size=256), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60)
    def test_arbitrary_segmentation(self, payloads, chunk):
        """TCP may deliver any byte-split; the decoder must reassemble."""
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i : i + chunk]))
        assert out == payloads
        assert decoder.pending == 0

    @given(st.binary(min_size=1, max_size=512))
    @settings(max_examples=100)
    def test_truncated_frame_never_yields(self, payload):
        frame = encode_frame(payload)
        for cut in (HEADER_BYTES - 1, len(frame) - 1):
            assert list(FrameDecoder().feed(frame[:cut])) == []

    @given(
        st.binary(min_size=1, max_size=512),
        st.data(),
    )
    @settings(max_examples=100)
    def test_single_bit_flip_detected(self, payload, data):
        """Any bit flip in the payload trips the CRC."""
        frame = bytearray(encode_frame(payload))
        position = data.draw(
            st.integers(HEADER_BYTES, len(frame) - 1), label="position"
        )
        bit = data.draw(st.integers(0, 7), label="bit")
        frame[position] ^= 1 << bit
        with pytest.raises(ProtocolError, match="CRC"):
            list(FrameDecoder().feed(bytes(frame)))

    def test_oversized_announced_length_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame=1024)
        import struct

        header = struct.pack("<II", 10_000_000, 0)
        with pytest.raises(ProtocolError, match="exceeds"):
            list(decoder.feed(header))

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(b"x" * 2048, max_frame=1024)

    def test_header_corruption_in_length_is_crc_or_size_error(self):
        frame = bytearray(encode_frame(b"hello world"))
        frame[0] ^= 0x01  # length now wrong
        decoder = FrameDecoder(max_frame=64)
        with pytest.raises(ProtocolError):
            # either the announced length overflows the cap, or the
            # mis-sliced payload fails its CRC once enough bytes arrive
            list(decoder.feed(bytes(frame) + b"\0" * 64))

    def test_decode_frame_requires_exactly_one(self):
        two = encode_frame(b"a") + encode_frame(b"b")
        with pytest.raises(ProtocolError, match="exactly one"):
            decode_frame(two)


class TestMessages:
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(),
                st.text(max_size=32),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        )
    )
    @settings(max_examples=60)
    def test_message_round_trip(self, message):
        assert decode_message(decode_frame(encode_message(message))) == (
            message
        )

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_message(b"\xff\xfe not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_message(json.dumps([1, 2]).encode())

    def test_request_constructor_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.request(1, "drop_tables")

    def test_validate_request_requires_source_for_query(self):
        with pytest.raises(ProtocolError, match="source"):
            protocol.validate_request({"id": 1, "op": "query"})

    def test_validate_request_requires_id(self):
        with pytest.raises(ProtocolError, match="id"):
            protocol.validate_request({"op": "ping"})

    def test_unicode_sources_survive(self):
        message = protocol.request(7, "query", "ρ(r, now) ∪ σ")
        assert decode_message(decode_frame(encode_message(message)))[
            "source"
        ] == "ρ(r, now) ∪ σ"
