"""Degraded mode over the wire: shed writes, live reads, self-healing.

A shard whose primary lost its write path sheds writes with the typed
``degraded`` status while reads keep serving; once *every* shard is
degraded the server answers at admission instead of queueing doomed
work; and with ``supervise=True`` the event-loop supervisor fails the
shard over so a retrying client's write eventually lands without the
caller ever seeing an error.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ClusterDegradedError
from repro.cluster import ClusterConfig
from repro.replication.retry import RetryPolicy
from repro.server.client import ReproClient, RetryingClient
from repro.server.server import ServerConfig, ThreadedServer


def cluster_config(**overrides) -> ClusterConfig:
    settings = dict(
        shards=1,
        replicas_per_shard=1,
        retry=RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0),
    )
    settings.update(overrides)
    return ClusterConfig(**settings)


class TestShedding:
    def test_write_shed_with_typed_error_while_reads_serve(self):
        with ThreadedServer(
            ServerConfig(port=0, workers=2, cluster=cluster_config())
        ) as handle:
            with ReproClient(handle.host, handle.port) as client:
                client.execute("define_relation(r, rollback)")
                client.execute(
                    "modify_state(r, state (k: integer) { (1) })"
                )
                baseline = client.query("rollback(r, now)")
                cluster = handle.server.store.cluster
                cluster.primaries[0].store.fail_writes()
                with pytest.raises(ClusterDegradedError):
                    client.execute(
                        "modify_state(r, state (k: integer) { (2) })"
                    )
                # the shard is quarantined for writes, not for reads
                assert cluster.degraded_shards == (0,)
                assert client.query("rollback(r, now)") == baseline
                assert handle.metrics()["server.degraded_shards"] == 1

    def test_fully_degraded_cluster_sheds_at_admission(self):
        with ThreadedServer(
            ServerConfig(
                port=0,
                workers=2,
                cluster=cluster_config(shards=2),
            )
        ) as handle:
            cluster = handle.server.store.cluster
            for primary in cluster.primaries:
                primary.store.fail_writes()
            with ReproClient(handle.host, handle.port) as client:
                # enough distinct names to hash onto both shards; each
                # failing write marks the shard it actually hit
                for i in range(16):
                    if len(cluster.degraded_shards) == cluster.shard_count:
                        break
                    with pytest.raises(ClusterDegradedError):
                        client.execute(f"define_relation(d{i}, rollback)")
                assert (
                    len(cluster.degraded_shards) == cluster.shard_count
                )
                # now the admission gate answers without queueing
                before = handle.metrics()["server.degraded_shed"]
                with pytest.raises(ClusterDegradedError):
                    client.execute("define_relation(last, rollback)")
                assert (
                    handle.metrics()["server.degraded_shed"] == before + 1
                )


class TestSupervisedHealing:
    def test_supervisor_fails_over_and_retrying_write_lands(self):
        with ThreadedServer(
            ServerConfig(
                port=0,
                workers=2,
                cluster=cluster_config(),
                supervise=True,
                supervise_interval=0.02,
                supervise_failures=1,
            )
        ) as handle:
            cluster = handle.server.store.cluster
            with RetryingClient(
                handle.host,
                handle.port,
                retry=RetryPolicy(
                    max_attempts=400, base_delay=0.01, max_delay=0.05
                ),
                timeout=10.0,
            ) as client:
                client.execute("define_relation(r, rollback)")
                cluster.primaries[0].store.fail_writes()
                # the retrying client sees only transient degraded
                # errors until the supervisor promotes the replica —
                # then this lands exactly once
                txn = client.execute(
                    "modify_state(r, state (k: integer) { (1) })"
                )
                assert client.ping() == txn
            deadline = time.monotonic() + 5.0
            while (
                cluster.degraded_shards
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert cluster.degraded_shards == ()
            assert handle.server.supervisor is not None
            assert handle.server.supervisor.ticks > 0
