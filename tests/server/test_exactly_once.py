"""Exactly-once executes through a hostile network.

A frame-aware proxy sits between a :class:`RetryingClient` and a real
server and mangles requests per a scripted (or hypothesis-generated)
schedule: drop before delivery, drop *after* delivery (the critical
ack-loss case — the sentence landed but the client cannot know), or
duplicate the frame outright.  The acceptance bar is the paper's
append-only history made network-proof: after every schedule the
server's transaction sequence is byte-identical to an in-process
:class:`~repro.lang.session.Session` oracle that executed each sentence
exactly once.
"""

from __future__ import annotations

import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConnectionClosedError
from repro.lang.session import Session
from repro.replication.retry import RetryPolicy
from repro.server import protocol
from repro.server.client import (
    AsyncReproClient,
    ReproClient,
    RetryingClient,
)
from repro.server.server import ServerConfig, ThreadedServer
from repro.server.store import render_state

#: Per-request fates the proxy applies, in order; 'ok' once exhausted.
OK = "ok"
DROP_BEFORE = "drop_before"  # never reaches the server
DROP_AFTER = "drop_after"  # reaches the server; the ack is lost
DUP = "dup"  # delivered twice

FATES = (OK, DROP_BEFORE, DROP_AFTER, DUP)


class FlakyProxy:
    """A frame-aware TCP proxy that applies one fate per request frame.

    Fates apply to *request frames*, not connections, so one schedule
    entry maps to exactly one client-visible attempt.  Both drop fates
    sever the client connection afterwards — exactly what a lost packet
    looks like from the blocking client's side."""

    def __init__(self, upstream_host: str, upstream_port: int) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._fates: list[str] = []
        self._lock = threading.Lock()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self.host = "127.0.0.1"
        self._closing = False
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()

    def script(self, fates: "list[str]") -> None:
        with self._lock:
            self._fates.extend(fates)

    def _next_fate(self) -> str:
        with self._lock:
            return self._fates.pop(0) if self._fates else OK

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve, args=(client,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, client: socket.socket) -> None:
        try:
            server = socket.create_connection(self._upstream, 10)
        except OSError:
            client.close()
            return
        decoder = protocol.FrameDecoder()
        reply_decoder = protocol.FrameDecoder()
        replies: list[bytes] = []
        try:
            while True:
                try:
                    chunk = client.recv(65536)
                except OSError:
                    return
                if not chunk:
                    return
                for payload in decoder.feed(chunk):
                    fate = self._next_fate()
                    frame = protocol.encode_frame(payload)
                    if fate == DROP_BEFORE:
                        return  # sever; the server never saw it
                    copies = 2 if fate == DUP else 1
                    for _ in range(copies):
                        server.sendall(frame)
                    for _ in range(copies):
                        while not replies:
                            data = server.recv(65536)
                            if not data:
                                return
                            replies.extend(reply_decoder.feed(data))
                        reply = replies.pop(0)
                        if fate == DROP_AFTER:
                            return  # applied server-side; ack lost
                        client.sendall(protocol.encode_frame(reply))
        finally:
            server.close()
            client.close()

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture(scope="module")
def server():
    with ThreadedServer(ServerConfig(port=0, workers=2)) as handle:
        yield handle


@pytest.fixture
def proxy(server):
    proxy = FlakyProxy(server.host, server.port)
    yield proxy
    proxy.close()


def fast_policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=60, base_delay=0.0, max_delay=0.0)


def run_statements(proxy, server, tag, *, session_token):
    """Execute a tagged statement batch through the proxy with retries;
    assert each lands exactly once against a lockstep oracle.  The
    server is shared across tests, so the oracle tracks transaction
    *deltas* from a baseline read directly (not through the proxy, which
    would consume a scripted fate)."""
    oracle = Session()
    with ReproClient(server.host, server.port) as direct:
        base = direct.ping()
    statements = statements_for(tag)
    with RetryingClient(
        proxy.host,
        proxy.port,
        retry=fast_policy(),
        timeout=10.0,
        session_token=session_token,
    ) as client:
        for statement in statements:
            txn = client.execute(statement)
            oracle.execute(statement)
            assert txn == base + oracle.database.transaction_number
        final = client.query(f"rollback({tag}r, now)")
    assert final == render_state(oracle.query(f"rollback({tag}r, now)"))


STATE = "state (k: integer, v: integer) {{ ({i}, {i}0) }}"


def statements_for(tag: str, count: int = 6) -> "list[str]":
    out = [f"define_relation({tag}r, rollback)"]
    for i in range(1, count):
        out.append(f"modify_state({tag}r, {STATE.format(i=i)})")
    return out


class TestScriptedSchedules:
    def test_ack_loss_does_not_double_apply(self, proxy, server):
        """The critical case: the sentence landed, the ack vanished.
        The retry retransmits the same (session, seq); the dedup table
        replays the cached txn instead of appending twice."""
        before = server.metrics()["server.dedup.hits"]
        proxy.script([OK, DROP_AFTER])
        run_statements(proxy, server, "a", session_token="ack-loss")
        assert server.metrics()["server.dedup.hits"] >= before + 1

    def test_lost_request_is_simply_retried(self, proxy, server):
        proxy.script([DROP_BEFORE, OK, DROP_BEFORE])
        run_statements(proxy, server, "b", session_token="req-loss")

    def test_duplicated_frame_is_absorbed(self, proxy, server):
        """The network delivers the frame twice: the server dedups the
        second copy and the client discards the extra reply by id."""
        proxy.script([DUP, OK, DUP])
        run_statements(proxy, server, "c", session_token="dup-frames")

    def test_every_fate_interleaved(self, proxy, server):
        proxy.script([DROP_AFTER, DUP, DROP_BEFORE, OK, DROP_AFTER, DUP])
        run_statements(proxy, server, "d", session_token="interleaved")


_EXAMPLE = iter(range(10**6))


class TestRandomSchedules:
    @given(schedule=st.lists(st.sampled_from(FATES), max_size=24))
    @settings(max_examples=8, deadline=None)
    def test_random_fault_schedule_matches_oracle(self, server, schedule):
        tag = f"h{next(_EXAMPLE)}x"  # unique names on the shared server
        proxy = FlakyProxy(server.host, server.port)
        try:
            proxy.script(schedule)
            run_statements(
                proxy, server, tag, session_token=f"hyp-{tag}"
            )
        finally:
            proxy.close()


class TestSendallRegression:
    """A broken pipe while *sending* must surface as the typed, retryable
    :class:`ConnectionClosedError` — not a raw OSError (the bug: only
    the receive path was wrapped)."""

    def test_blocking_client_wraps_sendall_oserror(self, server):
        client = ReproClient(server.host, server.port)
        real = client._socket

        class DeadSocket:
            def sendall(self, _data):
                raise OSError("broken pipe")

            def __getattr__(self, name):
                return getattr(real, name)

        client._socket = DeadSocket()
        with pytest.raises(ConnectionClosedError):
            client.ping()
        real.close()

    def test_async_client_wraps_send_oserror(self, server):
        import asyncio

        async def scenario():
            client = AsyncReproClient(server.host, server.port)
            await client.connect()

            def boom(_data):
                raise OSError("broken pipe")

            client._writer.write = boom
            with pytest.raises(ConnectionClosedError):
                await client.ping()
            await client.close()

        asyncio.run(scenario())
