"""End-to-end server behaviour over real sockets.

Covers the op surface (query/execute/explain/ping/metrics), the error
mapping onto typed client exceptions, all four backing modes composed
through one ``ServerConfig``, framing failures at the socket boundary,
and graceful drain."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.errors import (
    ProtocolError,
    RemoteError,
    ServerError,
    ServerShutdownError,
    UnknownRelationError,
)
from repro.lang.session import Session
from repro.server import protocol
from repro.server.client import ReproClient
from repro.server.server import ReproServer, ServerConfig, ThreadedServer
from repro.server.store import render_state


@pytest.fixture
def server():
    with ThreadedServer(ServerConfig(port=0, workers=2)) as handle:
        yield handle


@pytest.fixture
def client(server):
    with ReproClient(server.host, server.port) as c:
        yield c


STATE = "state (k: integer, v: integer) { (1, 10), (2, 20) }"


class TestOps:
    def test_execute_then_query_round_trip(self, client):
        assert client.execute("define_relation(r, rollback)") == 1
        assert client.execute(f"modify_state(r, {STATE})") == 2
        printed = client.query("rollback(r, now)")
        # byte-identical to the in-process session's rendering
        oracle = Session()
        oracle.execute("define_relation(r, rollback)")
        oracle.execute(f"modify_state(r, {STATE})")
        assert printed == render_state(oracle.query("rollback(r, now)"))

    def test_query_renders_empty_marker(self, client):
        client.execute("define_relation(r, rollback)")
        assert client.query("rollback(r, now)") == "∅ (no recorded state)"

    def test_ping_reports_transaction_number(self, client):
        assert client.ping() == 0
        client.execute("define_relation(r, rollback)")
        assert client.ping() == 1

    def test_explain_over_the_wire(self, client):
        client.execute("define_relation(r, rollback)")
        client.execute(f"modify_state(r, {STATE})")
        plan = client.explain("project [k] (rollback(r, now))")
        assert "project" in plan.lower()

    def test_metrics_surface(self, server, client):
        client.execute("define_relation(r, rollback)")
        client.query("rollback(r, now)")
        metrics = client.metrics()
        for key in (
            "server.accepted",
            "server.completed",
            "server.shed",
            "server.killed",
            "server.queue_depth",
            "server.inflight",
            "server.connections_open",
            "server.transaction_number",
            "server.latency_p50_ms",
            "server.latency_p99_ms",
        ):
            assert key in metrics, key
        assert metrics["server.accepted"] >= 2
        assert metrics["server.completed"] >= 2
        assert metrics["server.connections_open"] == 1
        assert metrics["server.transaction_number"] == 1

    def test_sequential_clients_share_the_database(self, server):
        with ReproClient(server.host, server.port) as first:
            first.execute("define_relation(shared, rollback)")
            first.execute(f"modify_state(shared, {STATE})")
            expected = first.query("rollback(shared, now)")
        with ReproClient(server.host, server.port) as second:
            assert second.query("rollback(shared, now)") == expected


class TestErrorMapping:
    def test_remote_error_carries_server_exception_type(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.query("rollback(missing, now)")
        assert excinfo.value.remote_type == "UnknownRelationError"
        assert "missing" in str(excinfo.value)

    def test_remote_error_is_catchable_per_request(self, client):
        """A failed request poisons nothing: the connection keeps
        serving."""
        assert client.execute("define_relation(r, rollback)") == 1
        with pytest.raises(RemoteError) as excinfo:
            client.execute("modify_state(r, rollback(missing, now))")
        assert excinfo.value.remote_type == "UnknownRelationError"
        assert client.execute(f"modify_state(r, {STATE})") == 2

    def test_parse_error_maps_too(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.query("select [")
        assert excinfo.value.remote_type in ("ParseError", "ReproError")

    def test_unknown_op_rejected(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(
                protocol.encode_message({"id": 1, "op": "drop_everything"})
            )
            decoder = protocol.FrameDecoder()
            reply = None
            while reply is None:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                for payload in decoder.feed(chunk):
                    reply = protocol.decode_message(payload)
            assert reply is not None
            assert reply["status"] == protocol.STATUS_ERROR
            assert reply["error_type"] == "ProtocolError"
            # framing is intact but the request was garbage; the server
            # hangs up after reporting
            assert sock.recv(65536) == b""


class TestFramingBoundary:
    def test_corrupt_frame_reported_then_connection_closed(self, server):
        frame = bytearray(
            protocol.encode_message({"id": 1, "op": "ping"})
        )
        frame[-1] ^= 0xFF
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(bytes(frame))
            decoder = protocol.FrameDecoder()
            chunks = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks += chunk
            replies = [
                protocol.decode_message(p)
                for p in decoder.feed(chunks)
            ]
            assert len(replies) == 1
            assert replies[0]["status"] == protocol.STATUS_ERROR
            assert replies[0]["error_type"] == "ProtocolError"
            assert "CRC" in replies[0]["error"]

    def test_oversized_announced_frame_closes_connection(self):
        config = ServerConfig(port=0, max_frame=1024)
        with ThreadedServer(config) as handle:
            with socket.create_connection(
                (handle.host, handle.port), timeout=10
            ) as sock:
                sock.sendall(struct.pack("<II", 50_000_000, 0))
                # server reports the framing error and hangs up; it
                # must not try to buffer 50MB
                data = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                reply = protocol.decode_message(
                    protocol.decode_frame(data)
                )
                assert reply["error_type"] == "ProtocolError"

    def test_client_rejects_oversized_request(self, server):
        client = ReproClient(server.host, server.port, max_frame=256)
        try:
            with pytest.raises(ProtocolError, match="exceeds"):
                client.query("rollback(" + "r" * 1024 + ", now)")
        finally:
            client.close()


class TestBackings:
    def test_durable_backing_survives_restart(self, tmp_path):
        directory = str(tmp_path / "db")
        config = ServerConfig(
            port=0, durable_dir=directory, fsync="always"
        )
        with ThreadedServer(config) as handle:
            with ReproClient(handle.host, handle.port) as c:
                c.execute("define_relation(r, rollback)")
                c.execute(f"modify_state(r, {STATE})")
                expected = c.query("rollback(r, now)")
        # a second server over the same directory recovers the state
        with ThreadedServer(
            ServerConfig(port=0, durable_dir=directory, fsync="always")
        ) as handle:
            with ReproClient(handle.host, handle.port) as c:
                assert c.ping() == 2
                assert c.query("rollback(r, now)") == expected

    def test_sharded_backing(self, tmp_path):
        config = ServerConfig(
            port=0,
            shards=3,
            durable_dir=str(tmp_path / "shards"),
        )
        with ThreadedServer(config) as handle:
            with ReproClient(handle.host, handle.port) as c:
                c.execute("define_relation(r, rollback)")
                c.execute(f"modify_state(r, {STATE})")
                oracle = Session()
                oracle.execute("define_relation(r, rollback)")
                oracle.execute(f"modify_state(r, {STATE})")
                assert c.query("rollback(r, now)") == render_state(
                    oracle.query("rollback(r, now)")
                )

    def test_config_validation(self):
        with pytest.raises(ServerError, match="workers"):
            ServerConfig(workers=0)


class TestShutdown:
    def test_draining_server_sheds_new_work_but_answers_control_ops(
        self, server
    ):
        with ReproClient(server.host, server.port) as c:
            c.execute("define_relation(r, rollback)")
            # flip the drain flag on the loop thread, as stop() would
            server._on_loop(
                lambda: setattr(server.server, "_draining", True)
            )
            with pytest.raises(ServerShutdownError, match="draining"):
                c.query("rollback(r, now)")
            # control ops keep answering so operators can watch
            assert c.ping() == 1
            assert c.metrics()["server.draining"] == 1
            server._on_loop(
                lambda: setattr(server.server, "_draining", False)
            )

    def test_stop_is_idempotent_and_clean(self):
        handle = ThreadedServer(ServerConfig(port=0))
        with ReproClient(handle.host, handle.port) as c:
            c.execute("define_relation(r, rollback)")
        handle.stop()
        # double-stop must not raise
        handle.stop()

    def test_queued_work_drains_before_shutdown(self):
        """stop(drain=True) lets admitted requests finish."""
        config = ServerConfig(
            port=0, workers=1, debug_ops=True, drain_timeout=10.0
        )
        handle = ThreadedServer(config)
        try:
            with ReproClient(handle.host, handle.port) as c:
                c.execute("define_relation(r, rollback)")
                c.execute(f"modify_state(r, {STATE})")
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=30
            )
            stalled = protocol.request(
                1, "query", "rollback(r, now)", stall_ms=200
            )
            sock.sendall(protocol.encode_message(stalled))
            # wait for admission before stopping (loopback is fast but
            # not instantaneous), so drain has something to drain
            import time as _time

            for _ in range(200):
                if handle.metrics()["server.accepted"] >= 3:
                    break
                _time.sleep(0.01)
            handle.stop()  # drains: the stalled query still answers
            decoder = protocol.FrameDecoder()
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            replies = [
                protocol.decode_message(p) for p in decoder.feed(data)
            ]
            sock.close()
            assert replies and replies[0]["status"] == protocol.STATUS_OK
        finally:
            handle.stop()


def test_repro_server_requires_start_before_port():
    server = ReproServer(ServerConfig(port=0))
    with pytest.raises(ServerError, match="not started"):
        server.port
    server.store.close()


def test_error_taxonomy_the_wire_mapping_depends_on():
    assert issubclass(UnknownRelationError, Exception)
    assert RemoteError("x").remote_type == "ReproError"
