"""Admission control: watermark hysteresis, budgets, deadlines.

The controller unit tests exercise the bookkeeping directly; the live
tests stand up a real server with one worker and ``debug_ops`` enabled,
stall it with a simulated-I/O query, and prove the front door sheds
(``queue_full``), expires queued requests, and kills over-deadline
executions — instead of queuing without bound or hanging."""

from __future__ import annotations

import socket
import time

import pytest

from repro.errors import DeadlineExceededError, ServerError
from repro.server import protocol
from repro.server.admission import AdmissionController, percentile
from repro.server.client import ReproClient
from repro.server.server import ServerConfig, ThreadedServer


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_median_and_tail(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 51.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0


class TestController:
    def test_validation(self):
        with pytest.raises(ServerError, match="queue_high"):
            AdmissionController(queue_high=0)
        with pytest.raises(ServerError, match="queue_low"):
            AdmissionController(queue_high=4, queue_low=9)
        with pytest.raises(ServerError, match="per_connection"):
            AdmissionController(queue_high=4, per_connection=0)

    def test_low_watermark_defaults_to_half(self):
        assert AdmissionController(queue_high=64).queue_low == 32
        assert AdmissionController(queue_high=1).queue_low == 1

    def test_watermark_hysteresis(self):
        """Shed from high watermark until drained below low — no
        flapping at the boundary."""
        controller = AdmissionController(
            queue_high=4, queue_low=2, per_connection=16
        )
        for connection in range(4):
            assert controller.try_admit(connection) is None
        # at the high watermark: shed, enter the shedding state
        assert controller.try_admit(9) == "saturated"
        assert controller.shedding
        # draining to 3 (> low) keeps shedding — hysteresis
        controller.finish(0, admitted_at=0.0, executed=False, outcome="orphaned")
        assert controller.depth == 3
        assert controller.try_admit(9) == "saturated"
        # draining to the low watermark ends the episode
        controller.finish(1, admitted_at=0.0, executed=False, outcome="orphaned")
        assert controller.depth == 2
        assert not controller.shedding
        assert controller.try_admit(9) is None

    def test_recovers_after_drain(self):
        controller = AdmissionController(queue_high=2, queue_low=1)
        assert controller.try_admit(1) is None
        assert controller.try_admit(2) is None
        assert controller.try_admit(3) == "saturated"
        controller.finish(1, admitted_at=0.0, executed=False, outcome="orphaned")
        controller.finish(2, admitted_at=0.0, executed=False, outcome="orphaned")
        assert not controller.shedding
        assert controller.try_admit(3) is None

    def test_per_connection_budget(self):
        """One aggressive connection cannot occupy the whole queue."""
        controller = AdmissionController(queue_high=64, per_connection=3)
        for _ in range(3):
            assert controller.try_admit(7) is None
        assert controller.try_admit(7) == "connection budget"
        # other connections are unaffected
        assert controller.try_admit(8) is None
        # finishing one frees budget
        controller.finish(7, admitted_at=0.0, executed=False, outcome="orphaned")
        assert controller.try_admit(7) is None

    def test_outcome_counters_and_slots(self):
        controller = AdmissionController(queue_high=8)
        for connection in range(5):
            controller.try_admit(connection)
        controller.start()
        controller.start()
        assert controller.inflight == 2
        now = time.perf_counter()
        controller.finish(0, admitted_at=now, executed=True, outcome="completed")
        controller.finish(1, admitted_at=now, executed=True, outcome="error")
        controller.finish(2, admitted_at=now, executed=False, outcome="expired")
        controller.finish(3, admitted_at=now, executed=False, outcome="orphaned")
        controller.try_admit(9)  # nowhere near the watermark: admitted
        controller.start()
        controller.finish(9, admitted_at=now, executed=True, outcome="killed")
        snapshot = controller.snapshot()
        assert snapshot["server.completed"] == 1
        assert snapshot["server.errors"] == 1
        assert snapshot["server.expired_in_queue"] == 1
        assert snapshot["server.orphaned"] == 1
        assert snapshot["server.killed"] == 1
        assert snapshot["server.accepted"] == 6
        assert controller.inflight == 0
        assert controller.depth == 1  # connection 4 still admitted
        assert snapshot["server.latency_p50_ms"] >= 0.0

    def test_latency_window_is_bounded(self):
        controller = AdmissionController(queue_high=8)
        for _ in range(controller.LATENCY_WINDOW + 50):
            controller._observe_latency(0.001)
        assert len(controller._latencies) == controller.LATENCY_WINDOW


# -- live backpressure against a real server ---------------------------------


def _pipeline(host: str, port: int, messages: "list[dict]") -> "list[dict]":
    """Send every request frame at once (no waiting), then collect one
    reply per request — how a misbehaving client overruns the queue."""
    decoder = protocol.FrameDecoder()
    replies: "list[dict]" = []
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(
            b"".join(protocol.encode_message(m) for m in messages)
        )
        while len(replies) < len(messages):
            chunk = sock.recv(65536)
            assert chunk, "server closed before answering every request"
            replies.extend(
                protocol.decode_message(p) for p in decoder.feed(chunk)
            )
    return replies


@pytest.fixture
def small_server():
    """One worker, a 4-deep queue, debug stalls honoured."""
    config = ServerConfig(
        port=0,
        workers=1,
        queue_high=4,
        queue_low=2,
        per_connection=16,
        debug_ops=True,
    )
    with ThreadedServer(config) as handle:
        yield handle


class TestBackpressure:
    def test_overrun_queue_sheds_queue_full(self, small_server):
        """queue_high admitted, the overflow shed — never unbounded."""
        stall = protocol.request(1, "query", "rollback(r, now)", stall_ms=400)
        flood = [
            protocol.request(i, "query", "rollback(r, now)")
            for i in range(2, 10)
        ]
        replies = _pipeline(
            small_server.host, small_server.port, [stall] + flood
        )
        statuses = [r["status"] for r in replies]
        shed = statuses.count(protocol.STATUS_QUEUE_FULL)
        # 4 admitted (stall executing + 3 queued), 5 of 9 shed
        assert shed == 5, statuses
        # admitted ones actually completed (the relation is undefined,
        # so they answer with a typed error, not a hang)
        assert statuses.count(protocol.STATUS_ERROR) == 4
        metrics = small_server.metrics()
        assert metrics["server.shed"] == 5
        assert metrics["server.accepted"] == 4
        assert metrics["server.queue_depth"] == 0

    def test_shed_reply_names_the_reason(self, small_server):
        stall = protocol.request(1, "query", "x", stall_ms=300)
        flood = [protocol.request(i, "query", "x") for i in range(2, 10)]
        replies = _pipeline(
            small_server.host, small_server.port, [stall] + flood
        )
        shed = [
            r for r in replies if r["status"] == protocol.STATUS_QUEUE_FULL
        ]
        assert shed and all("saturated" in r["error"] for r in shed)

    def test_per_connection_budget_over_the_wire(self):
        config = ServerConfig(
            port=0,
            workers=1,
            queue_high=64,
            per_connection=2,
            debug_ops=True,
        )
        with ThreadedServer(config) as handle:
            stall = protocol.request(1, "query", "x", stall_ms=300)
            flood = [protocol.request(i, "query", "x") for i in range(2, 6)]
            replies = _pipeline(handle.host, handle.port, [stall] + flood)
            shed = [
                r
                for r in replies
                if r["status"] == protocol.STATUS_QUEUE_FULL
            ]
            assert len(shed) == 3
            assert all("connection budget" in r["error"] for r in shed)

    def test_deadline_kills_mid_execution(self, small_server):
        """A query stalled past its deadline is killed, not awaited."""
        with ReproClient(small_server.host, small_server.port) as client:
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError, match="killed"):
                client.query("rollback(r, now)", deadline_ms=80, stall_ms=5000)
            # the kill must fire at the deadline, not the stall length
            assert time.perf_counter() - started < 2.0
        metrics = small_server.metrics()
        assert metrics["server.killed"] == 1
        assert metrics["server.inflight"] == 0

    def test_deadline_expires_in_queue(self, small_server):
        """A request whose deadline passes while queued never executes."""
        stall = protocol.request(1, "query", "x", stall_ms=300)
        doomed = protocol.request(2, "query", "x")
        doomed["deadline_ms"] = 40
        replies = _pipeline(
            small_server.host, small_server.port, [stall, doomed]
        )
        by_id = {r["id"]: r for r in replies}
        assert by_id[2]["status"] == protocol.STATUS_DEADLINE
        assert "queued" in by_id[2]["error"]
        metrics = small_server.metrics()
        assert metrics["server.expired_in_queue"] == 1

    def test_stall_ignored_without_debug_ops(self):
        """stall_ms is a debug hook: production servers don't honour it."""
        config = ServerConfig(port=0, workers=1, debug_ops=False)
        with ThreadedServer(config) as handle:
            with ReproClient(handle.host, handle.port) as client:
                client.execute("define_relation(r, rollback)")
                started = time.perf_counter()
                client.query("rollback(r, now)", stall_ms=5000)
                assert time.perf_counter() - started < 2.0
