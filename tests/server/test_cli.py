"""The ``python -m repro`` command line: repl / eval / serve modes."""

from __future__ import annotations

import io
import os
import signal
import subprocess
import sys
import time
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main
from repro.server.client import ReproClient

SCRIPT = """
define_relation(r, rollback);
modify_state(r, state (k: integer) { (1), (2) });
rollback(r, now)
"""


def _run_eval(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


class TestEvalMode:
    def test_eval_file(self, tmp_path):
        path = tmp_path / "script.repro"
        path.write_text(SCRIPT)
        code, output = _run_eval(["eval", str(path)])
        assert code == 0
        assert "ok (txn 1)" in output
        assert "ok (txn 2)" in output
        assert "1" in output and "2" in output

    def test_eval_inline(self):
        code, output = _run_eval(
            ["eval", "-c", "define_relation(r, rollback);"]
        )
        assert code == 0
        assert "ok (txn 1)" in output

    def test_trailing_statement_without_semicolon_runs(self):
        code, output = _run_eval(
            ["eval", "-c", "define_relation(r, rollback)"]
        )
        assert code == 0
        assert "ok (txn 1)" in output

    def test_errors_exit_nonzero(self):
        code, output = _run_eval(["eval", "-c", "rollback(missing, now);"])
        assert code == 1
        assert "error:" in output

    def test_missing_file_exits_2(self):
        assert main(["eval", "/nonexistent/script"]) == 2


class TestServeMode:
    def test_serve_subprocess_round_trip(self):
        """The real thing: spawn ``python -m repro serve``, speak the
        protocol to it, drain it with SIGINT."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "repro server listening on" in banner
            # the banner names the ephemeral port
            address = banner.split("listening on ", 1)[1].split(" ")[0]
            host, port = address.rsplit(":", 1)
            with ReproClient(host, int(port), timeout=30) as client:
                assert client.execute("define_relation(r, rollback)") == 1
                assert "no recorded state" in client.query(
                    "rollback(r, now)"
                )
                assert client.metrics()["server.workers"] == 2
            process.send_signal(signal.SIGINT)
            code = process.wait(timeout=30)
            assert code == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_serve_banner_names_backing(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--durable-dir",
                str(tmp_path / "db"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "durable(" in banner
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


@pytest.mark.parametrize("command", [["repl"], []])
def test_repl_mode_reads_stdin(monkeypatch, command):
    stdin = io.StringIO("define_relation(r, rollback);\n.quit\n")
    monkeypatch.setattr(sys, "stdin", stdin)
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(command)
    assert code == 0
    assert "ok (txn 1)" in out.getvalue()
