"""Tests for the memoized (common-subexpression) evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
    evaluate,
    evaluate_memoized,
    is_empty_set,
)
from repro.core.sentences import run
from repro.historical.predicates import ValidAt
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import ValidTime
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


@pytest.fixture
def db():
    return run(
        [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(kv((1, 10), (2, 20), (3, 30)))),
            DefineRelation("empty", "rollback"),
        ]
    )


class TestAgreement:
    def test_delete_shape(self, db):
        source = Select(
            Rollback("r"), Comparison(attr("v"), ">=", lit(10))
        )
        doomed = Select(source, Comparison(attr("k"), "=", lit(2)))
        query = Difference(source, doomed)
        assert evaluate_memoized(query, db) == evaluate(query, db)

    def test_empty_set_paths(self, db):
        query = Union(Rollback("empty"), Rollback("r"))
        assert evaluate_memoized(query, db) == evaluate(query, db)
        only_empty = Project(Rollback("empty"), ["k"])
        assert is_empty_set(evaluate_memoized(only_empty, db))

    def test_historical_paths(self):
        h = HistoricalState.from_rows(KV, [([1, 2], [(0, 9)])])
        database = run(
            [
                DefineRelation("t", "temporal"),
                ModifyState("t", Const(h)),
            ]
        )
        query = Derive(
            Union(Rollback("t"), Rollback("t")),
            predicate=ValidAt(ValidTime(), 3),
        )
        assert evaluate_memoized(query, database) == evaluate(
            query, database
        )

    def test_rename_and_product(self, db):
        doubled = Product(
            Rollback("r"), Rename(Rollback("r"), {"k": "k2", "v": "v2"})
        )
        assert evaluate_memoized(doubled, db) == evaluate(doubled, db)

    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_random_trees_agree(self, a, b):
        e = Difference(
            Union(Const(a), Const(b)),
            Select(
                Union(Const(a), Const(b)),
                Comparison(attr("k"), ">", lit(4)),
            ),
        )
        assert evaluate_memoized(e, EMPTY_DATABASE) == evaluate(
            e, EMPTY_DATABASE
        )


class TestSharing:
    def test_shared_subtree_evaluated_once(self, db):
        """A counting wrapper shows the shared subtree evaluates once
        under memoization and twice under plain evaluation."""
        calls = []

        class CountingConst(Const):
            def evaluate(self, database):
                calls.append(1)
                return super().evaluate(database)

        shared = CountingConst(kv((1, 10), (2, 20)))
        query = Difference(
            shared, Select(shared, Comparison(attr("k"), "=", lit(1)))
        )
        evaluate(query, db)
        plain_calls = len(calls)
        calls.clear()
        evaluate_memoized(query, db)
        memo_calls = len(calls)
        assert plain_calls == 2
        assert memo_calls == 1


class TestFalsyMemoHits:
    def test_empty_set_cached_result_hits_once(self, db):
        """A cached untyped empty set — a *falsy* value (``frozenset()``)
        — must still count as a memo hit, exactly once per extra
        occurrence.  Guards the sentinel-based cache probe against a
        truthiness or ``is not None`` shortcut, either of which would
        re-evaluate (or double-probe) every ∅-valued subtree."""
        from repro.obsv import registry as obsv_registry
        from repro.obsv.registry import MetricsRegistry

        source = Rollback("empty")
        query = Union(source, source)
        registry = obsv_registry.enable(MetricsRegistry())
        try:
            result = evaluate_memoized(query, db)
            counters = registry.snapshot()["counters"]
        finally:
            obsv_registry.disable()
        assert is_empty_set(result)
        # root + first ρ computed; second ρ occurrence served from cache
        assert counters["expr.memo_hits"] == 1
        assert counters["expr.memo_misses"] == 2
