"""Tests for the semantic function P and the strictly-increasing
transaction-number invariant (claim C4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommandError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import Const, Rollback, Union
from repro.core.sentences import Sentence, run
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def const(*keys):
    return Const(SnapshotState(KV, [[k] for k in keys]))


class TestSentence:
    def test_starts_from_empty_database(self):
        db = Sentence([DefineRelation("r", "rollback")]).evaluate()
        assert db.transaction_number == 1

    def test_single_command_accepted(self):
        db = Sentence(DefineRelation("r", "rollback")).evaluate()
        assert db.require("r") is not None

    def test_empty_sentence_rejected(self):
        with pytest.raises(CommandError):
            Sentence([])

    def test_run_helper(self):
        db = run([DefineRelation("r", "rollback")])
        assert db.transaction_number == 1

    def test_equality(self):
        a = Sentence([DefineRelation("r", "rollback")])
        b = Sentence([DefineRelation("r", "rollback")])
        assert a == b
        assert len(a) == 1


class TestIncreasingInvariant:
    """Claim C4: transaction numbers in every rollback relation's state
    sequence are strictly increasing, for arbitrary command sequences."""

    def _random_commands(self, seed: int, length: int):
        rng = random.Random(seed)
        identifiers = ["r1", "r2", "r3"]
        commands = []
        for _ in range(length):
            identifier = rng.choice(identifiers)
            roll = rng.random()
            if roll < 0.25:
                # may be a redefinition no-op
                commands.append(DefineRelation(identifier, "rollback"))
            elif roll < 0.9:
                # may be a modify on an unbound identifier (no-op)
                commands.append(
                    ModifyState(identifier, const(rng.randrange(5)))
                )
            else:
                commands.append(
                    ModifyState(
                        identifier,
                        Union(
                            Rollback(identifier),
                            const(rng.randrange(5)),
                        ),
                    )
                )
        return commands

    @pytest.mark.parametrize("seed", range(8))
    def test_invariant_under_random_streams(self, seed):
        db = run(self._random_commands(seed, 60))
        seen_txns = []
        for identifier in db.state:
            relation = db.require(identifier)
            txns = relation.transaction_numbers
            assert list(txns) == sorted(set(txns))
            seen_txns.extend(txns)
        # all state txns are bounded by the database txn
        assert all(t <= db.transaction_number for t in seen_txns)

    def test_noops_do_not_advance_transaction_number(self):
        db1 = run([DefineRelation("r", "rollback")])
        # redefinition: no change, including the txn counter
        db2 = DefineRelation("r", "snapshot").execute(db1)
        assert db2.transaction_number == db1.transaction_number
        # modify of unbound identifier: no change
        db3 = ModifyState("ghost", const(1)).execute(db1)
        assert db3.transaction_number == db1.transaction_number

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_prefix_property(self, seed):
        """Executing a sentence is the same as executing any prefix and
        then the suffix — the compositionality of C."""
        commands = self._random_commands(seed, 20)
        full = run(commands)
        split = seed % (len(commands) - 1) + 1
        prefix_db = run(commands[:split])
        resumed = prefix_db
        for command in commands[split:]:
            resumed = command.execute(resumed)
        assert resumed == full


class TestScale:
    def test_long_sentences_do_not_overflow_recursion(self):
        """The balanced Sequence tree keeps execution depth logarithmic;
        a 5000-command sentence must run without RecursionError."""
        commands = [DefineRelation("r", "rollback")]
        commands += [
            ModifyState("r", const(i % 10)) for i in range(5000)
        ]
        db = run(commands)
        assert db.transaction_number == 5001
        assert db.require("r").history_length == 5000
