"""Tests for database states and databases."""

import pytest

from repro.errors import UnknownRelationError
from repro.core.database import EMPTY_DATABASE, Database, DatabaseState
from repro.core.relation import Relation, RelationType


@pytest.fixture
def relation():
    return Relation(RelationType.ROLLBACK, ())


class TestDatabaseState:
    def test_empty_maps_everything_to_bottom(self):
        state = DatabaseState()
        assert state.lookup("anything") is None
        assert not state.is_bound("anything")

    def test_bind_is_functional_update(self, relation):
        state = DatabaseState()
        bound = state.bind("r", relation)
        assert bound.lookup("r") is relation
        assert state.lookup("r") is None  # original untouched

    def test_require(self, relation):
        state = DatabaseState().bind("r", relation)
        assert state.require("r") is relation
        with pytest.raises(UnknownRelationError):
            state.require("s")

    def test_unbind(self, relation):
        state = DatabaseState().bind("r", relation)
        assert state.unbind("r").lookup("r") is None
        assert state.lookup("r") is relation

    def test_identifiers_sorted(self, relation):
        state = (
            DatabaseState()
            .bind("zebra", relation)
            .bind("alpha", relation)
        )
        assert state.identifiers == ("alpha", "zebra")
        assert list(state) == ["alpha", "zebra"]

    def test_len_and_contains(self, relation):
        state = DatabaseState().bind("r", relation)
        assert len(state) == 1
        assert "r" in state

    def test_equality(self, relation):
        a = DatabaseState().bind("r", relation)
        b = DatabaseState({"r": relation})
        assert a == b
        assert hash(a) == hash(b)


class TestDatabase:
    def test_empty_database(self):
        assert EMPTY_DATABASE.transaction_number == 0
        assert len(EMPTY_DATABASE.state) == 0

    def test_with_binding(self, relation):
        db = EMPTY_DATABASE.with_binding("r", relation, 1)
        assert db.transaction_number == 1
        assert db.lookup("r") is relation
        assert EMPTY_DATABASE.lookup("r") is None

    def test_negative_txn_rejected(self):
        with pytest.raises(UnknownRelationError):
            Database(DatabaseState(), -1)

    def test_equality_includes_txn(self, relation):
        a = EMPTY_DATABASE.with_binding("r", relation, 1)
        b = EMPTY_DATABASE.with_binding("r", relation, 2)
        assert a != b

    def test_require_delegates(self, relation):
        db = EMPTY_DATABASE.with_binding("r", relation, 1)
        assert db.require("r") is relation
        with pytest.raises(UnknownRelationError):
            db.require("missing")
