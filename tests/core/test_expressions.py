"""Tests for the semantic function E: every expression form, the rollback
operator ρ/ρ̂, the untyped ∅, and side-effect freedom (claim C1)."""

import pytest
from hypothesis import given, settings

from repro.errors import (
    ExpressionError,
    RelationTypeError,
    UnknownRelationError,
)
from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
    evaluate,
    is_empty_set,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.historical.predicates import ValidAt
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import ValidTime
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


def const(*rows):
    return Const(kv(*rows))


class TestConst:
    def test_snapshot_const(self):
        assert const((1, 2)).evaluate(EMPTY_DATABASE) == kv((1, 2))

    def test_historical_const(self):
        state = HistoricalState.from_rows(KV, [([1, 2], [(0, 5)])])
        assert Const(state).evaluate(EMPTY_DATABASE) == state

    def test_non_state_rejected(self):
        with pytest.raises(ExpressionError):
            Const("not a state")  # type: ignore[arg-type]


class TestOperators:
    def test_union(self):
        e = Union(const((1, 1)), const((2, 2)))
        assert e.evaluate(EMPTY_DATABASE) == kv((1, 1), (2, 2))

    def test_difference(self):
        e = Difference(const((1, 1), (2, 2)), const((1, 1)))
        assert e.evaluate(EMPTY_DATABASE) == kv((2, 2))

    def test_product(self):
        other = Const(SnapshotState(Schema(["x"]), [["a"]]))
        e = Product(const((1, 1)), other)
        result = e.evaluate(EMPTY_DATABASE)
        assert result.schema.names == ("k", "v", "x")
        assert len(result) == 1

    def test_project(self):
        e = Project(const((1, 10), (2, 10)), ["v"])
        assert e.evaluate(EMPTY_DATABASE).sorted_rows() == [(10,)]

    def test_select(self):
        e = Select(const((1, 10), (2, 20)), Comparison(attr("v"), ">", lit(15)))
        assert e.evaluate(EMPTY_DATABASE).sorted_rows() == [(2, 20)]

    def test_rename(self):
        e = Rename(const((1, 10)), {"k": "key"})
        assert e.evaluate(EMPTY_DATABASE).schema.names == ("key", "v")

    def test_mixed_kinds_rejected(self):
        historical = Const(
            HistoricalState.from_rows(KV, [([1, 2], [(0, 5)])])
        )
        with pytest.raises(ExpressionError, match="mix"):
            Union(const((1, 1)), historical).evaluate(EMPTY_DATABASE)

    def test_derive_on_snapshot_rejected(self):
        with pytest.raises(ExpressionError):
            Derive(const((1, 1))).evaluate(EMPTY_DATABASE)

    def test_derive_on_historical(self):
        state = HistoricalState.from_rows(
            KV, [([1, 2], [(0, 5)]), ([3, 4], [(8, 9)])]
        )
        e = Derive(Const(state), predicate=ValidAt(ValidTime(), 2))
        assert e.evaluate(EMPTY_DATABASE) == HistoricalState.from_rows(
            KV, [([1, 2], [(0, 5)])]
        )

    def test_sugar_builders(self):
        e = (
            const((1, 1), (2, 2))
            .union(const((3, 3)))
            .select(Comparison(attr("k"), ">", lit(1)))
            .project(["k"])
        )
        assert e.evaluate(EMPTY_DATABASE).sorted_rows() == [(2,), (3,)]


class TestRollback:
    def test_rollback_to_past(self, rollback_db, faculty_states):
        # states installed at txns 2, 3, 4
        assert Rollback("faculty", 2).evaluate(rollback_db) == (
            faculty_states[0]
        )
        assert Rollback("faculty", 3).evaluate(rollback_db) == (
            faculty_states[1]
        )

    def test_rollback_interpolates(self, rollback_db, faculty_states):
        # txn 100 is after the last state; FINDSTATE takes the largest <=
        assert Rollback("faculty", 100).evaluate(rollback_db) == (
            faculty_states[2]
        )

    def test_rollback_now(self, rollback_db, faculty_states):
        assert Rollback("faculty", NOW).evaluate(rollback_db) == (
            faculty_states[2]
        )

    def test_default_numeral_is_now(self, rollback_db, faculty_states):
        assert Rollback("faculty").evaluate(rollback_db) == (
            faculty_states[2]
        )

    def test_rollback_before_first_is_empty_set(self, rollback_db):
        result = Rollback("faculty", 0).evaluate(rollback_db)
        assert is_empty_set(result)

    def test_unknown_relation_raises(self, rollback_db):
        with pytest.raises(UnknownRelationError):
            Rollback("ghost", NOW).evaluate(rollback_db)

    def test_snapshot_relation_rollback_to_past_rejected(self):
        db = run(
            [
                DefineRelation("s", "snapshot"),
                ModifyState("s", const((1, 1))),
            ]
        )
        # N = ∞ is legal on snapshot relations ...
        assert Rollback("s", NOW).evaluate(db) == kv((1, 1))
        # ... but a concrete past transaction is not (paper Section 3.1).
        with pytest.raises(RelationTypeError):
            Rollback("s", 1).evaluate(db)

    def test_rollback_on_temporal_relation(self):
        h1 = HistoricalState.from_rows(KV, [([1, 2], [(0, 5)])])
        h2 = HistoricalState.from_rows(
            KV, [([1, 2], [(0, 5)]), ([3, 4], [(2, 9)])]
        )
        db = run(
            [
                DefineRelation("t", "temporal"),
                ModifyState("t", Const(h1)),
                ModifyState("t", Const(h2)),
            ]
        )
        assert Rollback("t", 2).evaluate(db) == h1
        assert Rollback("t", NOW).evaluate(db) == h2


class TestEmptySetPropagation:
    """The untyped ∅ that FINDSTATE returns must flow through the
    operators with set-theoretic meaning."""

    @pytest.fixture
    def fresh_db(self):
        return run([DefineRelation("r", "rollback")])

    def test_union_identity(self, fresh_db):
        e = Union(Rollback("r"), const((1, 1)))
        assert e.evaluate(fresh_db) == kv((1, 1))
        e = Union(const((1, 1)), Rollback("r"))
        assert e.evaluate(fresh_db) == kv((1, 1))

    def test_difference(self, fresh_db):
        assert is_empty_set(
            Difference(Rollback("r"), const((1, 1))).evaluate(fresh_db)
        )
        assert Difference(const((1, 1)), Rollback("r")).evaluate(
            fresh_db
        ) == kv((1, 1))

    def test_product_annihilates(self, fresh_db):
        assert is_empty_set(
            Product(Rollback("r"), const((1, 1))).evaluate(fresh_db)
        )

    def test_unary_operators_propagate(self, fresh_db):
        assert is_empty_set(
            Project(Rollback("r"), ["k"]).evaluate(fresh_db)
        )
        assert is_empty_set(
            Select(
                Rollback("r"), Comparison(attr("k"), "=", lit(1))
            ).evaluate(fresh_db)
        )
        assert is_empty_set(
            Rename(Rollback("r"), {"k": "x"}).evaluate(fresh_db)
        )
        assert is_empty_set(Derive(Rollback("r")).evaluate(fresh_db))


class TestSideEffectFreedom:
    """Claim C1: evaluation of an expression on a specific database does
    not change that database."""

    def test_rollback_does_not_change_database(self, rollback_db):
        before = rollback_db
        Rollback("faculty", 2).evaluate(rollback_db)
        Rollback("faculty", NOW).evaluate(rollback_db)
        assert rollback_db == before

    def test_complex_expression_does_not_change_database(self, rollback_db):
        before_state = rollback_db.state
        before_txn = rollback_db.transaction_number
        e = Project(
            Select(
                Union(
                    Rollback("faculty", 2), Rollback("faculty", NOW)
                ),
                Comparison(attr("rank"), "!=", lit("emeritus")),
            ),
            ["name"],
        )
        e.evaluate(rollback_db)
        assert rollback_db.state == before_state
        assert rollback_db.transaction_number == before_txn

    @settings(max_examples=30)
    @given(kv_states(), kv_states())
    def test_evaluate_helper_is_pure(self, a, b):
        e = Union(Const(a), Const(b))
        first = evaluate(e, EMPTY_DATABASE)
        second = evaluate(e, EMPTY_DATABASE)
        assert first == second


class TestStructuralEquality:
    def test_expression_trees_hashable(self):
        a = Project(Union(const((1, 1)), Rollback("r", 3)), ["k"])
        b = Project(Union(const((1, 1)), Rollback("r", 3)), ["k"])
        assert a == b
        assert len({a, b}) == 1

    def test_rollback_identity(self):
        assert Rollback("r", 3) == Rollback("r", 3)
        assert Rollback("r", 3) != Rollback("r", 4)
        assert Rollback("r", NOW) == Rollback("r")

    def test_invalid_rollback_arguments(self):
        with pytest.raises(ExpressionError):
            Rollback("", 3)
        from repro.errors import RollbackError

        with pytest.raises(RollbackError):
            Rollback("r", -1)
