"""Tests for relations, FINDSTATE and the other auxiliary functions."""

import pytest

from repro.errors import RelationTypeError, RollbackError
from repro.core.relation import (
    EMPTY_STATE,
    Relation,
    RelationType,
    find_state,
    find_type,
)
from repro.core.txn import NOW, as_transaction_number, is_now
from repro.historical.state import HistoricalState
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema(["k"])


def snap(*rows):
    return SnapshotState(KV, [[r] for r in rows])


class TestTransactionNumbers:
    def test_as_transaction_number(self):
        assert as_transaction_number(0) == 0
        assert as_transaction_number(42) == 42

    def test_negative_rejected(self):
        with pytest.raises(RollbackError):
            as_transaction_number(-1)

    def test_bool_rejected(self):
        with pytest.raises(RollbackError):
            as_transaction_number(True)

    def test_now_is_greatest(self):
        assert NOW > 10**12
        assert is_now(NOW)
        assert not is_now(5)

    def test_now_singleton(self):
        from repro.core.txn import _Now

        assert _Now() is NOW


class TestRelationType:
    def test_from_name(self):
        assert RelationType.from_name("rollback") is RelationType.ROLLBACK
        assert RelationType.from_name("SNAPSHOT") is RelationType.SNAPSHOT

    def test_unknown_rejected(self):
        with pytest.raises(RelationTypeError):
            RelationType.from_name("bitemporal")

    def test_keeps_history(self):
        assert RelationType.ROLLBACK.keeps_history
        assert RelationType.TEMPORAL.keeps_history
        assert not RelationType.SNAPSHOT.keeps_history
        assert not RelationType.HISTORICAL.keeps_history

    def test_stores_valid_time(self):
        assert RelationType.HISTORICAL.stores_valid_time
        assert RelationType.TEMPORAL.stores_valid_time
        assert not RelationType.SNAPSHOT.stores_valid_time
        assert not RelationType.ROLLBACK.stores_valid_time


class TestRelationConstruction:
    def test_empty_sequence(self):
        r = Relation(RelationType.ROLLBACK, ())
        assert r.history_length == 0
        assert r.current_state is EMPTY_STATE

    def test_strictly_increasing_enforced(self):
        with pytest.raises(RelationTypeError):
            Relation(
                RelationType.ROLLBACK,
                [(snap(1), 3), (snap(2), 3)],
            )

    def test_snapshot_single_element_enforced(self):
        with pytest.raises(RelationTypeError):
            Relation(
                RelationType.SNAPSHOT,
                [(snap(1), 1), (snap(2), 2)],
            )

    def test_state_kind_enforced(self):
        historical = HistoricalState.empty(KV)
        with pytest.raises(RelationTypeError):
            Relation(RelationType.ROLLBACK, [(historical, 1)])
        with pytest.raises(RelationTypeError):
            Relation(RelationType.TEMPORAL, [(snap(1), 1)])


class TestFindState:
    @pytest.fixture
    def relation(self):
        return Relation(
            RelationType.ROLLBACK,
            [(snap(1), 2), (snap(1, 2), 5), (snap(3), 9)],
        )

    def test_exact_hit(self, relation):
        assert find_state(relation, 5) == snap(1, 2)

    def test_interpolation(self, relation):
        # paper: largest transaction number <= the probe
        assert find_state(relation, 7) == snap(1, 2)
        assert find_state(relation, 4) == snap(1)

    def test_after_last(self, relation):
        assert find_state(relation, 100) == snap(3)

    def test_before_first_is_empty(self, relation):
        assert find_state(relation, 1) is EMPTY_STATE

    def test_empty_sequence_is_empty(self):
        empty = Relation(RelationType.ROLLBACK, ())
        assert find_state(empty, 10) is EMPTY_STATE

    def test_method_matches_function(self, relation):
        for probe in range(0, 12):
            assert relation.find_state(probe) == find_state(
                relation, probe
            )

    def test_find_type_constant(self, relation):
        assert find_type(relation, 0) is RelationType.ROLLBACK
        assert find_type(relation, 100) is RelationType.ROLLBACK


class TestWithNewState:
    def test_rollback_appends(self):
        r = Relation(RelationType.ROLLBACK, [(snap(1), 1)])
        r2 = r.with_new_state(snap(2), 2)
        assert r2.history_length == 2
        assert r.history_length == 1  # original untouched

    def test_snapshot_replaces(self):
        r = Relation(RelationType.SNAPSHOT, [(snap(1), 1)])
        r2 = r.with_new_state(snap(2), 2)
        assert r2.history_length == 1
        assert r2.current_state == snap(2)

    def test_transaction_numbers_accessor(self):
        r = Relation(
            RelationType.ROLLBACK, [(snap(1), 2), (snap(2), 7)]
        )
        assert r.transaction_numbers == (2, 7)
