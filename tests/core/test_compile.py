"""Tests for the compiled expression engine.

:func:`repro.core.compile.compile_expression` must be a drop-in for
``expression.evaluate`` (C6 observation equivalence by construction —
every step dispatches through the same ``NODE_HANDLERS`` table), while
flattening the tree once: common subexpressions share one step, deep
chains neither recurse nor re-walk, and DAG-shaped trees compile in time
proportional to their *distinct* subtrees.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.commands import DefineRelation, ModifyState
from repro.core.compile import CompiledPlan, compile_expression
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Difference,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
    evaluate,
    is_empty_set,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

from tests.conftest import kv_states

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


@pytest.fixture
def db():
    return run(
        [
            DefineRelation("r", "rollback"),
            ModifyState("r", Const(kv((1, 10), (2, 20), (3, 30)))),
            ModifyState("r", Const(kv((1, 11), (4, 40)))),
            DefineRelation("empty", "rollback"),
        ]
    )


class TestEquivalence:
    def test_leaf_only(self, db):
        plan = compile_expression(Rollback("r", NOW))
        assert plan(db) == evaluate(Rollback("r", NOW), db)

    def test_const_leaf(self):
        state = kv((1, 1))
        plan = compile_expression(Const(state))
        assert plan(EMPTY_DATABASE) == state

    def test_delete_shape(self, db):
        source = Rollback("r", NOW)
        doomed = Select(source, Comparison(attr("k"), "=", lit(1)))
        query = Difference(source, doomed)
        assert compile_expression(query)(db) == evaluate(query, db)

    def test_untyped_empty_set_flows_through(self, db):
        query = Select(
            Rollback("empty", NOW), Comparison(attr("k"), "=", lit(1))
        )
        result = compile_expression(query)(db)
        assert is_empty_set(result)
        assert is_empty_set(evaluate(query, db))

    def test_historical_rollback(self, db):
        # rollback to a historical transaction number, compiled
        query = Union(Rollback("r", 2), Rollback("r", NOW))
        assert compile_expression(query)(db) == evaluate(query, db)

    @settings(max_examples=30, deadline=None)
    @given(kv_states(), kv_states())
    def test_random_states_agree(self, left, right):
        database = run(
            [
                DefineRelation("a", "rollback"),
                ModifyState("a", Const(left)),
                DefineRelation("b", "rollback"),
                ModifyState("b", Const(right)),
            ]
        )
        query = Project(
            Select(
                Union(Rollback("a", NOW), Rollback("b", NOW)),
                Comparison(attr("k"), ">", lit(3)),
            ),
            ("k",),
        )
        assert compile_expression(query)(database) == evaluate(
            query, database
        )


class TestPlanShape:
    def test_cse_shares_steps(self):
        source = Rollback("r", NOW)
        query = Difference(
            source, Select(source, Comparison(attr("k"), "=", lit(1)))
        )
        plan = compile_expression(query)
        # ρ appears twice in the tree but holds one step
        assert plan.node_count == 4
        assert plan.step_count == 3

    def test_reuse_across_calls(self, db):
        query = Union(Rollback("r", NOW), Rollback("r", 2))
        plan = compile_expression(query)
        first = plan(db)
        second = plan(db)
        assert first == second == evaluate(query, db)

    def test_deep_chain_compiles_iteratively(self, db):
        # far past the default recursion limit if compilation recursed
        query = Rollback("r", NOW)
        for index in range(5000):
            query = Select(
                query, Comparison(attr("k"), ">=", lit(-index))
            )
        plan = compile_expression(query)
        assert plan.step_count == 5001
        assert plan(db) == db.require("r").current_state

    def test_dag_counts_tree_nodes_without_walking_them(self):
        # e_{n+1} = e_n ∪ e_n: 2^200-node tree, 201 distinct subtrees
        expression = Const(kv((1, 1)))
        for _ in range(200):
            expression = Union(expression, expression)
        plan = compile_expression(expression)
        assert plan.step_count == 201
        assert plan.node_count == 2**201 - 1

    def test_repr_mentions_sharing(self):
        source = Rollback("r", NOW)
        plan = compile_expression(Union(source, source))
        assert "2 steps" in repr(plan)
        assert "3 tree nodes" in repr(plan)


class TestEngineMetrics:
    def test_compile_and_execute_counters(self, db):
        from repro.obsv import registry as obsv_registry
        from repro.obsv.registry import MetricsRegistry

        registry = obsv_registry.enable(MetricsRegistry())
        try:
            source = Rollback("r", NOW)
            query = Difference(
                source,
                Select(source, Comparison(attr("k"), "=", lit(1))),
            )
            plan = compile_expression(query)
            plan(db)
            plan(db)
            counters = registry.snapshot()["counters"]
        finally:
            obsv_registry.disable()
        assert counters["engine.plans_compiled"] == 1
        assert counters["engine.steps_compiled"] == 3
        assert counters["engine.cse_nodes_saved"] == 1
        assert counters["engine.plan_executions"] == 2
        assert counters["engine.steps_executed"] == 6

    def test_disabled_is_silent(self, db):
        from repro.obsv import registry as obsv_registry

        assert not obsv_registry.enabled()
        plan = compile_expression(Union(Rollback("r", NOW), Rollback("r", 2)))
        plan(db)  # must not raise with no observer installed
