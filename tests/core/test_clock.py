"""Tests for the wall-clock transaction log (AS OF <instant>)."""

import pytest

from repro.errors import RollbackError
from repro.core.clock import TransactionClock
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, is_empty_set
from repro.core.sentences import run
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def kv(*keys):
    return SnapshotState(KV, [[k] for k in keys])


@pytest.fixture
def db_and_clock():
    """States at txns 2, 3, 4, committed at instants 100, 250, 400."""
    db = run(
        [
            DefineRelation("r", "rollback"),     # txn 1
            ModifyState("r", Const(kv(1))),      # txn 2
            ModifyState("r", Const(kv(1, 2))),   # txn 3
            ModifyState("r", Const(kv(3))),      # txn 4
        ]
    )
    clock = TransactionClock()
    clock.record(1, 50)
    clock.record(2, 100)
    clock.record(3, 250)
    clock.record(4, 400)
    return db, clock


class TestRecording:
    def test_non_increasing_txn_rejected(self):
        clock = TransactionClock()
        clock.record(3, 10)
        with pytest.raises(RollbackError):
            clock.record(3, 20)

    def test_non_increasing_instant_rejected(self):
        clock = TransactionClock()
        clock.record(1, 10)
        with pytest.raises(RollbackError):
            clock.record(2, 10)

    def test_len(self, db_and_clock):
        _, clock = db_and_clock
        assert len(clock) == 4


class TestResolution:
    def test_exact_instant(self, db_and_clock):
        _, clock = db_and_clock
        assert clock.txn_as_of(250) == 3

    def test_between_instants(self, db_and_clock):
        _, clock = db_and_clock
        assert clock.txn_as_of(300) == 3
        assert clock.txn_as_of(399) == 3
        assert clock.txn_as_of(99) == 1

    def test_after_everything(self, db_and_clock):
        _, clock = db_and_clock
        assert clock.txn_as_of(10**9) == 4

    def test_before_everything(self, db_and_clock):
        _, clock = db_and_clock
        assert clock.txn_as_of(0) is None

    def test_instant_of(self, db_and_clock):
        _, clock = db_and_clock
        assert clock.instant_of(3) == 250
        with pytest.raises(RollbackError):
            clock.instant_of(99)


class TestAsOfQuery:
    def test_rollback_as_of(self, db_and_clock):
        db, clock = db_and_clock
        assert clock.rollback_as_of(db, "r", 100) == kv(1)
        assert clock.rollback_as_of(db, "r", 300) == kv(1, 2)
        assert clock.rollback_as_of(db, "r", 10**9) == kv(3)

    def test_instant_before_any_commit(self, db_and_clock):
        db, clock = db_and_clock
        with pytest.raises(RollbackError, match="no transaction"):
            clock.rollback_as_of(db, "r", 1)

    def test_instant_before_relation_had_state(self, db_and_clock):
        db, clock = db_and_clock
        # instant 60 resolves to txn 1, when r existed but had no state
        result = clock.rollback_as_of(db, "r", 60)
        assert is_empty_set(result)
