"""Tests for the semantic function C: define_relation, modify_state,
sequencing — including the paper's exact no-op semantics and the
append/delete/replace encodings (claim C3)."""

import pytest

from repro.errors import CommandError, RelationTypeError
from repro.core.commands import (
    DefineRelation,
    ModifyState,
    Sequence,
    execute,
    sequence,
)
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Difference,
    Rollback,
    Select,
    Union,
)
from repro.core.relation import RelationType
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.historical.state import HistoricalState
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


def const(*rows):
    return Const(kv(*rows))


class TestDefineRelation:
    def test_binds_and_increments(self):
        db = DefineRelation("r", "rollback").execute(EMPTY_DATABASE)
        assert db.transaction_number == 1
        relation = db.require("r")
        assert relation.rtype is RelationType.ROLLBACK
        assert relation.history_length == 0

    def test_accepts_enum(self):
        db = DefineRelation("r", RelationType.TEMPORAL).execute(
            EMPTY_DATABASE
        )
        assert db.require("r").rtype is RelationType.TEMPORAL

    def test_redefinition_is_noop(self):
        db1 = DefineRelation("r", "rollback").execute(EMPTY_DATABASE)
        db2 = DefineRelation("r", "snapshot").execute(db1)
        # paper: "the command leaves the database unchanged"
        assert db2 == db1
        assert db2.require("r").rtype is RelationType.ROLLBACK

    def test_strict_redefinition_raises(self):
        db1 = DefineRelation("r", "rollback").execute(EMPTY_DATABASE)
        with pytest.raises(CommandError):
            DefineRelation("r", "rollback", strict=True).execute(db1)

    def test_invalid_identifier(self):
        with pytest.raises(CommandError):
            DefineRelation("", "rollback")


class TestModifyState:
    def test_rollback_appends(self):
        db = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", const((1, 1))),
                ModifyState("r", const((2, 2))),
            ]
        )
        relation = db.require("r")
        assert relation.history_length == 2
        assert relation.transaction_numbers == (2, 3)

    def test_snapshot_replaces(self):
        db = run(
            [
                DefineRelation("s", "snapshot"),
                ModifyState("s", const((1, 1))),
                ModifyState("s", const((2, 2))),
            ]
        )
        relation = db.require("s")
        assert relation.history_length == 1
        assert relation.current_state == kv((2, 2))
        # the single element carries the latest transaction number
        assert relation.transaction_numbers == (3,)

    def test_unbound_identifier_is_noop(self):
        db = ModifyState("ghost", const((1, 1))).execute(EMPTY_DATABASE)
        assert db == EMPTY_DATABASE

    def test_strict_unbound_raises(self):
        with pytest.raises(CommandError):
            ModifyState("ghost", const((1, 1)), strict=True).execute(
                EMPTY_DATABASE
            )

    def test_expression_sees_pre_change_database(self):
        # modify_state evaluates E against the database *before* the
        # change: ρ(r, now) inside the expression yields the old state.
        db = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", const((1, 1))),
                ModifyState(
                    "r", Union(Rollback("r", NOW), const((2, 2)))
                ),
            ]
        )
        assert Rollback("r", NOW).evaluate(db) == kv((1, 1), (2, 2))

    def test_state_kind_mismatch_rejected(self):
        historical = Const(
            HistoricalState.from_rows(KV, [([1, 2], [(0, 5)])])
        )
        db = run([DefineRelation("r", "rollback")])
        with pytest.raises(RelationTypeError):
            ModifyState("r", historical).execute(db)
        db2 = run([DefineRelation("t", "temporal")])
        with pytest.raises(RelationTypeError):
            ModifyState("t", const((1, 1))).execute(db2)

    def test_empty_set_without_prior_state_rejected(self):
        db = run([DefineRelation("r", "rollback")])
        with pytest.raises(CommandError, match="untyped empty set"):
            ModifyState(
                "r", Difference(Rollback("r"), Rollback("r"))
            ).execute(db)

    def test_empty_set_with_prior_state_borrows_schema(self):
        db = run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", const((1, 1))),
                ModifyState(
                    "r", Difference(Rollback("r"), Rollback("r"))
                ),
            ]
        )
        current = Rollback("r", NOW).evaluate(db)
        assert current.is_empty()
        assert current.schema == KV

    def test_non_expression_rejected(self):
        with pytest.raises(CommandError):
            ModifyState("r", kv((1, 1)))  # type: ignore[arg-type]


class TestUpdateEncodings:
    """Claim C3: append, delete and replace are all modify_state with a
    suitable expression (Section 3.5)."""

    @pytest.fixture
    def db(self):
        return run(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", const((1, 10), (2, 20))),
            ]
        )

    def test_append(self, db):
        db = ModifyState(
            "r", Union(Rollback("r", NOW), const((3, 30)))
        ).execute(db)
        assert Rollback("r", NOW).evaluate(db) == kv(
            (1, 10), (2, 20), (3, 30)
        )

    def test_delete(self, db):
        doomed = Select(
            Rollback("r", NOW), Comparison(attr("k"), "=", lit(1))
        )
        db = ModifyState(
            "r", Difference(Rollback("r", NOW), doomed)
        ).execute(db)
        assert Rollback("r", NOW).evaluate(db) == kv((2, 20))

    def test_replace(self, db):
        matched = Select(
            Rollback("r", NOW), Comparison(attr("k"), "=", lit(2))
        )
        replacement = const((2, 99))
        db = ModifyState(
            "r",
            Union(
                Difference(Rollback("r", NOW), matched), replacement
            ),
        ).execute(db)
        assert Rollback("r", NOW).evaluate(db) == kv((1, 10), (2, 99))

    def test_history_preserved_through_updates(self, db):
        before = Rollback("r", NOW).evaluate(db)
        db = ModifyState(
            "r", Union(Rollback("r", NOW), const((3, 30)))
        ).execute(db)
        # the pre-update state is still reachable at its old txn
        assert Rollback("r", 2).evaluate(db) == before


class TestSequencing:
    def test_order(self):
        program = Sequence(
            DefineRelation("r", "rollback"),
            ModifyState("r", const((1, 1))),
        )
        db = program.execute(EMPTY_DATABASE)
        assert db.transaction_number == 2
        assert Rollback("r", NOW).evaluate(db) == kv((1, 1))

    def test_sequence_helper_folds(self):
        program = sequence(
            [
                DefineRelation("r", "rollback"),
                ModifyState("r", const((1, 1))),
                ModifyState("r", const((2, 2))),
            ]
        )
        db = program.execute(EMPTY_DATABASE)
        assert db.require("r").history_length == 2

    def test_empty_sequence_rejected(self):
        with pytest.raises(CommandError):
            sequence([])

    def test_execute_helper(self):
        db = execute(DefineRelation("r", "rollback"), EMPTY_DATABASE)
        assert db.transaction_number == 1

    def test_then_sugar(self):
        program = DefineRelation("r", "rollback").then(
            ModifyState("r", const((1, 1)))
        )
        assert isinstance(program, Sequence)
        assert program.execute(EMPTY_DATABASE).transaction_number == 2
