"""Every example must run to completion — examples are executable
documentation and must not rot."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs(example, capsys, monkeypatch):
    # examples guard their body with `if __name__ == "__main__"`, so run
    # them as __main__
    monkeypatch.setattr(sys, "argv", [str(example)])
    runpy.run_path(str(example), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{example.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 7
