"""The read-path performance engine: O(1) hot reads, the version-aware
LRU state cache, the cheap metadata accessors, and the `define`
redefinition no-op.

Correctness framing is the paper's Section 5 throughout: every fast path
must answer exactly what the replay path answers.  The randomized
differential sweep lives in ``test_cache_differential.py``; these are the
targeted unit tests.
"""

from __future__ import annotations

import pytest

from repro.errors import CommandError, StorageError
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    StateCache,
    TupleTimestampBackend,
    VersionedDatabase,
)

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])

BACKEND_FACTORIES = [
    FullCopyBackend,
    DeltaBackend,
    ReverseDeltaBackend,
    lambda **kw: CheckpointDeltaBackend(4, **kw),
    TupleTimestampBackend,
]
BACKEND_IDS = [
    "full-copy",
    "forward-delta",
    "reverse-delta",
    "checkpoint-delta",
    "tuple-timestamp",
]


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


def _populated(factory, versions=8, **kw):
    backend = factory(**kw)
    backend.create("r", _rollback())
    for i in range(versions):
        backend.install("r", kv(*[(j, i) for j in range(i + 1)]), i + 1)
    return backend


def _rollback():
    from repro.core.relation import RelationType

    return RelationType.ROLLBACK


@pytest.fixture(params=BACKEND_FACTORIES, ids=BACKEND_IDS)
def backend_factory(request):
    return request.param


class TestHotReads:
    def test_probe_at_newest_txn_is_installed_state(self, backend_factory):
        backend = _populated(backend_factory)
        newest = backend.latest_txn("r")
        assert backend.state_at("r", newest) == kv(
            *[(j, 7) for j in range(8)]
        )

    def test_probe_after_newest_txn_is_installed_state(
        self, backend_factory
    ):
        backend = _populated(backend_factory)
        assert backend.state_at("r", 10_000) == backend.state_at(
            "r", backend.latest_txn("r")
        )

    def test_hot_read_equals_replay_answer(self, backend_factory):
        hot = _populated(backend_factory)
        cold = _populated(
            backend_factory, hot_reads=False, cache_capacity=0
        )
        for txn in range(0, 12):
            assert hot.state_at("r", txn) == cold.state_at("r", txn), txn

    def test_hot_read_does_no_replay_work(self):
        backend = _populated(DeltaBackend, versions=64)
        # the fast path returns the installed object itself — no
        # reconstruction, no copy
        newest = backend.latest_txn("r")
        first = backend.state_at("r", newest)
        assert backend.state_at("r", newest) is first

    def test_probe_before_first_txn_is_none(self, backend_factory):
        backend = _populated(backend_factory)
        assert backend.state_at("r", 0) is None


class TestMetadataAccessors:
    def test_latest_txn(self, backend_factory):
        backend = _populated(backend_factory, versions=5)
        assert backend.latest_txn("r") == 5

    def test_latest_txn_empty_relation(self, backend_factory):
        backend = backend_factory()
        backend.create("r", _rollback())
        assert backend.latest_txn("r") is None

    def test_version_count(self, backend_factory):
        backend = _populated(backend_factory, versions=5)
        assert backend.version_count("r") == 5
        assert backend.version_count("r") == len(
            backend.transaction_numbers("r")
        )

    def test_unknown_identifier_raises(self, backend_factory):
        backend = backend_factory()
        with pytest.raises(StorageError):
            backend.latest_txn("ghost")
        with pytest.raises(StorageError):
            backend.version_count("ghost")

    def test_instrumented_wrapper_delegates(self):
        from repro.obsv.instrumented import InstrumentedBackend

        backend = InstrumentedBackend(_populated(DeltaBackend, versions=3))
        assert backend.latest_txn("r") == 3
        assert backend.version_count("r") == 3


class TestStateCache:
    def test_repeat_old_probe_served_from_cache(self, backend_factory):
        backend = _populated(backend_factory)
        if isinstance(backend, FullCopyBackend):
            pytest.skip("full-copy reads never reconstruct")
        first = backend.state_at("r", 3)
        before = backend.cache_info()["hits"]
        assert backend.state_at("r", 3) is first  # the memoized object
        assert backend.cache_info()["hits"] == before + 1

    def test_same_version_window_shares_entry(self):
        backend = DeltaBackend()
        backend.create("r", _rollback())
        backend.install("r", kv((1, 1)), 2)
        backend.install("r", kv((2, 2)), 9)
        # every probe in [2, 9) resolves to version 0
        first = backend.state_at("r", 2)
        info = backend.cache_info()
        assert backend.state_at("r", 5) is first
        assert backend.state_at("r", 8) is first
        assert backend.cache_info()["hits"] == info["hits"] + 2

    def test_install_invalidates_identifier(self):
        backend = _populated(DeltaBackend)
        backend.state_at("r", 3)
        assert len(backend.state_cache) == 1
        backend.install("r", kv((99, 99)), 100)
        assert len(backend.state_cache) == 0
        # and the answer after invalidation is still right
        assert backend.state_at("r", 3) == kv(*[(j, 2) for j in range(3)])

    def test_install_keeps_other_identifiers(self):
        backend = _populated(DeltaBackend)
        backend.create("s", _rollback())
        backend.install("s", kv((1, 1)), 50)
        backend.install("s", kv((2, 2)), 51)
        backend.state_at("r", 3)
        backend.state_at("s", 50)
        assert len(backend.state_cache) == 2
        backend.install("r", kv((99, 99)), 100)
        assert len(backend.state_cache) == 1

    def test_capacity_one_evicts(self):
        backend = _populated(DeltaBackend, cache_capacity=1)
        backend.state_at("r", 3)
        backend.state_at("r", 4)  # evicts version 2's entry
        info = backend.cache_info()
        assert info["evictions"] == 1
        assert info["size"] == 1
        assert backend.state_at("r", 3) == kv(*[(j, 2) for j in range(3)])

    def test_capacity_zero_disables(self):
        backend = _populated(DeltaBackend, cache_capacity=0)
        backend.state_at("r", 3)
        backend.state_at("r", 3)
        info = backend.cache_info()
        assert info["hits"] == info["misses"] == info["size"] == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            StateCache(-1)
        with pytest.raises(StorageError):
            DeltaBackend(cache_capacity=-3)

    def test_lru_order(self):
        cache = StateCache(2)
        cache.put(("r", 0), "a")
        cache.put(("r", 1), "b")
        assert cache.get(("r", 0)) == "a"  # refresh version 0
        cache.put(("r", 2), "c")  # evicts version 1, the LRU entry
        assert cache.get(("r", 1)) is None
        assert cache.get(("r", 0)) == "a"
        assert cache.get(("r", 2)) == "c"
        assert cache.evictions == 1


class TestDefineRedefinition:
    """`VersionedDatabase.define` must match the DefineRelation command
    path: the paper's silent no-op on a bound identifier, with
    `strict=True` as the opt-in raise."""

    @pytest.fixture(params=BACKEND_FACTORIES, ids=BACKEND_IDS)
    def vdb(self, request):
        return VersionedDatabase(request.param())

    def test_redefinition_is_silent_noop(self, vdb):
        vdb.define("r", "rollback")
        txn_before = vdb.transaction_number
        vdb.define("r", "snapshot")  # no error, no txn, type retained
        assert vdb.transaction_number == txn_before
        assert vdb.backend.type_of("r").value == "rollback"

    def test_redefinition_strict_raises(self, vdb):
        vdb.define("r", "rollback")
        with pytest.raises(CommandError):
            vdb.define("r", "rollback", strict=True)

    def test_direct_path_matches_command_path(self, vdb):
        from repro.core.commands import DefineRelation
        from repro.core.database import EMPTY_DATABASE

        pure = EMPTY_DATABASE
        for command in (
            DefineRelation("r", "rollback"),
            DefineRelation("r", "snapshot"),  # paper no-op
        ):
            pure = command.execute(pure)
        vdb.define("r", "rollback")
        vdb.define("r", "snapshot")
        assert vdb.transaction_number == pure.transaction_number
        assert (
            vdb.backend.type_of("r") == pure.state.require("r").rtype
        )
