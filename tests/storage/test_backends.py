"""Tests shared by every storage backend: the write/read contract and
observation equivalence with the full-copy oracle (paper claim C6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    backends_agree,
)
from repro.workloads import churn_stream

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])

BACKEND_FACTORIES = [
    FullCopyBackend,
    DeltaBackend,
    ReverseDeltaBackend,
    lambda: CheckpointDeltaBackend(4),
    TupleTimestampBackend,
]
BACKEND_IDS = [
    "full-copy",
    "forward-delta",
    "reverse-delta",
    "checkpoint-delta",
    "tuple-timestamp",
]


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


@pytest.fixture(params=BACKEND_FACTORIES, ids=BACKEND_IDS)
def backend(request):
    return request.param()


class TestContract:
    def test_create_and_type(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        assert backend.type_of("r") is RelationType.ROLLBACK
        assert backend.identifiers() == ("r",)

    def test_duplicate_create_rejected(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        with pytest.raises(StorageError):
            backend.create("r", RelationType.ROLLBACK)

    def test_unknown_relation_rejected(self, backend):
        with pytest.raises(StorageError):
            backend.state_at("ghost", 1)

    def test_state_before_first_is_none(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        backend.install("r", kv((1, 1)), 5)
        assert backend.state_at("r", 4) is None

    def test_findstate_interpolation(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        backend.install("r", kv((1, 1)), 2)
        backend.install("r", kv((2, 2)), 5)
        backend.install("r", kv((3, 3)), 9)
        assert backend.state_at("r", 2) == kv((1, 1))
        assert backend.state_at("r", 4) == kv((1, 1))
        assert backend.state_at("r", 5) == kv((2, 2))
        assert backend.state_at("r", 8) == kv((2, 2))
        assert backend.state_at("r", 100) == kv((3, 3))

    def test_non_increasing_txn_rejected(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        backend.install("r", kv((1, 1)), 3)
        with pytest.raises(StorageError):
            backend.install("r", kv((2, 2)), 3)

    def test_snapshot_type_keeps_only_latest(self, backend):
        backend.create("s", RelationType.SNAPSHOT)
        backend.install("s", kv((1, 1)), 1)
        backend.install("s", kv((2, 2)), 2)
        assert backend.state_at("s", 2) == kv((2, 2))
        # the old version is gone (replacement semantics)
        assert backend.state_at("s", 1) is None

    def test_transaction_numbers(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        backend.install("r", kv((1, 1)), 2)
        backend.install("r", kv((2, 2)), 7)
        assert backend.transaction_numbers("r") == (2, 7)

    def test_empty_state_round_trips(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        backend.install("r", kv((1, 1)), 1)
        backend.install("r", SnapshotState.empty(KV), 2)
        backend.install("r", kv((2, 2)), 3)
        assert backend.state_at("r", 2) == SnapshotState.empty(KV)
        assert backend.state_at("r", 3) == kv((2, 2))

    def test_accounting_nonnegative(self, backend):
        backend.create("r", RelationType.ROLLBACK)
        backend.install("r", kv((1, 1), (2, 2)), 1)
        assert backend.stored_atoms() >= 2
        assert backend.stored_versions() >= 1


class TestEquivalenceWithOracle:
    """Every optimized backend must agree with FullCopyBackend on every
    probe (claim C6's correctness criterion)."""

    @pytest.mark.parametrize("churn", [0.05, 0.3, 0.9])
    def test_snapshot_streams(self, churn):
        states = churn_stream(40, cardinality=25, churn=churn, seed=11)
        backends = [factory() for factory in BACKEND_FACTORIES]
        for b in backends:
            b.create("r", RelationType.ROLLBACK)
        for txn, state in enumerate(states, start=1):
            for b in backends:
                b.install("r", state, txn)
        probes = [("r", t) for t in range(0, len(states) + 3)]
        assert backends_agree(backends, probes)

    def test_historical_streams(self):
        states = churn_stream(
            25, cardinality=12, churn=0.3, seed=5, historical=True
        )
        backends = [factory() for factory in BACKEND_FACTORIES]
        for b in backends:
            b.create("t", RelationType.TEMPORAL)
        for txn, state in enumerate(states, start=1):
            for b in backends:
                b.install("t", state, txn)
        probes = [("t", t) for t in range(0, len(states) + 3)]
        assert backends_agree(backends, probes)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_randomized_equivalence(self, seed, churn):
        states = churn_stream(
            15, cardinality=8, churn=churn, seed=seed
        )
        backends = [factory() for factory in BACKEND_FACTORIES]
        for b in backends:
            b.create("r", RelationType.ROLLBACK)
        for txn, state in enumerate(states, start=1):
            for b in backends:
                b.install("r", state, txn)
        probes = [("r", t) for t in range(0, len(states) + 2)]
        assert backends_agree(backends, probes)

    def test_disagreement_is_reported(self):
        good = FullCopyBackend()
        bad = FullCopyBackend()
        for b in (good, bad):
            b.create("r", RelationType.ROLLBACK)
        good.install("r", kv((1, 1)), 1)
        bad.install("r", kv((2, 2)), 1)
        with pytest.raises(StorageError, match="disagree"):
            backends_agree([good, bad], [("r", 1)])


class TestSpaceCharacteristics:
    """The qualitative storage claims E5 quantifies."""

    def test_full_copy_grows_with_state_size_times_history(self):
        states = churn_stream(30, cardinality=50, churn=0.02, seed=3)
        full = FullCopyBackend()
        delta = DeltaBackend()
        for b in (full, delta):
            b.create("r", RelationType.ROLLBACK)
            for txn, state in enumerate(states, start=1):
                b.install("r", state, txn)
        # low churn: deltas are far smaller than full copies
        assert delta.stored_atoms() < full.stored_atoms() / 5

    def test_high_churn_erodes_delta_advantage(self):
        states = churn_stream(10, cardinality=30, churn=1.0, seed=3)
        full = FullCopyBackend()
        delta = DeltaBackend()
        for b in (full, delta):
            b.create("r", RelationType.ROLLBACK)
            for txn, state in enumerate(states, start=1):
                b.install("r", state, txn)
        # full rewrites: deltas store ~2 atoms per changed tuple
        assert delta.stored_atoms() > full.stored_atoms() / 4

    def test_checkpoint_interval_trades_space(self):
        states = churn_stream(40, cardinality=40, churn=0.05, seed=3)
        tight = CheckpointDeltaBackend(2)
        loose = CheckpointDeltaBackend(20)
        for b in (tight, loose):
            b.create("r", RelationType.ROLLBACK)
            for txn, state in enumerate(states, start=1):
                b.install("r", state, txn)
        assert tight.stored_atoms() > loose.stored_atoms()

    def test_checkpoint_interval_validation(self):
        with pytest.raises(StorageError):
            CheckpointDeltaBackend(0)
