"""Regression tests: ``VersionedDatabase.execute`` must honor the
``strict`` and ``memoize`` flags of ``DefineRelation``/``ModifyState``.

Pre-fix, the backend execution path silently dropped both flags — the
exact class of silent physical/logical drift the paper's Section 5
observation-equivalence criterion is supposed to rule out.  Every test
here fails against the pre-fix code.
"""

from __future__ import annotations

import pytest

from repro.errors import CommandError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Difference, Rollback, Select
from repro.core.txn import NOW
from repro.obsv import registry as obsv_registry
from repro.obsv.registry import MetricsRegistry
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    VersionedDatabase,
)

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


@pytest.fixture(
    params=[
        FullCopyBackend,
        DeltaBackend,
        ReverseDeltaBackend,
        lambda: CheckpointDeltaBackend(4),
        TupleTimestampBackend,
    ],
    ids=[
        "full-copy",
        "forward-delta",
        "reverse-delta",
        "checkpoint-delta",
        "tuple-timestamp",
    ],
)
def vdb(request):
    return VersionedDatabase(request.param())


class TestStrict:
    def test_strict_define_on_bound_raises(self, vdb):
        vdb.execute(DefineRelation("r", "rollback"))
        with pytest.raises(CommandError, match="already defined"):
            vdb.execute(DefineRelation("r", "rollback", strict=True))
        # the failed command must not consume a transaction number
        assert vdb.transaction_number == 1

    def test_strict_modify_on_unbound_raises(self, vdb):
        with pytest.raises(CommandError, match="not defined"):
            vdb.execute(
                ModifyState("ghost", Const(kv((1, 1))), strict=True)
            )
        assert vdb.transaction_number == 0

    def test_non_strict_still_noops(self, vdb):
        vdb.execute(DefineRelation("r", "rollback"))
        vdb.execute(DefineRelation("r", "rollback"))  # bound: no-op
        vdb.execute(ModifyState("ghost", Const(kv((1, 1)))))  # unbound
        assert vdb.transaction_number == 1

    def test_strict_define_on_unbound_succeeds(self, vdb):
        vdb.execute(DefineRelation("r", "rollback", strict=True))
        assert vdb.transaction_number == 1

    def test_strict_matches_pure_semantics_error(self, vdb):
        """The pure and physical paths raise for the same inputs."""
        from repro.core.database import EMPTY_DATABASE

        command = ModifyState("ghost", Const(kv((1, 1))), strict=True)
        with pytest.raises(CommandError):
            command.execute(EMPTY_DATABASE)
        with pytest.raises(CommandError):
            vdb.execute(command)


class TestMemoize:
    def _shared_subtree_command(self, memoize: bool) -> ModifyState:
        source = Rollback("r", NOW)
        return ModifyState(
            "r",
            Difference(
                source,
                Select(source, Comparison(attr("k"), "=", lit(1))),
            ),
            memoize=memoize,
        )

    def test_memoize_uses_memoized_evaluator(self, vdb):
        vdb.execute(DefineRelation("r", "rollback"))
        vdb.execute(ModifyState("r", Const(kv((1, 1), (2, 2)))))
        registry = obsv_registry.enable(MetricsRegistry())
        try:
            vdb.execute(self._shared_subtree_command(memoize=True))
            counters = registry.snapshot()["counters"]
            # the repeated ρ(r, now) subtree was served from the cache —
            # impossible if the memoize flag were dropped
            assert counters.get("expr.memo_hits", 0) >= 1
        finally:
            obsv_registry.disable()

    def test_memoized_result_matches_plain(self):
        results = []
        for memoize in (False, True):
            vdb = VersionedDatabase(FullCopyBackend())
            vdb.execute(DefineRelation("r", "rollback"))
            vdb.execute(ModifyState("r", Const(kv((1, 1), (2, 2)))))
            vdb.execute(self._shared_subtree_command(memoize))
            results.append(vdb.current("r"))
        assert results[0] == results[1] == kv((2, 2))
