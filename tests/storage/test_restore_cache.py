"""Regression: ``VersionedDatabase.restore()`` over an already-used
backend must invalidate cached ``(identifier, version_index)``
reconstructions.

Per-install invalidation already covers identifiers the restored
history reinstalls; the hole is entries for identifiers the new history
*doesn't* touch — they would sit in the cache forever, ready to be
served if the identifier's coordinates are ever reused.  With a
capacity-1 cache the leak is maximally visible: the single slot holds
exactly the poisoned entry, and restore must leave the cache empty.
"""

import pytest

from repro.core.commands import DefineRelation, ModifyState, execute
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import Const
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
)
from repro.storage.versioned_db import VersionedDatabase
from repro.workloads.generators import StateGenerator

from tests.durability.conftest import scripted_workload

CACHED_BACKENDS = [
    DeltaBackend,
    ReverseDeltaBackend,
    CheckpointDeltaBackend,
    TupleTimestampBackend,
]


def _database_after(commands):
    database = EMPTY_DATABASE
    for command in commands:
        database = execute(command, database)
    return database


def _old_history_with_extra_relation():
    """The pre-restore history: the scripted workload plus a relation
    ``x`` that the restore target will NOT contain."""
    generator = StateGenerator(seed=123, key_space=10)
    commands = list(scripted_workload(length=20, seed=5))
    commands.append(DefineRelation("x", "rollback"))
    for _ in range(3):
        commands.append(
            ModifyState("x", Const(generator.snapshot_state(2)))
        )
    return commands


@pytest.mark.parametrize("backend_type", CACHED_BACKENDS)
def test_restore_drops_cached_entries_of_vanished_relations(
    backend_type,
):
    backend = backend_type(cache_capacity=1, hot_reads=False)
    vdb = VersionedDatabase(backend)
    for command in _old_history_with_extra_relation():
        vdb.execute(command)
    # warm the single cache slot with a reconstruction of "x" — an
    # identifier the restore target does not define
    vdb.state_at("x", vdb.transaction_number)
    assert len(backend.state_cache) == 1

    target = _database_after(scripted_workload(length=30, seed=99))
    vdb.restore(target)
    assert len(backend.state_cache) == 0, (
        "restore retained a cached reconstruction from the replaced "
        "history"
    )
    assert "x" not in backend.identifiers()
    assert vdb.transaction_number == target.transaction_number


@pytest.mark.parametrize("backend_type", CACHED_BACKENDS)
def test_restore_over_used_backend_answers_like_fresh(backend_type):
    backend = backend_type(cache_capacity=1)
    vdb = VersionedDatabase(backend)
    for command in scripted_workload(length=40, seed=5):
        vdb.execute(command)
    for identifier in ("r", "t"):
        vdb.state_at(identifier, 20)  # churn the one cache slot

    target = _database_after(scripted_workload(length=40, seed=99))
    vdb.restore(target)
    reference = VersionedDatabase(backend_type(cache_capacity=1))
    reference.restore(target)
    for identifier in ("r", "s", "h", "t"):
        for txn in range(target.transaction_number + 1):
            assert vdb.state_at(identifier, txn) == reference.state_at(
                identifier, txn
            ), (identifier, txn)


@pytest.mark.parametrize("backend_type", CACHED_BACKENDS)
def test_clear_empties_relations_and_cache(backend_type):
    backend = backend_type(cache_capacity=4, hot_reads=False)
    vdb = VersionedDatabase(backend)
    for command in scripted_workload(length=20, seed=3):
        vdb.execute(command)
    vdb.state_at("r", vdb.transaction_number)  # populate the cache
    assert len(backend.state_cache) >= 1
    backend.clear()
    assert backend.identifiers() == ()
    assert len(backend.state_cache) == 0
