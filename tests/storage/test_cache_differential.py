"""Differential suite for the read-path engine: `backends_agree` over
randomized update/probe streams with the state cache enabled, disabled,
and eviction-thrashed (capacity 1), across all five backends and all four
relation types.

This is the Section 5 obligation applied to the caching layer: an
optimized read path is only admissible if it is observation-equivalent to
the replay path, and the cheapest way to be wrong is a stale or
mis-keyed cache entry.  Probes are interleaved with installs so every
invalidation boundary is crossed mid-stream, and the full-copy backend —
the paper's semantics, literally, with no cache traffic — is always the
reference.
"""

from __future__ import annotations

import random

import pytest

from repro.core.relation import RelationType
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    backends_agree,
)
from repro.workloads import churn_stream

#: (label, constructor kwargs) — the three cache configurations the
#: satellite task names: default capacity, disabled, eviction-heavy.
CACHE_CONFIGS = [
    ("cache-default", {}),
    ("cache-off", {"cache_capacity": 0}),
    ("cache-capacity-1", {"cache_capacity": 1}),
    ("replay-only", {"cache_capacity": 0, "hot_reads": False}),
]

RELATION_TYPES = [
    RelationType.SNAPSHOT,
    RelationType.ROLLBACK,
    RelationType.HISTORICAL,
    RelationType.TEMPORAL,
]


def _backend_set(**kw):
    return [
        FullCopyBackend(),  # the oracle: no cache, no fast path to get wrong
        DeltaBackend(**kw),
        ReverseDeltaBackend(**kw),
        CheckpointDeltaBackend(4, **kw),
        TupleTimestampBackend(**kw),
    ]


def _stream_for(rtype, length, seed):
    return churn_stream(
        length,
        cardinality=12,
        churn=0.3,
        seed=seed,
        historical=rtype.stores_valid_time,
    )


@pytest.mark.parametrize(
    "config_kw",
    [kw for _, kw in CACHE_CONFIGS],
    ids=[label for label, _ in CACHE_CONFIGS],
)
@pytest.mark.parametrize(
    "rtype", RELATION_TYPES, ids=[t.value for t in RELATION_TYPES]
)
def test_interleaved_update_probe_stream(rtype, config_kw):
    """Install, probe, install, probe — every probe round compares all
    five backends at randomized transaction numbers, so cached entries
    are exercised across invalidation boundaries."""
    length = 24
    rng = random.Random(hash((rtype.value, tuple(sorted(config_kw)))))
    states = _stream_for(rtype, length, seed=7)
    backends = _backend_set(**config_kw)
    for backend in backends:
        backend.create("r", rtype)
    for i, state in enumerate(states):
        txn = i + 1
        for backend in backends:
            backend.install("r", state, txn)
        # revisit a random handful of past (and future) txns after every
        # install — stale cache entries surface here immediately
        probes = [("r", rng.randrange(0, txn + 3)) for _ in range(4)]
        probes.append(("r", txn))  # the hot read itself
        assert backends_agree(backends, probes)


@pytest.mark.parametrize(
    "config_kw",
    [kw for _, kw in CACHE_CONFIGS],
    ids=[label for label, _ in CACHE_CONFIGS],
)
@pytest.mark.parametrize("seed", range(3))
def test_exhaustive_probe_sweep_after_stream(seed, config_kw):
    """After a full randomized rollback stream, probe every transaction
    number twice — the second pass is served largely from the cache and
    must answer identically."""
    length = 30
    states = _stream_for(RelationType.ROLLBACK, length, seed=seed)
    backends = _backend_set(**config_kw)
    for backend in backends:
        backend.create("r", RelationType.ROLLBACK)
    for i, state in enumerate(states):
        for backend in backends:
            backend.install("r", state, i + 1)
    probes = [("r", txn) for txn in range(0, length + 3)]
    assert backends_agree(backends, probes)
    assert backends_agree(backends, probes)  # cached second pass


def test_capacity_one_thrashes_but_agrees():
    """Capacity 1 makes every alternating probe an eviction; the cache
    must thrash, not corrupt."""
    states = _stream_for(RelationType.ROLLBACK, 16, seed=11)
    backends = _backend_set(cache_capacity=1)
    for backend in backends:
        backend.create("r", RelationType.ROLLBACK)
    for i, state in enumerate(states):
        for backend in backends:
            backend.install("r", state, i + 1)
    # alternate between two old versions: every probe evicts the other
    probes = [("r", 3 if i % 2 else 9) for i in range(20)]
    assert backends_agree(backends, probes)
    evicting = [b for b in backends if b.cache_info()["evictions"] > 0]
    assert evicting, "capacity-1 sweep never evicted — cache not exercised"


def test_multi_relation_invalidation_is_scoped():
    """Installing into one relation must not invalidate (or corrupt)
    another's cached states."""
    snapshot_states = _stream_for(RelationType.ROLLBACK, 10, seed=3)
    backends = _backend_set()
    for backend in backends:
        backend.create("a", RelationType.ROLLBACK)
        backend.create("b", RelationType.ROLLBACK)
    txn = 0
    for state in snapshot_states:
        txn += 1
        for backend in backends:
            backend.install("a", state, txn)
        txn += 1
        for backend in backends:
            backend.install("b", state, txn)
        probes = [("a", t) for t in range(0, txn + 2)]
        probes += [("b", t) for t in range(0, txn + 2)]
        assert backends_agree(backends, probes)
