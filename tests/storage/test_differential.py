"""Differential test: the physical :class:`VersionedDatabase` against the
pure denotational :class:`Database` semantics, over every backend.

Section 5 of the paper: a physical implementation is correct iff it is
observation-equivalent to the simple semantics.  Here we drive both
implementations through the same command stream — including the no-op
corners (define on a bound identifier, modify on an unbound one) whose
transaction-number behaviour is easy to get silently wrong — and probe
``state_at`` at every transaction number on every relation.
"""

from __future__ import annotations

import pytest

from repro.core.commands import DefineRelation, ModifyState, sequence
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Difference,
    Rollback,
    Select,
    Union,
    is_empty_set,
)
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    VersionedDatabase,
)

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


# A command stream exercising the semantics corners: real updates, the
# two paper-mandated no-ops, multi-relation interleaving, and a Sequence.
STREAM = [
    DefineRelation("r", "rollback"),
    ModifyState("ghost", Const(kv((1, 1)))),  # unbound: no-op, txn frozen
    ModifyState("r", Const(kv((1, 10), (2, 20)))),
    DefineRelation("r", "snapshot"),  # bound: no-op, txn frozen
    DefineRelation("s", "rollback"),
    ModifyState("s", Union(Rollback("r"), Const(kv((3, 30))))),
    ModifyState(
        "r",
        Difference(
            Rollback("r"),
            Select(Rollback("r"), Comparison(attr("k"), "=", lit(1))),
        ),
    ),
    sequence(
        [
            DefineRelation("t", "rollback"),
            ModifyState("t", Rollback("s")),
            DefineRelation("t", "rollback"),  # bound in sequence: no-op
        ]
    ),
    ModifyState("r", Const(kv((4, 40)))),
]


@pytest.fixture(
    params=[
        FullCopyBackend,
        DeltaBackend,
        ReverseDeltaBackend,
        lambda: CheckpointDeltaBackend(2),
        TupleTimestampBackend,
    ],
    ids=[
        "full-copy",
        "forward-delta",
        "reverse-delta",
        "checkpoint-delta",
        "tuple-timestamp",
    ],
)
def vdb(request):
    return VersionedDatabase(request.param())


def test_stream_matches_pure_database(vdb):
    pure = EMPTY_DATABASE
    for command in STREAM:
        pure = command.execute(pure)
        vdb.execute(command)
        # transaction numbers stay in lock-step after every command —
        # in particular across the no-op define/modify corners
        assert vdb.transaction_number == pure.transaction_number

    assert set(vdb.backend.identifiers()) == set(pure.state.identifiers)
    for identifier in pure.state.identifiers:
        relation = pure.state.require(identifier)
        for txn in range(pure.transaction_number + 1):
            pure_state = relation.find_state(txn)
            physical = vdb.state_at(identifier, txn)
            if is_empty_set(pure_state):
                assert physical is None, (identifier, txn)
            else:
                assert physical == pure_state, (identifier, txn)


def test_noop_define_on_bound_assigns_no_txn(vdb):
    pure = DefineRelation("r", "rollback").execute(EMPTY_DATABASE)
    vdb.execute(DefineRelation("r", "rollback"))
    redefine = DefineRelation("r", "snapshot")
    pure_after = redefine.execute(pure)
    vdb.execute(redefine)
    assert pure_after.transaction_number == pure.transaction_number == 1
    assert vdb.transaction_number == pure_after.transaction_number
    # the original type survives the attempted redefinition
    assert vdb.backend.type_of("r") == pure_after.state.require("r").rtype


def test_noop_modify_on_unbound_assigns_no_txn(vdb):
    command = ModifyState("ghost", Const(kv((1, 1))))
    pure = command.execute(EMPTY_DATABASE)
    vdb.execute(command)
    assert pure.transaction_number == 0
    assert vdb.transaction_number == 0
    assert not vdb.backend.has("ghost")


def test_interleaved_noops_keep_states_aligned(vdb):
    pure = EMPTY_DATABASE
    commands = [
        DefineRelation("r", "rollback"),
        ModifyState("r", Const(kv((1, 1)))),
        DefineRelation("r", "rollback"),  # no-op
        ModifyState("r", Union(Rollback("r"), Const(kv((2, 2))))),
        ModifyState("nope", Const(kv((9, 9)))),  # no-op
        ModifyState("r", Const(kv((3, 3)))),
    ]
    for command in commands:
        pure = command.execute(pure)
        vdb.execute(command)
    assert vdb.transaction_number == pure.transaction_number == 4
    relation = pure.state.require("r")
    for txn in range(5):
        pure_state = relation.find_state(txn)
        physical = vdb.state_at("r", txn)
        if is_empty_set(pure_state):
            assert physical is None
        else:
            assert physical == pure_state
