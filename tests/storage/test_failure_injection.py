"""Failure injection: a corrupted physical representation must be caught
by the observation-equivalence check — the reproduction of the paper's
'verify implementations against the simple semantics' methodology."""

import pytest

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    backends_agree,
)
from repro.workloads import churn_stream, populate_backends

KV = Schema([Attribute("key", INTEGER), Attribute("a1", INTEGER)])


def fresh_pair(sabotage_factory):
    states = churn_stream(20, cardinality=15, churn=0.3, seed=77)
    oracle = FullCopyBackend()
    victim = sabotage_factory()
    populate_backends([oracle, victim], states)
    probes = [("r", txn) for txn in range(0, 23)]
    return oracle, victim, probes


def assert_caught(oracle, victim, probes):
    with pytest.raises(StorageError, match="disagree"):
        backends_agree([oracle, victim], probes)


class TestCorruptionIsDetected:
    def test_dropped_forward_delta(self):
        oracle, victim, probes = fresh_pair(DeltaBackend)
        relation = victim._relations["r"]
        # lose one delta in the middle of the chain
        relation.deltas[5] = (frozenset(), frozenset())
        assert_caught(oracle, victim, probes)

    def test_swapped_undo_records(self):
        oracle, victim, probes = fresh_pair(ReverseDeltaBackend)
        relation = victim._relations["r"]
        relation.undo[3], relation.undo[7] = (
            relation.undo[7],
            relation.undo[3],
        )
        assert_caught(oracle, victim, probes)

    def test_corrupted_checkpoint(self):
        oracle, victim, probes = fresh_pair(
            lambda: CheckpointDeltaBackend(4)
        )
        relation = victim._relations["r"]
        for index, version in enumerate(relation.versions):
            if version.is_checkpoint and index > 0:
                version.checkpoint = frozenset(
                    list(version.checkpoint)[:-1]
                )
                break
        assert_caught(oracle, victim, probes)

    def test_episode_stamp_shifted(self):
        oracle, victim, probes = fresh_pair(TupleTimestampBackend)
        relation = victim._relations["r"]
        atom, start, stop = relation.episodes[4]
        relation.episodes[4] = (atom, start + 1, stop)
        assert_caught(oracle, victim, probes)

    def test_extra_phantom_tuple(self):
        oracle, victim, probes = fresh_pair(TupleTimestampBackend)
        relation = victim._relations["r"]
        schema = relation.schema
        phantom_values = [
            999_999 if attribute.domain.name == "integer" else "phantom"
            for attribute in schema
        ]
        phantom = SnapshotTuple(schema, phantom_values)
        relation.episodes.append((phantom, 3, 9))
        assert_caught(oracle, victim, probes)

    def test_uncorrupted_backends_pass(self):
        states = churn_stream(20, cardinality=15, churn=0.3, seed=77)
        backends = [
            FullCopyBackend(),
            DeltaBackend(),
            ReverseDeltaBackend(),
            CheckpointDeltaBackend(4),
            TupleTimestampBackend(),
        ]
        populate_backends(backends, states)
        assert backends_agree(
            backends, [("r", txn) for txn in range(0, 23)]
        )
