"""Tests for VersionedDatabase: command semantics over physical
backends, equivalence with the in-memory core semantics."""

import pytest

from repro.errors import CommandError, RelationTypeError, UnknownRelationError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Difference,
    Project,
    Rollback,
    Select,
    Union,
    is_empty_set,
)
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    DeltaBackend,
    FullCopyBackend,
    TupleTimestampBackend,
    VersionedDatabase,
)

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def kv(*rows):
    return SnapshotState(KV, [list(r) for r in rows])


COMMANDS = [
    DefineRelation("r", "rollback"),
    ModifyState("r", Const(kv((1, 10)))),
    ModifyState("r", Union(Rollback("r"), Const(kv((2, 20))))),
    ModifyState(
        "r",
        Difference(
            Rollback("r"),
            Select(Rollback("r"), Comparison(attr("k"), "=", lit(1))),
        ),
    ),
]


@pytest.fixture(
    params=[FullCopyBackend, DeltaBackend, TupleTimestampBackend],
    ids=["full-copy", "forward-delta", "tuple-timestamp"],
)
def vdb(request):
    return VersionedDatabase(request.param())


class TestCommandExecution:
    def test_matches_core_semantics(self, vdb):
        vdb.execute_all(COMMANDS)
        core_db = run(COMMANDS)
        assert vdb.transaction_number == core_db.transaction_number
        for txn in range(0, core_db.transaction_number + 1):
            core_relation = core_db.require("r")
            core_state = core_relation.find_state(txn)
            backend_state = vdb.state_at("r", txn)
            if is_empty_set(core_state):
                assert backend_state is None
            else:
                assert backend_state == core_state

    def test_define_noop_on_bound(self, vdb):
        vdb.execute(DefineRelation("r", "rollback"))
        txn = vdb.transaction_number
        vdb.execute(DefineRelation("r", "snapshot"))
        assert vdb.transaction_number == txn

    def test_modify_noop_on_unbound(self, vdb):
        vdb.execute(ModifyState("ghost", Const(kv((1, 1)))))
        assert vdb.transaction_number == 0

    def test_sequence_commands(self, vdb):
        from repro.core.commands import Sequence

        vdb.execute(
            Sequence(
                DefineRelation("r", "rollback"),
                ModifyState("r", Const(kv((1, 1)))),
            )
        )
        assert vdb.transaction_number == 2

    def test_evaluate_queries_backend(self, vdb):
        vdb.execute_all(COMMANDS)
        result = vdb.evaluate(
            Project(Rollback("r", NOW), ["k"])
        )
        assert result.sorted_rows() == [(2,)]

    def test_rollback_past_via_expression(self, vdb):
        vdb.execute_all(COMMANDS)
        assert vdb.evaluate(Rollback("r", 2)) == kv((1, 10))

    def test_unknown_relation_in_expression(self, vdb):
        with pytest.raises(UnknownRelationError):
            vdb.evaluate(Rollback("ghost"))

    def test_rollback_snapshot_relation_to_past_rejected(self, vdb):
        vdb.define("s", "snapshot")
        vdb.set_state("s", kv((1, 1)))
        with pytest.raises(RelationTypeError):
            vdb.evaluate(Rollback("s", 1))


class TestDirectWritePath:
    def test_define_and_set(self, vdb):
        vdb.define("r", "rollback")
        vdb.set_state("r", kv((1, 1)))
        assert vdb.current("r") == kv((1, 1))

    def test_kind_check(self, vdb):
        from repro.historical.state import HistoricalState

        vdb.define("r", "rollback")
        with pytest.raises(RelationTypeError):
            vdb.set_state("r", HistoricalState.empty(KV))

    def test_empty_set_resolution(self, vdb):
        vdb.define("r", "rollback")
        vdb.set_state("r", kv((1, 1)))
        vdb.execute(
            ModifyState("r", Difference(Rollback("r"), Rollback("r")))
        )
        current = vdb.current("r")
        assert current is not None and current.is_empty()
        assert current.schema == KV

    def test_empty_set_without_prior_state_rejected(self, vdb):
        vdb.define("r", "rollback")
        with pytest.raises(CommandError):
            vdb.execute(
                ModifyState(
                    "r", Difference(Rollback("r"), Rollback("r"))
                )
            )
