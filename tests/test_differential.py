"""Differential testing of the whole pipeline.

One randomized command stream is executed four ways:

1. the core denotational semantics (the oracle);
2. a :class:`VersionedDatabase` over each physical backend;
3. the core semantics, then JSON round-trip through persistence;
4. the core semantics, then archive-and-tiered-read.

All four must answer every ``ρ(I, N)`` probe identically.  This is the
strongest single check in the suite: it exercises the command semantics,
expression evaluation, every backend, the codec and the archive in one
property.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive import ArchiveStore, TieredReader, archive_before
from repro.core.commands import Command, DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Difference,
    Rollback,
    Select,
    Union,
    is_empty_set,
)
from repro.core.relation import EMPTY_STATE
from repro.core.sentences import run
from repro.persistence import dumps, loads
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    VersionedDatabase,
)

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def random_stream(seed: int, length: int) -> list[Command]:
    rng = random.Random(seed)
    identifiers = ["r1", "r2"]
    commands: list[Command] = [
        DefineRelation(identifier, "rollback")
        for identifier in identifiers
    ]
    has_state: set[str] = set()
    for _ in range(length):
        identifier = rng.choice(identifiers)
        roll = rng.random()
        state = Const(
            SnapshotState(
                KV,
                [
                    [rng.randrange(8), rng.randrange(4)]
                    for _ in range(rng.randrange(1, 5))
                ],
            )
        )
        if roll < 0.4 or (roll >= 0.7 and identifier not in has_state):
            commands.append(
                ModifyState(identifier, Union(Rollback(identifier), state))
            )
        elif roll < 0.7:
            commands.append(ModifyState(identifier, state))
        else:
            # a delete is only applicable once the relation has a state
            # (storing the untyped ∅ into a state-less relation is
            # rejected by design)
            doomed = Select(
                Rollback(identifier),
                Comparison(attr("k"), "=", lit(rng.randrange(8))),
            )
            commands.append(
                ModifyState(
                    identifier,
                    Difference(Rollback(identifier), doomed),
                )
            )
        has_state.add(identifier)
    return commands


def probe(reader, identifier, txn):
    """Normalize the three read interfaces to 'state or None'."""
    result = reader(identifier, txn)
    if result is None or result is EMPTY_STATE or is_empty_set(result):
        return None
    return result


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_four_way_differential(seed):
    commands = random_stream(seed, 25)

    # 1. oracle
    oracle_db = run(commands)

    def oracle_read(identifier, txn):
        return oracle_db.require(identifier).find_state(txn)

    # 2. every backend
    backend_readers = []
    for factory in (
        FullCopyBackend,
        DeltaBackend,
        ReverseDeltaBackend,
        lambda: CheckpointDeltaBackend(3),
        TupleTimestampBackend,
    ):
        vdb = VersionedDatabase(factory())
        vdb.execute_all(commands)
        assert vdb.transaction_number == oracle_db.transaction_number
        backend_readers.append(vdb.state_at)

    # 3. persistence round trip
    restored = loads(dumps(oracle_db))

    def restored_read(identifier, txn):
        return restored.require(identifier).find_state(txn)

    # 4. archive the first half of r1's history (when it has enough)
    archive_reader = None
    r1_txns = oracle_db.require("r1").transaction_numbers
    if len(r1_txns) >= 4:
        store = ArchiveStore()
        cutoff = r1_txns[len(r1_txns) // 2]
        live = archive_before(oracle_db, "r1", cutoff, store)
        tiered = TieredReader(live, store)

        def archive_reader(identifier, txn):  # noqa: F811
            if identifier == "r1":
                return tiered.rollback(identifier, txn)
            return live.require(identifier).find_state(txn)

    readers = [oracle_read, *backend_readers, restored_read]
    if archive_reader is not None:
        readers.append(archive_reader)

    for identifier in ("r1", "r2"):
        for txn in range(0, oracle_db.transaction_number + 2):
            expected = probe(oracle_read, identifier, txn)
            for reader in readers[1:]:
                assert probe(reader, identifier, txn) == expected, (
                    f"seed {seed}: {identifier}@{txn} diverged"
                )


def random_temporal_stream(seed: int, length: int) -> list[Command]:
    """A temporal analogue of random_stream: Quel temporal statements
    over one temporal relation."""
    import random as _random

    from repro.historical.periods import PeriodSet
    from repro.quel.temporal import (
        TemporalAppend,
        TemporalDelete,
        TemporalQuelTranslator,
        Terminate,
    )
    from repro.snapshot.attributes import STRING, Attribute

    schema = Schema([Attribute("who", STRING)])
    translator = TemporalQuelTranslator({"t": schema})
    rng = _random.Random(seed)
    commands: list[Command] = [DefineRelation("t", "temporal")]
    alive: set[str] = set()
    names = [f"p{i}" for i in range(6)]
    for _ in range(length):
        roll = rng.random()
        if alive and roll < 0.2:
            who = rng.choice(sorted(alive))
            commands.append(
                translator.translate(TemporalDelete(
                    "t", Comparison(attr("who"), "=", lit(who))))
            )
            alive.discard(who)
        elif alive and roll < 0.4:
            who = rng.choice(sorted(alive))
            commands.append(
                translator.translate(Terminate(
                    "t", rng.randrange(60),
                    Comparison(attr("who"), "=", lit(who))))
            )
        else:
            who = rng.choice(names)
            start = rng.randrange(50)
            periods = PeriodSet([(start, start + rng.randrange(1, 20))])
            commands.append(
                translator.translate(
                    TemporalAppend("t", {"who": who}, periods)
                )
            )
            alive.add(who)
    return commands


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_temporal_differential(seed):
    """The four-way differential over a *temporal* relation driven by
    temporal Quel statements."""
    commands = random_temporal_stream(seed, 20)
    oracle_db = run(commands)

    readers = []
    for factory in (
        FullCopyBackend,
        DeltaBackend,
        TupleTimestampBackend,
    ):
        vdb = VersionedDatabase(factory())
        vdb.execute_all(commands)
        readers.append(vdb.state_at)

    restored = loads(dumps(oracle_db))

    def restored_read(identifier, txn):
        return restored.require(identifier).find_state(txn)

    readers.append(restored_read)

    oracle = oracle_db.require("t")
    for txn in range(0, oracle_db.transaction_number + 2):
        expected = oracle.find_state(txn)
        expected = None if is_empty_set(expected) else expected
        for reader in readers:
            got = reader("t", txn)
            got = (
                None
                if got is None or got is EMPTY_STATE or is_empty_set(got)
                else got
            )
            assert got == expected, f"seed {seed} txn {txn}"
