"""Sharded chaos: random rebalances, shard additions and checkpoints
interleaved with the command sentence, against the unsharded oracle.

Schedules are seeded by the run-seed discipline (``tests/conftest.py``):
failures print a reproduction seed, and CI varies ``REPRO_CHAOS_SEED``
per run while keeping every schedule replayable.
"""

from __future__ import annotations

import random

from repro.sharding import HashPartitioner, ShardedDatabase

from tests.replication.conftest import case_seed
from tests.sharding.conftest import (
    assert_differential,
    oracle_history,
    sharded_workload,
)


def run_chaos(seed: int, *, length: int = 200, max_shards: int = 6):
    """One chaos schedule: execute the sentence while randomly
    rebalancing, growing the shard set, checkpointing and syncing."""
    rng = random.Random(seed)
    commands = sharded_workload(length=length, seed=rng.randrange(1 << 20))
    oracle = oracle_history(commands)
    with ShardedDatabase(
        rng.randint(1, 3), partitioner=HashPartitioner(salt=seed % 1009)
    ) as sharded:
        for index, command in enumerate(commands, start=1):
            sharded.execute(command)
            assert (
                sharded.transaction_number
                == oracle[index].transaction_number
            ), f"drift after command {index}"
            event = rng.random()
            if event < 0.03 and sharded.shard_count < max_shards:
                sharded.add_shard()
            elif event < 0.10:
                sharded.rebalance(
                    HashPartitioner(salt=rng.randrange(1 << 16))
                )
            elif event < 0.13:
                sharded.checkpoint()
            elif event < 0.16:
                sharded.sync()
        assert_differential(sharded, oracle[-1])


def test_chaotic_rebalancing_preserves_the_oracle(test_seed):
    run_chaos(case_seed(test_seed))


def test_chaotic_scale_out_from_one_shard(test_seed):
    # start at a single shard and let the schedule grow aggressively
    seed = case_seed(test_seed, salt=1)
    rng = random.Random(seed)
    commands = sharded_workload(length=200, seed=rng.randrange(1 << 20))
    oracle = oracle_history(commands)
    with ShardedDatabase(1) as sharded:
        for index, command in enumerate(commands, start=1):
            sharded.execute(command)
            if index % 40 == 0:
                sharded.add_shard()
                sharded.rebalance(
                    HashPartitioner(salt=rng.randrange(1 << 16))
                )
        assert sharded.shard_count == 6
        assert_differential(sharded, oracle[-1])
