"""The ``shard.*`` observability surface: every counter and histogram
records real coordinator events, and nothing fires while disabled."""

import pytest

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.obsv import registry as obsv_registry
from repro.obsv.registry import MetricsRegistry
from repro.sharding import HashPartitioner, RangePartitioner, ShardedDatabase
from repro.workloads.generators import StateGenerator

GEN = StateGenerator(seed=3, key_space=20)
S1 = GEN.snapshot_state(2)
S2 = GEN.snapshot_state(3)


@pytest.fixture
def metrics():
    registry = obsv_registry.enable(MetricsRegistry())
    try:
        yield registry
    finally:
        obsv_registry.disable()


def drive(sharded):
    sharded.execute(DefineRelation("alpha", "rollback"))
    sharded.execute(DefineRelation("zeta", "rollback"))
    sharded.execute(DefineRelation("alpha", "rollback"))  # no-op
    sharded.execute(ModifyState("ghost", Const(S1)))  # no-op
    sharded.execute(ModifyState("alpha", Const(S1)))  # routed
    sharded.execute(ModifyState("zeta", Const(S2)))  # routed
    sharded.execute(  # coordinated (cross-shard expression)
        ModifyState(
            "zeta", Union(Rollback("alpha", NOW), Rollback("zeta", NOW))
        )
    )
    sharded.evaluate(Rollback("alpha", NOW))  # single-shard query
    sharded.evaluate(  # scattered query
        Union(Rollback("alpha", NOW), Rollback("zeta", NOW))
    )


class TestShardMetrics:
    def test_command_and_query_counters(self, metrics):
        with ShardedDatabase(
            2, partitioner=RangePartitioner(["m"])
        ) as sharded:
            drive(sharded)
        counters = metrics.snapshot()["counters"]
        assert counters["shard.commands_routed"] == 4  # 2 defines + 2
        assert counters["shard.commands_coordinated"] == 1
        assert counters["shard.commands_noop"] == 2
        assert counters["shard.queries"] == 2
        assert counters["shard.queries_single_shard"] == 1
        assert counters["shard.queries_scattered"] == 1
        # the coordinated modify + the scattered query each gathered two
        # single-shard subqueries and merged once
        assert counters["shard.subqueries_routed"] >= 4
        assert counters["shard.merges"] == 2

    def test_fanout_histogram(self, metrics):
        with ShardedDatabase(
            2, partitioner=RangePartitioner(["m"])
        ) as sharded:
            drive(sharded)
        fanout = metrics.snapshot()["histograms"]["shard.query_fanout"]
        assert fanout["count"] == 2
        assert fanout["max"] == 2
        assert fanout["min"] == 1

    def test_rebalance_metrics(self, metrics):
        with ShardedDatabase(
            2, partitioner=HashPartitioner()
        ) as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.execute(ModifyState("alpha", Const(S1)))
            sharded.rebalance(HashPartitioner(salt=1))
            snapshot = metrics.snapshot()
            assert snapshot["counters"]["shard.rebalances"] == 1
            moves = (
                snapshot["counters"]["shard.moves_wal_replayed"]
                + snapshot["counters"]["shard.moves_state_copied"]
            )
            assert moves >= 0
            seconds = snapshot["histograms"]["shard.rebalance_seconds"]
            assert seconds["count"] == 1

    def test_disabled_records_nothing(self):
        assert not obsv_registry.enabled()
        with ShardedDatabase(
            2, partitioner=RangePartitioner(["m"])
        ) as sharded:
            drive(sharded)
            sharded.rebalance()
        assert obsv_registry.get().snapshot()["counters"] == {}
