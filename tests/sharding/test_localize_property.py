"""Property tests for the coordinator's numeral-localization metadata.

``_mods`` (per-identifier global transaction numbers, aligned 1:1 with
the owner shard's state sequence) and ``_localize_numeral`` (the
``bisect_right`` translation from global to shard-local numbering) are
the two structures every historical read rides on.  Topology changes —
``add_shard()`` growing the denominator mid-sentence, ``rebalance()``
moving an identifier (and with ISSUE 8's repair path, moving it *back*
onto a stale leftover copy) — must never desynchronize them.

Hypothesis drives randomized interleavings of commands, ``add_shard``,
and ``rebalance`` and asserts after every step:

* ``_mods`` is strictly increasing and bounded by the global counter;
* ``as_database()`` never trips its metadata invariant (the explicit
  ``len(mods) != history_length`` guard) and equals the oracle prefix;
* ``localize_numeral`` agrees with the oracle's FINDSTATE at every
  global transaction number, for every identifier.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import Rollback
from repro.errors import ShardingError
from repro.sharding import HashPartitioner, ShardedDatabase

from tests.sharding.conftest import (
    canonical,
    oracle_history,
    sharded_workload,
)

#: one schedule step: run the next workload command, grow the shard
#: set, or rebalance (occasionally with a reseeded hash partitioner,
#: which forces moves — including move-backs onto stale copies)
STEP = st.sampled_from(
    ["cmd"] * 7 + ["add_shard", "rebalance", "rebalance_reseed"]
)

SCHEDULES = st.lists(STEP, min_size=12, max_size=36)


def _assert_metadata(sharded, oracle_prefix):
    """The per-step invariant bundle."""
    for identifier, mods in sharded._mods.items():
        assert all(a < b for a, b in zip(mods, mods[1:])), (
            f"_mods[{identifier!r}] not strictly increasing: {mods}"
        )
        assert not mods or mods[-1] <= sharded.transaction_number
    try:
        rebuilt = sharded.as_database()
    except ShardingError as error:  # the metadata invariant tripped
        raise AssertionError(
            f"as_database() invariant tripped: {error}"
        ) from error
    assert rebuilt == oracle_prefix


def _assert_localization(sharded, oracle_prefix):
    """``localize_numeral`` + ``state_at`` agree with the oracle at
    every global transaction number, and ρ through the router agrees
    for history-keeping relations."""
    for identifier in oracle_prefix.state.identifiers:
        relation = oracle_prefix.require(identifier)
        for txn in range(oracle_prefix.transaction_number + 1):
            assert canonical(sharded.state_at(identifier, txn)) == (
                canonical(relation.find_state(txn))
            ), f"state_at({identifier!r}, {txn})"
        if relation.rtype.keeps_history:
            probe = oracle_prefix.transaction_number
            expression = Rollback(identifier, probe)
            assert canonical(sharded.evaluate(expression)) == (
                canonical(expression.evaluate(oracle_prefix))
            )


class TestLocalizationProperties:
    @given(schedule=SCHEDULES, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_mods_survive_interleaved_topology_changes(
        self, schedule, seed
    ):
        rng = random.Random(seed)
        commands = sharded_workload(
            length=sum(1 for s in schedule if s == "cmd") + 5,
            seed=seed,
        )
        oracle = oracle_history(commands)
        position = 0
        with ShardedDatabase(2) as sharded:
            for step in schedule:
                if step == "cmd":
                    sharded.execute(commands[position])
                    position += 1
                elif step == "add_shard":
                    sharded.add_shard()
                elif step == "rebalance":
                    sharded.rebalance()
                else:  # rebalance under a different placement: moves
                    sharded.rebalance(
                        HashPartitioner(salt=rng.randrange(1 << 16))
                    )
                _assert_metadata(sharded, oracle[position])
            _assert_localization(sharded, oracle[position])

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_move_back_schedules_converge(self, seed):
        """The ISSUE 8 livelock shape as a property: ping-pong the
        placement A→B→A between command bursts; localization and the
        metadata invariant must hold at every bounce, and the final
        rebalance under the original placement must move nothing."""
        rng = random.Random(seed)
        commands = sharded_workload(length=30, seed=seed)
        oracle = oracle_history(commands)
        first = HashPartitioner(salt=rng.randrange(1 << 16))
        second = HashPartitioner(salt=rng.randrange(1 << 16))
        with ShardedDatabase(3, partitioner=first) as sharded:
            for position, command in enumerate(commands, start=1):
                sharded.execute(command)
                if position % 7 == 0:
                    placement = second if (position // 7) % 2 else first
                    sharded.rebalance(placement)
                    _assert_metadata(sharded, oracle[position])
            sharded.rebalance(first)
            report = sharded.rebalance(first)
            assert report.moved == 0 and report.stale_repaired == 0
            _assert_metadata(sharded, oracle[len(commands)])
            _assert_localization(sharded, oracle[len(commands)])
