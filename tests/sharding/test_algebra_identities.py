"""Property-based algebra identities the scatter-gather merge relies on.

The router decomposes cross-shard expressions into per-shard subtrees and
re-merges operands at the coordinator, which is only sound because the
paper's operators obey the usual relational identities.  Each property
checks an identity on random states via
:func:`repro.optimizer.equivalence.expressions_equivalent` (the
brute-force evaluator), and then checks that a sharded database — with
the operands deliberately placed on *different* shards — agrees with the
unsharded evaluation of the same expression.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.commands import DefineRelation, ModifyState
from repro.core.sentences import run
from repro.core.expressions import (
    Const,
    Product,
    Rename,
    Rollback,
    Select,
    Union,
)
from repro.core.txn import NOW
from repro.optimizer.equivalence import (
    expressions_equivalent,
    states_equal,
)
from repro.sharding import RangePartitioner, ShardedDatabase
from repro.snapshot.predicates import Comparison, attr, lit

from tests.conftest import kv_historical_states, kv_states

#: "a" sorts before the boundary, "z" after: guaranteed cross-shard.
PARTITIONER = RangePartitioner(["m"])

PRED = Comparison(attr("k"), ">=", lit(5))


def bind(states: dict):
    """The same bindings as an unsharded Database and a 2-shard
    ShardedDatabase (identifiers split across shards by name)."""
    from repro.historical.state import HistoricalState

    commands = []
    for identifier, state in states.items():
        rtype = (
            "temporal"
            if isinstance(state, HistoricalState)
            else "rollback"
        )
        commands.append(DefineRelation(identifier, rtype))
        commands.append(ModifyState(identifier, Const(state)))
    database = run(commands)
    sharded = ShardedDatabase(2, partitioner=PARTITIONER)
    sharded.execute_all(commands)
    return database, sharded


def check(identity_pairs, states):
    """Each (left, right) pair must agree under brute force *and* under
    sharded evaluation of both sides."""
    database, sharded = bind(states)
    try:
        for left, right in identity_pairs:
            assert expressions_equivalent(left, right, [database])
            assert states_equal(
                sharded.evaluate(left), left.evaluate(database)
            )
            assert states_equal(
                sharded.evaluate(right), right.evaluate(database)
            )
    finally:
        sharded.close()


class TestUnionIdentities:
    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_commutativity(self, a, z):
        ra, rz = Rollback("a", NOW), Rollback("z", NOW)
        check([(Union(ra, rz), Union(rz, ra))], {"a": a, "z": z})

    @settings(max_examples=40)
    @given(kv_states(), kv_states(), kv_states())
    def test_associativity(self, a, m, z):
        ra, rm, rz = (
            Rollback("a", NOW),
            Rollback("mid", NOW),
            Rollback("z", NOW),
        )
        check(
            [(Union(Union(ra, rm), rz), Union(ra, Union(rm, rz)))],
            {"a": a, "mid": m, "z": z},
        )

    @settings(max_examples=30)
    @given(kv_historical_states(), kv_historical_states())
    def test_commutativity_on_historical_states(self, a, z):
        ra, rz = Rollback("a", NOW), Rollback("z", NOW)
        check([(Union(ra, rz), Union(rz, ra))], {"a": a, "z": z})


class TestSelectPushdown:
    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_select_distributes_over_union(self, a, z):
        ra, rz = Rollback("a", NOW), Rollback("z", NOW)
        check(
            [
                (
                    Select(Union(ra, rz), PRED),
                    Union(Select(ra, PRED), Select(rz, PRED)),
                )
            ],
            {"a": a, "z": z},
        )

    @settings(max_examples=40)
    @given(kv_states(), kv_states())
    def test_select_pushes_through_product(self, a, z):
        # the predicate only names the left operand's attributes, so it
        # commutes with × once the right side is renamed apart
        ra = Rollback("a", NOW)
        rz = Rename(Rollback("z", NOW), {"k": "k2", "v": "v2"})
        check(
            [
                (
                    Select(Product(ra, rz), PRED),
                    Product(Select(ra, PRED), rz),
                )
            ],
            {"a": a, "z": z},
        )
