"""Sharded sessions: the language surface over a ShardedDatabase must
behave exactly like the unsharded session executing the same program."""

import pytest

from repro.errors import ShardingError
from repro.lang.session import Session
from repro.sharding import HashPartitioner

PROGRAM = """
define_relation(faculty, rollback);
modify_state(faculty,
    state (name: string, rank: string) { ("merrie", "assistant") });
define_relation(staff, rollback);
modify_state(staff,
    state (name: string, rank: string) { ("ann", "dean") });
modify_state(faculty,
    rollback(faculty, now)
    union state (name: string, rank: string) { ("tom", "full") });
"""


def sharded_session(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("partitioner", HashPartitioner())
    return Session(**kwargs)


class TestConstruction:
    def test_shards_and_replica_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="sharded"):
            Session(shards=2, replica_of=object())

    def test_unsharded_sessions_reject_sharding_calls(self):
        session = Session()
        with pytest.raises(ShardingError, match="not sharded"):
            session.rebalance()
        with pytest.raises(ShardingError, match="not sharded"):
            session.add_shard()
        assert session.sharded is None

    def test_durable_dir_hosts_the_shard_stores(self, tmp_path):
        session = sharded_session(durable_dir=str(tmp_path))
        try:
            session.execute(PROGRAM)
            session.checkpoint()
        finally:
            session.close()
        assert (tmp_path / "shard-0").is_dir()
        assert (tmp_path / "shard-1").is_dir()


class TestEquivalence:
    def test_program_matches_the_unsharded_session(self):
        plain = Session()
        plain.execute(PROGRAM)
        session = sharded_session()
        try:
            session.execute(PROGRAM)
            assert session.transaction_number == plain.transaction_number
            assert session.database == plain.database
            assert session.current_state(
                "faculty"
            ) == plain.current_state("faculty")
        finally:
            session.close()

    def test_history_is_just_the_current_value(self):
        session = sharded_session()
        try:
            session.execute(PROGRAM)
            assert session.history == (session.database,)
        finally:
            session.close()

    def test_query_routes_through_the_router(self):
        session = sharded_session()
        try:
            session.execute(PROGRAM)
            result = session.query(
                'select [rank = "full"] (rollback(faculty, now))'
            )
            assert result.sorted_rows() == [("tom", "full")]
            cross = session.query(
                "rollback(faculty, now) union rollback(staff, now)"
            )
            assert len(cross) == 3
        finally:
            session.close()

    def test_display_and_catalog(self):
        session = sharded_session()
        try:
            session.execute(PROGRAM)
            assert "tom" in session.display("faculty")
            assert set(session.catalog()) == {"faculty", "staff"}
        finally:
            session.close()

    def test_quel_statements(self):
        session = sharded_session()
        try:
            session.execute(PROGRAM)
            session.quel(
                'append to faculty (name = "liz", rank = "assoc")'
            )
            rows = session.quel(
                'retrieve (name) from faculty where rank = "assoc"'
            )
            assert rows.sorted_rows() == [("liz",)]
        finally:
            session.close()

    def test_execute_many_groups_and_syncs(self):
        session = sharded_session()
        try:
            database = session.execute_many(
                [
                    "define_relation(r, rollback)",
                    'modify_state(r, state (k: integer) { (1) })',
                ]
            )
            assert database.transaction_number == 2
        finally:
            session.close()


class TestScaleOut:
    def test_rebalance_and_add_shard(self):
        session = sharded_session()
        try:
            session.execute(PROGRAM)
            before = session.database
            assert session.add_shard() == 2
            report = session.rebalance(HashPartitioner(salt=3))
            assert report.moved >= 0
            assert session.database == before
        finally:
            session.close()
