"""The differential shard oracle suite (ISSUE 5's acceptance bar).

Randomized command sentences — ≥200 commands, every routing shape — run
through a :class:`ShardedDatabase` and the unsharded in-memory oracle;
``assert_differential`` then demands byte-identical ``ρ(I, N)`` for
every identifier at every historical transaction number, across shard
counts {1, 2, 5} and all five storage backends, with and without a
``rebalance()`` mid-sentence.  Seeds derive from the run seed
(``tests/conftest.py``), so any failure reproduces from the printed
header.
"""

from __future__ import annotations

import pytest

from repro.sharding import (
    HashPartitioner,
    RangePartitioner,
    ShardedDatabase,
)
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
)

from tests.sharding.conftest import (
    assert_differential,
    oracle_history,
    sharded_workload,
)

#: All five physical backends, as per-shard mirror factories.
BACKENDS = {
    "full_copy": FullCopyBackend,
    "delta": DeltaBackend,
    "reverse_delta": ReverseDeltaBackend,
    "checkpoint_delta": lambda: CheckpointDeltaBackend(4),
    "tuple_timestamp": TupleTimestampBackend,
}

SHARD_COUNTS = (1, 2, 5)

#: ≥200 commands per combination (the ISSUE's floor).
SENTENCE_LENGTH = 210


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_matches_oracle(shards, backend_name, test_seed):
    commands = sharded_workload(
        length=SENTENCE_LENGTH, seed=test_seed % (1 << 20)
    )
    oracle = oracle_history(commands)
    with ShardedDatabase(
        shards,
        partitioner=HashPartitioner(salt=test_seed % 97),
        backend_factory=BACKENDS[backend_name],
    ) as sharded:
        for index, command in enumerate(commands, start=1):
            sharded.execute(command)
            # cheap drift tripwire at every prefix; the full (expensive)
            # comparison runs once at the end
            assert (
                sharded.transaction_number
                == oracle[index].transaction_number
            ), f"drift after command {index}"
        assert_differential(sharded, oracle[-1])


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_matches_oracle_across_rebalance(
    shards, backend_name, test_seed
):
    """The same contract with two ``rebalance()`` calls mid-sentence —
    identifiers move between shards while the sentence is still being
    executed, and history must survive the moves bit-for-bit."""
    commands = sharded_workload(
        length=SENTENCE_LENGTH, seed=(test_seed ^ 0x5EED) % (1 << 20)
    )
    oracle = oracle_history(commands)
    with ShardedDatabase(
        shards,
        partitioner=HashPartitioner(salt=1),
        backend_factory=BACKENDS[backend_name],
    ) as sharded:
        third = len(commands) // 3
        for index, command in enumerate(commands, start=1):
            sharded.execute(command)
            if index == third:
                sharded.rebalance(HashPartitioner(salt=2))
            elif index == 2 * third:
                sharded.rebalance(HashPartitioner(salt=5))
        assert_differential(sharded, oracle[-1])


def test_sharded_matches_oracle_under_range_partitioning(test_seed):
    """Range partitioning must obey the same contract — boundaries
    split the identifier space unevenly, so some shards stay empty."""
    commands = sharded_workload(
        length=SENTENCE_LENGTH, seed=(test_seed ^ 0xA11CE) % (1 << 20)
    )
    oracle = oracle_history(commands)
    with ShardedDatabase(
        3, partitioner=RangePartitioner(["m", "s"])
    ) as sharded:
        for command in commands:
            sharded.execute(command)
        assert_differential(sharded, oracle[-1])


def test_rebalance_to_added_shard_preserves_history(test_seed):
    """Scale-out mid-sentence: add a shard, spread onto it, keep going."""
    commands = sharded_workload(
        length=SENTENCE_LENGTH, seed=(test_seed ^ 0xBEEF) % (1 << 20)
    )
    oracle = oracle_history(commands)
    with ShardedDatabase(2, partitioner=HashPartitioner()) as sharded:
        half = len(commands) // 2
        for command in commands[:half]:
            sharded.execute(command)
        assert sharded.shard_count == 2
        sharded.add_shard()
        report = sharded.rebalance(HashPartitioner(salt=7))
        assert sharded.shard_count == 3
        assert report.moved == report.wal_replayed + report.state_copied
        for command in commands[half:]:
            sharded.execute(command)
        assert_differential(sharded, oracle[-1])
