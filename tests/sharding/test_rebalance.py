"""Rebalance mechanics: WAL replay vs state copy, stale-copy repair,
compaction fallback, and post-move validation."""

import pytest

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.errors import ShardingError
from repro.sharding import Partitioner, ShardedDatabase
from repro.workloads.generators import StateGenerator

GEN = StateGenerator(seed=9, key_space=20)
S1 = GEN.snapshot_state(2)
S2 = GEN.snapshot_state(3)
S3 = GEN.snapshot_state(2)


class MapPartitioner(Partitioner):
    """Deterministic test placement: an explicit identifier → shard map."""

    def __init__(self, mapping, default=0):
        self.mapping = dict(mapping)
        self.default = default

    def shard_for(self, identifier, shard_count):
        return self._check(
            self.mapping.get(identifier, self.default), shard_count
        )


def checked(sharded, oracle_states):
    """Post-rebalance invariant: ρ(I, now) still answers everywhere."""
    for identifier, state in oracle_states.items():
        assert sharded.evaluate(Rollback(identifier, NOW)) == state


class TestMoveStrategies:
    def test_self_referencing_history_replays_the_wal(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 0})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            sharded.execute(ModifyState("r", Const(S1)))
            # ρ(r, now) only: the transaction-offset-invariant shape
            sharded.execute(
                ModifyState("r", Union(Rollback("r", NOW), Const(S2)))
            )
            report = sharded.rebalance(MapPartitioner({"r": 1}))
            assert report.moved == 1
            assert report.wal_replayed == 1
            assert report.state_copied == 0
            assert sharded.shard_of("r") == 1
            checked(
                sharded,
                {"r": Union(Const(S1), Const(S2)).evaluate(None)},
            )
            # the whole rollback history moved, not just the tip
            assert sharded.state_at("r", 2) == S1

    def test_cross_identifier_history_forces_state_copy(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 0, "other": 0})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            sharded.execute(DefineRelation("other", "rollback"))
            sharded.execute(ModifyState("other", Const(S2)))
            # r's history reads another identifier: replay on a target
            # shard (where 'other' has different states) is unsafe
            sharded.execute(
                ModifyState(
                    "r", Union(Rollback("other", NOW), Const(S1))
                )
            )
            report = sharded.rebalance(
                MapPartitioner({"r": 1, "other": 0})
            )
            assert report.moved == 1
            assert report.state_copied == 1
            assert report.wal_replayed == 0
            checked(
                sharded,
                {"r": Union(Const(S2), Const(S1)).evaluate(None)},
            )

    def test_past_numeral_history_forces_state_copy(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 0})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))  # txn 1
            sharded.execute(ModifyState("r", Const(S1)))  # txn 2
            # ρ(r, 2) names an absolute transaction number — not
            # offset-invariant, so the WAL-replay path must refuse it
            sharded.execute(
                ModifyState("r", Union(Rollback("r", 2), Const(S2)))
            )
            report = sharded.rebalance(MapPartitioner({"r": 1}))
            assert report.state_copied == 1
            assert report.wal_replayed == 0
            assert sharded.state_at("r", 2) == S1

    def test_compacted_log_forces_state_copy(self):
        with ShardedDatabase(
            2,
            partitioner=MapPartitioner({"r": 0}),
            checkpoint_every=0,
            keep_checkpoints=1,
            segment_bytes=256,
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            sharded.execute(ModifyState("r", Const(S1)))
            sharded.execute(
                ModifyState("r", Union(Rollback("r", NOW), Const(S2)))
            )
            sharded.checkpoint()  # compacts the source WAL
            assert sharded.shards[0].wal.first_lsn > 1
            report = sharded.rebalance(MapPartitioner({"r": 1}))
            assert report.state_copied == 1
            assert report.wal_replayed == 0
            assert sharded.state_at("r", 2) == S1

    def test_replace_types_copy_only_the_latest_state(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"s": 0})
        ) as sharded:
            sharded.execute(DefineRelation("s", "snapshot"))
            sharded.execute(ModifyState("s", Const(S1)))
            sharded.execute(ModifyState("s", Const(S2)))
            report = sharded.rebalance(MapPartitioner({"s": 1}))
            assert report.moved == 1
            checked(sharded, {"s": S2})


class TestStaleCopies:
    def test_moving_back_onto_a_stale_copy_repairs_it(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 0})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            sharded.execute(ModifyState("r", Const(S1)))
            sharded.rebalance(MapPartitioner({"r": 1}))
            # shard 0 still holds the pre-move copy (there is no unbind
            # command); moving back must top it up, not clobber history
            sharded.execute(ModifyState("r", Const(S2)))
            report = sharded.rebalance(MapPartitioner({"r": 0}))
            assert report.stale_repaired == 1
            assert report.moved == 1
            assert sharded.shard_of("r") == 0  # ownership flipped back
            checked(sharded, {"r": S2})
            # the repaired copy carries the full history, not just the tip
            assert sharded.state_at("r", 2) == S1
            assert sharded.state_at("r", 3) == S2

    def test_rebalance_move_back_rebalance_converges(self):
        # Regression: the old skip left ownership at the source, and
        # every later rebalance re-picked the same stale target forever.
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 0})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            sharded.execute(ModifyState("r", Const(S1)))
            sharded.rebalance(MapPartitioner({"r": 1}))
            sharded.execute(ModifyState("r", Const(S2)))
            back = MapPartitioner({"r": 0})
            first = sharded.rebalance(back)
            assert first.moved == 1
            # placement now satisfied: the pass converged, no livelock
            second = sharded.rebalance(back)
            assert second.moved == 0
            assert second.stale_repaired == 0
            assert sharded.shard_of("r") == 0
            checked(sharded, {"r": S2})

    def test_stale_replace_type_copy_reships_the_latest_state(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"s": 0})
        ) as sharded:
            sharded.execute(DefineRelation("s", "snapshot"))
            sharded.execute(ModifyState("s", Const(S1)))
            sharded.rebalance(MapPartitioner({"s": 1}))
            sharded.execute(ModifyState("s", Const(S2)))
            report = sharded.rebalance(MapPartitioner({"s": 0}))
            assert report.stale_repaired == 1
            assert sharded.shard_of("s") == 0
            checked(sharded, {"s": S2})

    def test_diverged_copy_refuses_repair(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 0})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            sharded.execute(ModifyState("r", Const(S1)))
            sharded.rebalance(MapPartitioner({"r": 1}))
            # corrupt the leftover copy so it is no longer a prefix of
            # the owner's history
            sharded.shards[0].execute(ModifyState("r", Const(S3)))
            sharded.execute(ModifyState("r", Const(S2)))
            with pytest.raises(ShardingError, match="not a prefix"):
                sharded.rebalance(MapPartitioner({"r": 0}))


class TestRebalanceSurface:
    def test_noop_when_placement_already_matches(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 1})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            report = sharded.rebalance()
            assert report.moved == 0
            assert repr(report) == (
                "RebalanceReport(moved=0, wal_replayed=0, "
                "state_copied=0, stale_repaired=0)"
            )

    def test_rebalance_swaps_the_partitioner_for_future_placements(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({}, default=0)
        ) as sharded:
            sharded.rebalance(MapPartitioner({}, default=1))
            sharded.execute(DefineRelation("fresh", "rollback"))
            assert sharded.shard_of("fresh") == 1

    def test_divergence_during_a_move_raises(self):
        with ShardedDatabase(
            2, partitioner=MapPartitioner({"r": 0})
        ) as sharded:
            sharded.execute(DefineRelation("r", "rollback"))
            sharded.execute(ModifyState("r", Const(S1)))
            # sabotage the replay-safety gate: claim commands are
            # replayable but hand over a diverging rebuild
            sharded._replayable_commands = (
                lambda source, identifier, relation: [
                    DefineRelation("r", "rollback"),
                    ModifyState("r", Const(S3)),
                ]
            )
            with pytest.raises(ShardingError, match="diverging"):
                sharded.rebalance(MapPartitioner({"r": 1}))
