"""ScatterGatherRouter as a pure routing policy (injected callbacks)."""

import pytest

from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
)
from repro.core.txn import NOW
from repro.sharding import ScatterGatherRouter
from repro.snapshot.predicates import Comparison, attr, lit
from repro.workloads.generators import StateGenerator

OWNERS = {"a": 0, "b": 1, "c": 1}


def make_router(calls=None):
    """A router over the static OWNERS map; the fake localizer shifts
    every explicit numeral down by one, and evaluation just records."""

    def evaluate(shard, expression):
        if calls is not None:
            calls.append((shard, expression))
        return ("evaluated", shard)

    return ScatterGatherRouter(
        owner_of=lambda identifier: OWNERS[identifier],
        localize_numeral=lambda identifier, numeral: numeral - 1,
        evaluate_on_shard=evaluate,
    )


SOME_STATE = StateGenerator(seed=1).snapshot_state(2)


class TestShardsOf:
    def test_const_only_touches_no_shard(self):
        router = make_router()
        assert router.shards_of(Const(SOME_STATE)) == frozenset()
        assert router.fanout(Const(SOME_STATE)) == 1

    def test_single_leaf(self):
        router = make_router()
        assert router.shards_of(Rollback("a", NOW)) == {0}

    def test_union_of_colocated_leaves_is_single_shard(self):
        router = make_router()
        expression = Union(Rollback("b", NOW), Rollback("c", 3))
        assert router.shards_of(expression) == {1}
        assert router.fanout(expression) == 1

    def test_cross_shard_union(self):
        router = make_router()
        expression = Union(Rollback("a", NOW), Rollback("b", NOW))
        assert router.shards_of(expression) == {0, 1}
        assert router.fanout(expression) == 2


class TestIsLocal:
    def test_now_leaf_on_its_owner(self):
        router = make_router()
        assert router.is_local(Rollback("a", NOW), 0)
        assert not router.is_local(Rollback("a", NOW), 1)

    def test_explicit_numeral_is_never_local(self):
        # a non-now numeral needs translation, so the expression cannot
        # ship untouched even to the owning shard
        router = make_router()
        assert not router.is_local(Rollback("a", 3), 0)

    def test_composite(self):
        router = make_router()
        local = Union(Rollback("b", NOW), Const(SOME_STATE))
        assert router.is_local(local, 1)
        assert not router.is_local(
            Union(local, Rollback("a", NOW)), 1
        )


class TestLocalize:
    def test_now_leaf_returned_by_identity(self):
        router = make_router()
        leaf = Rollback("a", NOW)
        assert router.localize(leaf, 0) is leaf

    def test_const_returned_by_identity(self):
        router = make_router()
        leaf = Const(SOME_STATE)
        assert router.localize(leaf, 0) is leaf

    def test_unchanged_numeral_returned_by_identity(self):
        calls = []
        router = ScatterGatherRouter(
            owner_of=OWNERS.__getitem__,
            localize_numeral=lambda identifier, numeral: numeral,
            evaluate_on_shard=lambda s, e: None,
        )
        leaf = Rollback("a", 4)
        assert router.localize(leaf, 0) is leaf

    def test_numeral_rewritten(self):
        router = make_router()
        localized = router.localize(Rollback("a", 4), 0)
        assert isinstance(localized, Rollback)
        assert localized.identifier == "a"
        assert localized.numeral == 3

    def test_rebuild_shares_unchanged_children(self):
        router = make_router()
        unchanged = Rollback("b", NOW)
        expression = Union(unchanged, Rollback("c", 5))
        localized = router.localize(expression, 1)
        assert localized is not expression
        assert localized.left is unchanged
        assert localized.right.numeral == 4

    @pytest.mark.parametrize(
        "wrap",
        [
            lambda leaf: Union(leaf, leaf),
            lambda leaf: Difference(leaf, leaf),
            lambda leaf: Product(leaf, Rename(leaf, {"key": "key2"})),
            lambda leaf: Project(leaf, ["key"]),
            lambda leaf: Select(
                leaf, Comparison(attr("key"), ">=", lit(0))
            ),
            lambda leaf: Rename(leaf, {"key": "k2"}),
            lambda leaf: Derive(leaf),
        ],
    )
    def test_every_node_shape_rebuilds(self, wrap):
        router = make_router()
        expression = wrap(Rollback("a", 9))
        localized = router.localize(expression, 0)
        assert localized is not expression
        assert type(localized) is type(expression)
        # the rewritten tree carries the translated numeral everywhere
        assert all(
            leaf.numeral == 8 for leaf in _rollback_leaves(localized)
        )


def _rollback_leaves(expression):
    if isinstance(expression, Rollback):
        yield expression
    for child in expression.children():
        yield from _rollback_leaves(child)


class TestEvaluate:
    def test_single_shard_ships_whole_localized_tree(self):
        calls = []
        router = make_router(calls)
        expression = Union(Rollback("b", NOW), Rollback("c", 7))
        assert router.evaluate(expression) == ("evaluated", 1)
        assert len(calls) == 1
        shard, shipped = calls[0]
        assert shard == 1
        assert shipped.right.numeral == 6

    def test_const_only_goes_to_shard_zero(self):
        calls = []
        router = make_router(calls)
        router.evaluate(Const(SOME_STATE))
        assert [shard for shard, _ in calls] == [0]
