"""ShardedDatabase unit behaviors: lifecycle, no-op/strict command
shapes, numeral translation edges, and the FINDSTATE surface."""

import pytest

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Difference, Rollback, Union
from repro.core.relation import EMPTY_STATE
from repro.core.txn import NOW
from repro.durability import DurableDatabase, MemoryStore
from repro.errors import CommandError, ShardingError
from repro.sharding import (
    HashPartitioner,
    RangePartitioner,
    ShardedDatabase,
)
from repro.workloads.generators import StateGenerator

GEN = StateGenerator(seed=5, key_space=20)
S1 = GEN.snapshot_state(2)
S2 = GEN.snapshot_state(3)


def split_ab():
    """Two shards with 'a*' identifiers on 0 and everything later on 1."""
    return ShardedDatabase(2, partitioner=RangePartitioner(["m"]))


class TestLifecycle:
    def test_rejects_zero_shards(self):
        with pytest.raises(ShardingError):
            ShardedDatabase(0)

    def test_rejects_empty_stores(self):
        with pytest.raises(ShardingError):
            ShardedDatabase(stores=[])

    def test_stores_fix_the_shard_count(self):
        with ShardedDatabase(
            stores=[MemoryStore(), MemoryStore(), MemoryStore()]
        ) as sharded:
            assert sharded.shard_count == 3
            assert len(sharded.shards) == 3

    def test_refuses_a_non_empty_store(self):
        store = MemoryStore()
        seeded = DurableDatabase(store, fsync="always")
        seeded.execute(DefineRelation("r", "rollback"))
        seeded.close()
        with pytest.raises(ShardingError, match="empty shard stores"):
            ShardedDatabase(stores=[store])

    def test_directory_layout(self, tmp_path):
        with ShardedDatabase(2, directory=tmp_path) as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.sync()
        assert (tmp_path / "shard-0").is_dir()
        assert (tmp_path / "shard-1").is_dir()

    def test_execute_after_close_raises(self):
        sharded = ShardedDatabase(1)
        sharded.close()
        assert sharded.closed
        sharded.close()  # idempotent
        with pytest.raises(ShardingError, match="closed"):
            sharded.execute(DefineRelation("r", "rollback"))

    def test_partitioner_property(self):
        partitioner = RangePartitioner(["m"])
        with ShardedDatabase(2, partitioner=partitioner) as sharded:
            assert sharded.partitioner is partitioner

    def test_defined_but_unmodified_replace_type_in_as_database(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("snap", "snapshot"))
            relation = sharded.as_database().require("snap")
            assert relation.rstate == ()

    def test_checkpoint_touches_every_shard(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.execute(DefineRelation("zeta", "rollback"))
            sharded.checkpoint()  # must not raise on any shard


class TestCommandRouting:
    def test_execute_returns_the_global_txn(self):
        with split_ab() as sharded:
            assert sharded.execute(DefineRelation("alpha", "rollback")) == 1
            assert sharded.execute(ModifyState("alpha", Const(S1))) == 2
            assert sharded.transaction_number == 2

    def test_identifiers_and_shard_of(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("zeta", "rollback"))
            sharded.execute(DefineRelation("alpha", "rollback"))
            assert sharded.identifiers == ("alpha", "zeta")
            assert sharded.shard_of("alpha") == 0
            assert sharded.shard_of("zeta") == 1
            # unbound identifiers report their would-be placement
            assert sharded.shard_of("beta") == 0

    def test_redefine_is_a_noop(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            assert sharded.execute(DefineRelation("alpha", "snapshot")) == 1
            assert (
                sharded.as_database().require("alpha").rtype.name
                == "ROLLBACK"
            )

    def test_strict_redefine_raises(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            with pytest.raises(CommandError):
                sharded.execute(
                    DefineRelation("alpha", "rollback", strict=True)
                )
            assert sharded.transaction_number == 1

    def test_modify_unbound_is_a_noop_without_evaluation(self):
        class Bomb(Const):
            def evaluate(self, database):  # pragma: no cover
                raise AssertionError("no-op must not evaluate")

        with split_ab() as sharded:
            assert sharded.execute(ModifyState("ghost", Bomb(S1))) == 0
            assert sharded.identifiers == ()
            # and no shard logged anything
            assert all(
                shard.transaction_number == 0 for shard in sharded.shards
            )

    def test_strict_modify_unbound_raises_the_paper_error(self):
        with split_ab() as sharded:
            with pytest.raises(
                CommandError, match="'ghost' is not defined"
            ):
                sharded.execute(
                    ModifyState("ghost", Const(S1), strict=True)
                )

    def test_sequences_flatten_across_shards(self):
        with split_ab() as sharded:
            sentence = (
                DefineRelation("alpha", "rollback")
                .then(DefineRelation("zeta", "rollback"))
                .then(ModifyState("alpha", Const(S1)))
                .then(ModifyState("zeta", Rollback("alpha", NOW)))
            )
            assert sharded.execute(sentence) == 4
            assert sharded.evaluate(Rollback("zeta", NOW)) == S1

    def test_unroutable_command_raises(self):
        with split_ab() as sharded:
            with pytest.raises(ShardingError, match="cannot route"):
                sharded.execute("not a command")

    def test_cross_shard_modify_ships_a_constant(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.execute(DefineRelation("zeta", "rollback"))
            sharded.execute(ModifyState("alpha", Const(S1)))
            sharded.execute(ModifyState("zeta", Const(S2)))
            sharded.execute(
                ModifyState(
                    "zeta",
                    Union(Rollback("alpha", NOW), Rollback("zeta", NOW)),
                )
            )
            merged = sharded.evaluate(Rollback("zeta", NOW))
            assert merged == Union(Const(S1), Const(S2)).evaluate(None)

    def test_cross_shard_empty_set_takes_the_prior_schema(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.execute(DefineRelation("zeta", "rollback"))
            sharded.execute(ModifyState("alpha", Const(S1)))
            sharded.execute(ModifyState("zeta", Const(S2)))
            # α − α is the untyped ∅ gathered at the coordinator; the
            # shipped constant must inherit ζ's latest schema
            sharded.execute(
                ModifyState(
                    "zeta",
                    Difference(
                        Rollback("alpha", NOW), Rollback("alpha", NOW)
                    ),
                )
            )
            state = sharded.evaluate(Rollback("zeta", NOW))
            assert state is not EMPTY_STATE
            assert state.schema == S2.schema
            assert not state.tuples

    def test_cross_shard_empty_set_on_a_temporal_relation(self):
        from repro.historical.state import HistoricalState

        hist = GEN.historical_state(2)
        with split_ab() as sharded:
            # alpha never gets a state, so ρ(alpha, now) is the untyped
            # ∅ and the gathered difference stays untyped — forcing the
            # coordinator to take zeta's historical schema
            sharded.execute(DefineRelation("alpha", "temporal"))
            sharded.execute(DefineRelation("zeta", "temporal"))
            sharded.execute(ModifyState("zeta", Const(hist)))
            sharded.execute(
                ModifyState(
                    "zeta",
                    Difference(
                        Rollback("alpha", NOW), Rollback("alpha", NOW)
                    ),
                )
            )
            state = sharded.evaluate(Rollback("zeta", NOW))
            assert isinstance(state, HistoricalState)
            assert state.schema == hist.schema
            assert not state.tuples

    def test_cross_shard_empty_set_without_prior_state_raises(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.execute(DefineRelation("zeta", "rollback"))
            with pytest.raises(CommandError, match="untyped empty set"):
                sharded.execute(
                    ModifyState(
                        "zeta",
                        Difference(
                            Rollback("alpha", NOW),
                            Rollback("alpha", NOW),
                        ),
                    )
                )
            # the failed command consumed no transaction
            assert sharded.transaction_number == 2


class TestPerShardReplication:
    def test_a_replica_can_tail_one_shard(self):
        """Shards are ordinary DurableDatabases, so the replication
        layer attaches per shard unchanged: a replica tailing a shard's
        WAL converges on that shard's (local) database."""
        from repro.replication import PrimaryStream, Replica, RetryPolicy

        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.execute(ModifyState("alpha", Const(S1)))
            shard = sharded.shards[0]
            shard.sync()
            replica = Replica(
                PrimaryStream(shard), retry=RetryPolicy.none()
            )
            try:
                replica.catch_up()
                assert replica.database == shard.database
                sharded.execute(
                    ModifyState("alpha", Union(Rollback("alpha", NOW), Const(S2)))
                )
                shard.sync()
                replica.catch_up()
                assert replica.database == shard.database
            finally:
                replica.close()


class TestStateAt:
    def test_unbound_identifier_is_none(self):
        with split_ab() as sharded:
            assert sharded.state_at("ghost", 0) is None

    def test_keeps_history_walks_global_numbers(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))  # txn 1
            sharded.execute(DefineRelation("zeta", "rollback"))  # txn 2
            sharded.execute(ModifyState("alpha", Const(S1)))  # txn 3
            sharded.execute(ModifyState("zeta", Const(S2)))  # txn 4
            sharded.execute(ModifyState("alpha", Const(S2)))  # txn 5
            assert sharded.state_at("alpha", 2) is EMPTY_STATE
            assert sharded.state_at("alpha", 3) == S1
            assert sharded.state_at("alpha", 4) == S1
            assert sharded.state_at("alpha", 5) == S2

    def test_replace_type_only_answers_at_or_after_its_last_modify(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("snap", "snapshot"))  # txn 1
            sharded.execute(ModifyState("snap", Const(S1)))  # txn 2
            sharded.execute(ModifyState("snap", Const(S2)))  # txn 3
            # the unsharded snapshot relation holds one state stamped
            # with its *last* modify; earlier numerals find nothing
            assert sharded.state_at("snap", 1) is EMPTY_STATE
            assert sharded.state_at("snap", 2) is EMPTY_STATE
            assert sharded.state_at("snap", 3) == S2

    def test_defined_but_never_modified_is_empty(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("snap", "snapshot"))
            assert sharded.state_at("snap", 1) is EMPTY_STATE


class TestNumeralTranslation:
    def test_unbound_identifier_passes_numerals_through(self):
        with split_ab() as sharded:
            # the shard must raise the oracle's own error text, which
            # embeds the *global* numeral untranslated
            with pytest.raises(Exception, match="ghost"):
                sharded.evaluate(Rollback("ghost", 3))

    def test_replace_type_numerals_pass_through(self):
        from repro.errors import RelationTypeError

        with split_ab() as sharded:
            sharded.execute(DefineRelation("snap", "snapshot"))
            sharded.execute(ModifyState("snap", Const(S1)))
            with pytest.raises(RelationTypeError, match="2"):
                sharded.evaluate(Rollback("snap", 2))

    def test_metadata_mismatch_is_detected(self):
        with split_ab() as sharded:
            sharded.execute(DefineRelation("alpha", "rollback"))
            sharded.execute(ModifyState("alpha", Const(S1)))
            sharded._mods["alpha"].append(99)  # corrupt the metadata
            with pytest.raises(ShardingError, match="coordinator metadata"):
                sharded.evaluate(Rollback("alpha", 1))
