"""The differential shard oracle: workload generator + assertions.

The sharding suite's contract (ISSUE 5): a :class:`ShardedDatabase` fed
a randomized command sentence must be *observationally identical* to the
unsharded in-memory oracle executing the same sentence — byte-identical
``ρ(I, N)`` results (via the canonical JSON encoding) for every
identifier at every historical transaction number, an equal reassembled
:class:`~repro.core.database.Database` value, and the same global
transaction counter.  Every generator takes an explicit seed wired to
the run-seed discipline in ``tests/conftest.py``.
"""

from __future__ import annotations

import random

from repro.core.commands import DefineRelation, ModifyState, execute
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import (
    Const,
    Difference,
    Rollback,
    Select,
    Union,
)
from repro.core.relation import EMPTY_STATE
from repro.core.txn import NOW
from repro.persistence.json_codec import database_to_dict, state_to_dict
from repro.snapshot.predicates import Comparison, attr, lit
from repro.workloads.generators import StateGenerator

#: Identifiers spread across several shards under both partitioner
#: families; two rollback relations so cross-identifier *and*
#: past-transaction reads compose.
RELATIONS = (
    ("alpha", "rollback"),
    ("omega", "rollback"),
    ("snap", "snapshot"),
    ("hist", "historical"),
    ("tempo", "temporal"),
)

SNAPSHOT_LIKE = ("alpha", "omega", "snap")
HISTORICAL_LIKE = ("hist", "tempo")


def sharded_workload(length: int = 220, seed: int = 7):
    """A ``length``-command sentence exercising every routing shape.

    Beyond the durability suite's scripted workload, this one makes the
    *cross-shard* paths first-class: ``modify_state`` expressions that
    union/difference two different rollback relations, rollbacks at past
    (global!) transaction numbers, selections and projections over
    cross-identifier products, plus the paper's two no-op shapes and
    occasional sequences.
    """
    rng = random.Random(seed)
    snap = StateGenerator(seed=seed, key_space=30)
    hist = StateGenerator(seed=seed + 1, key_space=30)
    commands = [DefineRelation(i, t) for i, t in RELATIONS]
    #: conservative running lower bound for "has a state by now" — the
    #: generator only needs it to bias toward interesting expressions
    modified: set[str] = set()
    txn_estimate = len(commands)

    def past_numeral():
        return rng.randrange(txn_estimate + 2)

    def rollback_pair():
        a, b = rng.sample(("alpha", "omega"), 2)
        left = Rollback(a, NOW if rng.random() < 0.5 else past_numeral())
        right = Rollback(b, NOW if rng.random() < 0.5 else past_numeral())
        return left, right

    while len(commands) < length:
        roll = rng.random()
        if roll < 0.04:
            commands.append(DefineRelation("alpha", "rollback"))  # no-op
            txn_estimate += 0
            continue
        if roll < 0.08:
            commands.append(  # no-op: unbound identifier
                ModifyState("ghost", Const(snap.snapshot_state(1)))
            )
            continue
        if roll < 0.55:
            identifier = rng.choice(SNAPSHOT_LIKE)
            expression = Const(snap.snapshot_state(rng.randint(1, 4)))
            if identifier in modified and rng.random() < 0.5:
                shape = rng.random()
                if shape < 0.4 and identifier != "snap":
                    # cross-identifier union/difference of rollbacks
                    left, right = rollback_pair()
                    node = Union if rng.random() < 0.7 else Difference
                    expression = Union(node(left, right), expression)
                elif shape < 0.7:
                    expression = Union(
                        Rollback(identifier, NOW), expression
                    )
                else:
                    # σ/π over the current state, keeping the schema
                    expression = Union(
                        Select(
                            Rollback(identifier, NOW),
                            Comparison(attr("key"), ">=", lit(0)),
                        ),
                        expression,
                    )
        else:
            identifier = rng.choice(HISTORICAL_LIKE)
            expression = Const(hist.historical_state(rng.randint(1, 3)))
            if (
                "hist" in modified
                and "tempo" in modified
                and rng.random() < 0.4
            ):
                expression = Union(
                    Union(
                        Rollback("hist", NOW), Rollback("tempo", NOW)
                    ),
                    expression,
                )
        command = ModifyState(identifier, expression)
        if rng.random() > 0.96 and identifier in modified:
            command = DefineRelation(identifier, dict(RELATIONS)[identifier]).then(
                command
            )
        commands.append(command)
        modified.add(identifier)
        txn_estimate += 1
    return commands


def oracle_history(commands):
    """``oracle[k]`` = the database after the first ``k`` commands."""
    databases = [EMPTY_DATABASE]
    for command in commands:
        databases.append(execute(command, databases[-1]))
    return databases


def canonical(state) -> object:
    """The byte-identical comparison key: the paper's untyped ∅ maps to
    a distinguished marker, anything else to its canonical JSON dict."""
    if state is EMPTY_STATE:
        return {"empty_set": True}
    return state_to_dict(state)


def assert_differential(sharded, oracle) -> None:
    """The full oracle comparison.

    * the global counters agree;
    * the reassembled global database equals the oracle *value* and its
      canonical JSON encoding (byte-identity, not just ``__eq__``);
    * for every identifier the oracle ever bound, ``ρ(I, N)`` agrees at
      every transaction number ``0..n`` and at ``now`` — through the
      scatter-gather evaluator for history-keeping relations, and
      through ``state_at`` (the FINDSTATE surface) for all of them.
    """
    assert sharded.transaction_number == oracle.transaction_number
    rebuilt = sharded.as_database()
    assert rebuilt == oracle
    assert database_to_dict(rebuilt) == database_to_dict(oracle)
    for identifier in oracle.state.identifiers:
        relation = oracle.require(identifier)
        now_expr = Rollback(identifier, NOW)
        assert canonical(sharded.evaluate(now_expr)) == canonical(
            now_expr.evaluate(oracle)
        )
        for txn in range(oracle.transaction_number + 1):
            assert canonical(sharded.state_at(identifier, txn)) == (
                canonical(relation.find_state(txn))
            ), f"state_at({identifier!r}, {txn})"
            if relation.rtype.keeps_history:
                expression = Rollback(identifier, txn)
                assert canonical(sharded.evaluate(expression)) == (
                    canonical(expression.evaluate(oracle))
                ), f"ρ({identifier!r}, {txn})"
