"""Partitioners: determinism, bounds, and configuration validation."""

import pytest

from repro.errors import ShardingError
from repro.sharding import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)


class TestPartitionerContract:
    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Partitioner().shard_for("r", 2)

    def test_out_of_bounds_mappings_are_rejected(self):
        class Bad(Partitioner):
            def shard_for(self, identifier, shard_count):
                return self._check(shard_count + 3, shard_count)

        with pytest.raises(ShardingError, match="mapped to shard"):
            Bad().shard_for("r", 2)

    def test_reprs_name_the_configuration(self):
        assert repr(HashPartitioner(salt=7)) == "HashPartitioner(salt=7)"
        assert repr(RangePartitioner(["m"])) == "RangePartitioner(['m'])"


class TestHashPartitioner:
    def test_deterministic_across_instances(self):
        a, b = HashPartitioner(), HashPartitioner()
        for identifier in ("alpha", "omega", "x", "payroll_2024"):
            assert a.shard_for(identifier, 5) == b.shard_for(
                identifier, 5
            )

    def test_stays_in_bounds(self):
        partitioner = HashPartitioner()
        for count in (1, 2, 3, 7):
            for index in range(50):
                shard = partitioner.shard_for(f"rel{index}", count)
                assert 0 <= shard < count

    def test_single_shard_maps_everything_to_zero(self):
        partitioner = HashPartitioner(salt=123)
        assert all(
            partitioner.shard_for(f"r{i}", 1) == 0 for i in range(20)
        )

    def test_salt_changes_the_spread(self):
        identifiers = [f"rel{i}" for i in range(64)]
        base = [HashPartitioner().shard_for(i, 8) for i in identifiers]
        salted = [
            HashPartitioner(salt=99).shard_for(i, 8)
            for i in identifiers
        ]
        assert base != salted

    def test_spreads_identifiers(self):
        partitioner = HashPartitioner()
        used = {
            partitioner.shard_for(f"relation_{i}", 4)
            for i in range(100)
        }
        assert used == {0, 1, 2, 3}

    def test_rejects_empty_shard_set(self):
        with pytest.raises(ShardingError):
            HashPartitioner().shard_for("r", 0)


class TestRangePartitioner:
    def test_lexicographic_placement(self):
        partitioner = RangePartitioner(["m"])
        assert partitioner.shard_for("abc", 2) == 0
        assert partitioner.shard_for("zeta", 2) == 1
        # boundary identifier goes right (bisect_right semantics)
        assert partitioner.shard_for("m", 2) == 1

    def test_multiple_boundaries(self):
        partitioner = RangePartitioner(["g", "p"])
        assert partitioner.shard_for("alpha", 3) == 0
        assert partitioner.shard_for("hist", 3) == 1
        assert partitioner.shard_for("snap", 3) == 2

    def test_requires_enough_shards(self):
        partitioner = RangePartitioner(["g", "p"])
        with pytest.raises(ShardingError):
            partitioner.shard_for("alpha", 2)

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ShardingError):
            RangePartitioner(["p", "g"])

    def test_rejects_duplicate_boundaries(self):
        with pytest.raises(ShardingError):
            RangePartitioner(["g", "g"])
