"""Edge-path coverage sweep: error branches and minor API surfaces not
exercised elsewhere."""

import pytest

from repro.errors import (
    CommandError,
    ExpressionError,
    LexError,
    ParseError,
    PredicateError,
    ReproError,
    SchemaError,
    StorageError,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        import inspect

        import repro.errors as errors_module

        for name in errors_module.__all__:
            cls = getattr(errors_module, name)
            assert inspect.isclass(cls)
            assert issubclass(cls, ReproError)

    def test_positioned_errors_carry_position(self):
        assert LexError("x", 5).position == 5
        assert ParseError("x", 7).position == 7
        assert LexError("x").position == -1


class TestExpressionReprs:
    """Every node repr must be non-empty and distinctive (used by the
    rewriter trace and error messages)."""

    def test_reprs(self):
        from repro.core.expressions import (
            Const,
            Derive,
            Difference,
            Product,
            Project,
            Rename,
            Rollback,
            Select,
            Union,
        )
        from repro.core.txn import NOW
        from repro.snapshot.predicates import Comparison, attr, lit
        from repro.snapshot.schema import Schema
        from repro.snapshot.state import SnapshotState

        c = Const(SnapshotState(Schema(["k"]), [[1]]))
        nodes = [
            c,
            Union(c, c),
            Difference(c, c),
            Product(c, Const(SnapshotState(Schema(["x"]), [[2]]))),
            Project(c, ["k"]),
            Select(c, Comparison(attr("k"), "=", lit(1))),
            Rename(c, {"k": "j"}),
            Derive(c),
            Rollback("r", NOW),
            Rollback("r", 3),
        ]
        reprs = [repr(n) for n in nodes]
        assert all(reprs)
        assert len(set(reprs)) == len(reprs)

    def test_command_reprs(self):
        from repro.core.commands import (
            DefineRelation,
            ModifyState,
            Sequence,
        )
        from repro.core.expressions import Rollback

        d = DefineRelation("r", "rollback")
        m = ModifyState("r", Rollback("r"))
        s = Sequence(d, m)
        assert "define_relation" in repr(d)
        assert "modify_state" in repr(m)
        assert ";" in repr(s)


class TestSessionEdges:
    def test_execute_command_accepts_ast(self):
        from repro.core.commands import DefineRelation
        from repro.lang.session import Session

        session = Session()
        session.execute_command(DefineRelation("r", "rollback"))
        assert session.transaction_number == 1

    def test_query_accepts_expression_objects(self):
        from repro.core.expressions import Const
        from repro.lang.session import Session
        from repro.snapshot.schema import Schema
        from repro.snapshot.state import SnapshotState

        session = Session()
        state = SnapshotState(Schema(["k"]), [[1]])
        assert session.query(Const(state)) == state


class TestPrinterErrorPaths:
    def test_unprintable_literal_rejected(self):
        from repro.lang.ast_printer import _format_literal

        with pytest.raises(ExpressionError):
            _format_literal(3.14159)  # floats have no literal syntax

    def test_float_values_cannot_round_trip_but_work_in_api(self):
        # floats are fine in the programmatic API (NUMBER domain) ...
        from repro.snapshot.attributes import NUMBER, Attribute
        from repro.snapshot.schema import Schema
        from repro.snapshot.state import SnapshotState

        state = SnapshotState(
            Schema([Attribute("x", NUMBER)]), [[1.5]]
        )
        assert len(state) == 1
        # ... the concrete syntax just has no literal for them, and the
        # printer says so instead of emitting garbage.
        from repro.core.expressions import Const
        from repro.lang.ast_printer import format_expression

        with pytest.raises(ExpressionError):
            format_expression(Const(state))


class TestVersionedDatabaseEdges:
    def test_unknown_command_type_rejected(self):
        from repro.core.commands import Command
        from repro.storage import FullCopyBackend, VersionedDatabase

        class Mystery(Command):
            pass

        with pytest.raises(CommandError):
            VersionedDatabase(FullCopyBackend()).execute(Mystery())

    def test_define_via_string_type(self):
        from repro.storage import FullCopyBackend, VersionedDatabase

        vdb = VersionedDatabase(FullCopyBackend())
        vdb.define("r", "temporal")
        from repro.core.relation import RelationType

        assert vdb.backend.type_of("r") is RelationType.TEMPORAL

    def test_backend_property(self):
        from repro.storage import FullCopyBackend, VersionedDatabase

        backend = FullCopyBackend()
        assert VersionedDatabase(backend).backend is backend


class TestWorkloadEdges:
    def test_update_stream_schema_property(self):
        from repro.workloads import UpdateStream

        stream = UpdateStream(3, cardinality=5)
        assert "key" in stream.schema.names

    def test_state_generator_periods_nonempty(self):
        from repro.workloads import StateGenerator

        gen = StateGenerator(seed=9)
        for _ in range(20):
            assert not gen.random_periods().is_empty()


class TestArchiveEdges:
    def test_segments_of_unknown_relation(self):
        from repro.archive import ArchiveStore

        assert ArchiveStore().segments_of("ghost") == ()

    def test_last_archived_txn_none(self):
        from repro.archive import ArchiveStore

        assert ArchiveStore().last_archived_txn("ghost") is None


class TestCostModelEdges:
    def test_unknown_expression_gets_default(self):
        from repro.core.expressions import Expression
        from repro.optimizer.cost import (
            DEFAULT_RELATION_CARD,
            estimate_cardinality,
        )

        class Exotic(Expression):
            def evaluate(self, database):
                raise NotImplementedError

        assert (
            estimate_cardinality(Exotic()) == DEFAULT_RELATION_CARD
        )


class TestStorageAtomHelpers:
    def test_state_kind_and_roundtrip(self):
        from repro.historical.state import HistoricalState
        from repro.snapshot.schema import Schema
        from repro.snapshot.state import SnapshotState
        from repro.storage.backend import (
            atoms_of,
            state_from_atoms,
            state_kind,
        )

        schema = Schema(["k"])
        snap = SnapshotState(schema, [[1], [2]])
        hist = HistoricalState.from_rows(schema, [([1], [(0, 5)])])
        assert state_kind(snap) == "snapshot"
        assert state_kind(hist) == "historical"
        assert (
            state_from_atoms(schema, "snapshot", atoms_of(snap)) == snap
        )
        assert (
            state_from_atoms(schema, "historical", atoms_of(hist))
            == hist
        )

    def test_historical_kind_revalidates(self):
        from repro.errors import SchemaError as _SchemaError
        from repro.snapshot.schema import Schema
        from repro.storage.backend import state_from_atoms

        # the historical path re-coalesces, which validates atom schemas
        from repro.historical.periods import PeriodSet
        from repro.historical.tuples import HistoricalTuple

        wrong = HistoricalTuple(
            [1], PeriodSet([(0, 1)]), schema=Schema(["x"])
        )
        with pytest.raises(_SchemaError):
            state_from_atoms(Schema(["k"]), "historical", [wrong])
