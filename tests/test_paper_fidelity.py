"""Paper fidelity: one test per displayed semantic equation.

Each test quotes the equation from McKenzie & Snodgrass (SIGMOD 1987) it
checks, using the library's constructs on both sides, so a reviewer can
audit the reproduction equation by equation.
"""

import pytest

from repro.core.commands import DefineRelation, ModifyState, Sequence
from repro.core.database import EMPTY_DATABASE, Database, DatabaseState
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Product,
    Project,
    Rollback,
    Select,
    Union,
    is_empty_set,
)
from repro.core.relation import (
    EMPTY_STATE,
    Relation,
    RelationType,
    find_state,
)
from repro.core.sentences import Sentence
from repro.core.txn import NOW
from repro.historical.operators import (
    historical_derive,
    historical_difference,
    historical_product,
    historical_project,
    historical_select,
    historical_union,
)
from repro.historical.predicates import ValidAt
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import ValidTime
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.operators import (
    difference as snap_difference,
    product as snap_product,
    project as snap_project,
    select as snap_select,
    union as snap_union,
)
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
X = Schema([Attribute("x", INTEGER)])

A1 = SnapshotState(KV, [[1, 10], [2, 20]])
A2 = SnapshotState(KV, [[2, 20], [3, 30]])
A3 = SnapshotState(X, [[7], [8]])
F = Comparison(attr("k"), ">", lit(1))

H1 = HistoricalState.from_rows(KV, [([1, 10], [(0, 5)])])
H2 = HistoricalState.from_rows(
    KV, [([1, 10], [(3, 9)]), ([2, 20], [(1, 4)])]
)
HX = HistoricalState.from_rows(X, [([7], [(2, 8)])])


@pytest.fixture
def db():
    """A database with a rollback relation r (states at txns 2, 3) and a
    temporal relation t (states at txns 5, 6)."""
    program = Sequence(
        Sequence(
            Sequence(
                DefineRelation("r", "rollback"),      # txn 1
                ModifyState("r", Const(A1)),          # txn 2
            ),
            Sequence(
                ModifyState("r", Const(A2)),          # txn 3
                DefineRelation("t", "temporal"),      # txn 4
            ),
        ),
        Sequence(
            ModifyState("t", Const(H1)),              # txn 5
            ModifyState("t", Const(H2)),              # txn 6
        ),
    )
    return program.execute(EMPTY_DATABASE)


class TestSection34Expressions:
    """Section 3.4: the semantic function E."""

    def test_constant(self, db):
        """E[[A]] d ≜ S[[A]]"""
        assert Const(A1).evaluate(db) == A1

    def test_union(self, db):
        """E[[E1 ∪ E2]] d ≜ E[[E1]] d ∪ E[[E2]] d"""
        e1, e2 = Const(A1), Const(A2)
        assert Union(e1, e2).evaluate(db) == snap_union(
            e1.evaluate(db), e2.evaluate(db)
        )

    def test_difference(self, db):
        """E[[E1 − E2]] d ≜ E[[E1]] d − E[[E2]] d"""
        e1, e2 = Const(A1), Const(A2)
        assert Difference(e1, e2).evaluate(db) == snap_difference(
            e1.evaluate(db), e2.evaluate(db)
        )

    def test_product(self, db):
        """E[[E1 × E2]] d ≜ E[[E1]] d × E[[E2]] d"""
        e1, e2 = Const(A1), Const(A3)
        assert Product(e1, e2).evaluate(db) == snap_product(
            e1.evaluate(db), e2.evaluate(db)
        )

    def test_project(self, db):
        """E[[π_X(E)]] d ≜ π_X(E[[E]] d)"""
        e = Const(A1)
        assert Project(e, ["k"]).evaluate(db) == snap_project(
            e.evaluate(db), ["k"]
        )

    def test_select(self, db):
        """E[[σ_F(E)]] d ≜ σ_F(E[[E]] d)"""
        e = Const(A1)
        assert Select(e, F).evaluate(db) == snap_select(
            e.evaluate(db), F
        )

    def test_rollback_with_infinity(self, db):
        """E[[ρ(I, N)]] d ≜ FINDSTATE(r, n)  if N = ∞,
        where d = (b, n) and r = b(I)"""
        r = db.require("r")
        assert Rollback("r", NOW).evaluate(db) == find_state(
            r, db.transaction_number
        )

    def test_rollback_with_numeral(self, db):
        """E[[ρ(I, N)]] d ≜ FINDSTATE(r, N[[N]])  if N ≠ ∞"""
        r = db.require("r")
        for n in (2, 3, 7):
            assert Rollback("r", n).evaluate(db) == find_state(r, n)

    def test_evaluation_does_not_change_the_database(self, db):
        """'evaluation of an expression on a specific database does not
        change that database'"""
        snapshot = db
        Rollback("r", 2).evaluate(db)
        Select(Rollback("r", NOW), F).evaluate(db)
        assert db == snapshot


class TestSection33FindState:
    """Section 3.3: FINDSTATE returns the state with 'the largest
    transaction-number component less than or equal to a given integer',
    or 'the empty set' otherwise."""

    def test_interpolation(self):
        r = Relation(
            RelationType.ROLLBACK, [(A1, 2), (A2, 5)]
        )
        assert find_state(r, 2) == A1
        assert find_state(r, 4) == A1
        assert find_state(r, 5) == A2
        assert find_state(r, 99) == A2

    def test_empty_cases(self):
        r = Relation(RelationType.ROLLBACK, [(A1, 2)])
        assert find_state(r, 1) is EMPTY_STATE
        empty = Relation(RelationType.ROLLBACK, ())
        assert find_state(empty, 10) is EMPTY_STATE


class TestSection35Commands:
    """Section 3.5: the semantic function C."""

    def test_define_relation_unbound_branch(self):
        """'then (b[(Y[[Y]], ⟨⟩)/I], n+1)'"""
        d = EMPTY_DATABASE
        d2 = DefineRelation("r", "rollback").execute(d)
        assert d2.transaction_number == d.transaction_number + 1
        r = d2.require("r")
        assert r.rtype is RelationType.ROLLBACK
        assert r.rstate == ()

    def test_define_relation_bound_branch(self, db):
        """'else d' — the database, including its transaction number,
        is unchanged."""
        assert DefineRelation("r", "snapshot").execute(db) == db

    def test_modify_state_snapshot_branch(self):
        """'then (b[(RTYPE(r), ⟨(E[[E]]d, n+1)⟩)/I], n+1)' — the single
        element is replaced."""
        d = DefineRelation("s", "snapshot").execute(EMPTY_DATABASE)
        d = ModifyState("s", Const(A1)).execute(d)
        d = ModifyState("s", Const(A2)).execute(d)
        r = d.require("s")
        assert r.rstate == ((A2, 3),)
        assert d.transaction_number == 3

    def test_modify_state_rollback_branch(self, db):
        """'then (b[(RTYPE(r), RSTATE(r) || (E[[E]]d, n+1))/I], n+1)' —
        the new pair is concatenated."""
        before = db.require("r").rstate
        d2 = ModifyState("r", Const(A1)).execute(db)
        after = d2.require("r").rstate
        assert after == before + ((A1, db.transaction_number + 1),)

    def test_modify_state_unbound_branch(self, db):
        """'else d'"""
        assert ModifyState("ghost", Const(A1)).execute(db) == db

    def test_modify_state_temporal_branch(self, db):
        """Section 4's extension: temporal relations append historical
        states."""
        before = db.require("t").rstate
        h3 = HistoricalState.from_rows(KV, [([9, 9], [(0, 1)])])
        d2 = ModifyState("t", Const(h3)).execute(db)
        assert d2.require("t").rstate == before + (
            (h3, db.transaction_number + 1),
        )

    def test_sequence_composition(self, db):
        """C[[C1, C2]] d ≜ C[[C2]](C[[C1]] d)"""
        c1 = ModifyState("r", Const(A1))
        c2 = ModifyState("r", Const(A2))
        assert Sequence(c1, c2).execute(db) == c2.execute(
            c1.execute(db)
        )


class TestSection36Sentences:
    """Section 3.6: P[[C]] ≜ C[[C]](EMPTY, 0)."""

    def test_sentence_starts_at_empty_zero(self):
        command = DefineRelation("r", "rollback")
        assert Sentence([command]).evaluate() == command.execute(
            Database(DatabaseState(), 0)
        )

    def test_empty_database_definition(self):
        """'the database-state component ... maps all identifiers to ⊥
        ... and the transaction-count component ... is set to 0'"""
        assert EMPTY_DATABASE.transaction_number == 0
        assert EMPTY_DATABASE.lookup("anything") is None


class TestSection4Historical:
    """Section 4: the historical counterparts of E's equations."""

    def test_historical_union(self, db):
        e1, e2 = Const(H1), Const(H2)
        assert Union(e1, e2).evaluate(db) == historical_union(H1, H2)

    def test_historical_difference(self, db):
        e1, e2 = Const(H2), Const(H1)
        assert Difference(e1, e2).evaluate(db) == (
            historical_difference(H2, H1)
        )

    def test_historical_product(self, db):
        e1, e2 = Const(H1), Const(HX)
        assert Product(e1, e2).evaluate(db) == historical_product(
            H1, HX
        )

    def test_historical_project_and_select(self, db):
        e = Const(H2)
        assert Project(e, ["k"]).evaluate(db) == historical_project(
            H2, ["k"]
        )
        assert Select(e, F).evaluate(db) == historical_select(H2, F)

    def test_historical_derive(self, db):
        """E[[δ_{G,V}(E)]] d ≜ δ_{G,V}(E[[E]] d)"""
        g = ValidAt(ValidTime(), 3)
        assert Derive(Const(H2), predicate=g).evaluate(db) == (
            historical_derive(H2, g)
        )

    def test_historical_rollback(self, db):
        """E[[ρ̂(I, N)]] d — identical structure to ρ."""
        t = db.require("t")
        assert Rollback("t", 5).evaluate(db) == find_state(t, 5)
        assert Rollback("t", NOW).evaluate(db) == find_state(
            t, db.transaction_number
        )

    def test_rollback_on_snapshot_relation_restriction(self):
        """Section 3.1: 'The rollback operator cannot retrieve a past
        state of a snapshot relation.'"""
        d = DefineRelation("s", "snapshot").execute(EMPTY_DATABASE)
        d = ModifyState("s", Const(A1)).execute(d)
        from repro.errors import RelationTypeError

        with pytest.raises(RelationTypeError):
            Rollback("s", 1).evaluate(d)
        # but N = ∞ is allowed on snapshot relations
        assert Rollback("s", NOW).evaluate(d) == A1

    def test_strictly_increasing_transaction_numbers(self, db):
        """Section 3.2: 'the transaction-number components of a state
        sequence ... will be nevertheless strictly increasing'"""
        for identifier in ("r", "t"):
            txns = db.require(identifier).transaction_numbers
            assert list(txns) == sorted(set(txns))
