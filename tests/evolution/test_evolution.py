"""Tests for the scheme-evolution extension (TR87-003)."""

import pytest

from repro.errors import EvolutionError
from repro.core.expressions import Const, Rollback, Union
from repro.evolution import EvolvingDatabase, SchemeHistory, SchemeVersion
from repro.core.relation import RelationType
from repro.historical.state import HistoricalState
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

EMP = Schema([Attribute("name", STRING)])


def emp_state(schema, *rows):
    return SnapshotState(schema, [list(r) for r in rows])


@pytest.fixture
def db():
    ev = EvolvingDatabase()
    ev.define_relation("emp", "rollback", EMP)
    ev.modify_state("emp", Const(emp_state(EMP, ["ann"], ["bob"])))
    return ev


class TestSchemeHistory:
    def test_version_at_interpolates(self):
        history = SchemeHistory(
            SchemeVersion(EMP, RelationType.ROLLBACK, True, 2)
        )
        wider = Schema([Attribute("name", STRING), Attribute("dept", STRING)])
        history.record(
            SchemeVersion(wider, RelationType.ROLLBACK, True, 5)
        )
        assert history.version_at(1) is None
        assert history.version_at(2).schema == EMP
        assert history.version_at(4).schema == EMP
        assert history.version_at(5).schema == wider
        assert history.version_at(99).schema == wider

    def test_non_increasing_rejected(self):
        history = SchemeHistory(
            SchemeVersion(EMP, RelationType.ROLLBACK, True, 2)
        )
        with pytest.raises(EvolutionError):
            history.record(
                SchemeVersion(EMP, RelationType.ROLLBACK, True, 2)
            )

    def test_type_change_rejected(self):
        history = SchemeHistory(
            SchemeVersion(EMP, RelationType.ROLLBACK, True, 2)
        )
        with pytest.raises(EvolutionError):
            history.record(
                SchemeVersion(EMP, RelationType.SNAPSHOT, True, 3)
            )


class TestDefineAndModify:
    def test_redefinition_is_an_error(self, db):
        with pytest.raises(EvolutionError, match="already defined"):
            db.define_relation("emp", "rollback", EMP)

    def test_modify_validates_schema(self, db):
        wrong = SnapshotState(Schema(["x"]), [["q"]])
        with pytest.raises(EvolutionError, match="does not match"):
            db.modify_state("emp", Const(wrong))

    def test_modify_unknown_relation(self, db):
        with pytest.raises(EvolutionError, match="not defined"):
            db.modify_state("ghost", Const(emp_state(EMP, ["x"])))

    def test_rollback_reads(self, db):
        assert db.rollback("emp").sorted_rows() == [("ann",), ("bob",)]


class TestDeleteRelation:
    def test_snapshot_relation_vanishes(self):
        ev = EvolvingDatabase()
        ev.define_relation("s", "snapshot", EMP)
        ev.modify_state("s", Const(emp_state(EMP, ["x"])))
        ev.delete_relation("s")
        assert not ev.is_alive("s")
        # the underlying binding is gone entirely
        assert ev.database.lookup("s") is None

    def test_rollback_relation_keeps_history(self, db):
        txn_before_delete = db.transaction_number
        db.delete_relation("emp")
        assert not db.is_alive("emp")
        # past states remain rollback-accessible
        past = db.rollback("emp", txn_before_delete)
        assert past.sorted_rows() == [("ann",), ("bob",)]

    def test_deleted_relation_rejects_current_reads(self, db):
        db.delete_relation("emp")
        with pytest.raises(EvolutionError):
            db.rollback("emp")

    def test_deleted_relation_rejects_updates(self, db):
        db.delete_relation("emp")
        with pytest.raises(EvolutionError):
            db.modify_state("emp", Const(emp_state(EMP, ["zed"])))

    def test_double_delete_rejected(self, db):
        db.delete_relation("emp")
        with pytest.raises(EvolutionError, match="already deleted"):
            db.delete_relation("emp")

    def test_delete_consumes_a_transaction(self, db):
        before = db.transaction_number
        db.delete_relation("emp")
        assert db.transaction_number == before + 1


class TestSchemeChanges:
    def test_add_attribute_with_default(self, db):
        db.add_attribute("emp", Attribute("dept", STRING), "unknown")
        assert db.current_scheme("emp").names == ("name", "dept")
        assert db.rollback("emp").sorted_rows() == [
            ("ann", "unknown"),
            ("bob", "unknown"),
        ]

    def test_add_duplicate_attribute_rejected(self, db):
        with pytest.raises(EvolutionError):
            db.add_attribute("emp", Attribute("name", STRING), "")

    def test_past_states_keep_old_scheme(self, db):
        txn_before = db.transaction_number
        db.add_attribute("emp", Attribute("dept", STRING), "unknown")
        # dictionary rollback
        assert db.scheme_at("emp", txn_before).names == ("name",)
        # data rollback matches the old scheme
        past = db.rollback("emp", txn_before)
        assert past.schema.names == ("name",)

    def test_drop_attribute(self, db):
        db.add_attribute("emp", Attribute("dept", STRING), "cs")
        db.drop_attribute("emp", "dept")
        assert db.current_scheme("emp").names == ("name",)
        assert db.rollback("emp").sorted_rows() == [("ann",), ("bob",)]

    def test_drop_merges_under_set_semantics(self):
        ev = EvolvingDatabase()
        wide = Schema(
            [Attribute("name", STRING), Attribute("dept", STRING)]
        )
        ev.define_relation("emp", "rollback", wide)
        ev.modify_state(
            "emp",
            Const(emp_state(wide, ["ann", "cs"], ["ann", "math"])),
        )
        ev.drop_attribute("emp", "dept")
        assert ev.rollback("emp").sorted_rows() == [("ann",)]

    def test_drop_unknown_rejected(self, db):
        with pytest.raises(EvolutionError):
            db.drop_attribute("emp", "ghost")

    def test_drop_last_attribute_rejected(self, db):
        with pytest.raises(EvolutionError):
            db.drop_attribute("emp", "name")

    def test_rename_attribute(self, db):
        db.rename_attribute("emp", "name", "who")
        assert db.current_scheme("emp").names == ("who",)
        assert db.rollback("emp").sorted_rows() == [("ann",), ("bob",)]

    def test_scheme_change_on_deleted_rejected(self, db):
        db.delete_relation("emp")
        with pytest.raises(EvolutionError):
            db.add_attribute("emp", Attribute("x", STRING), "")

    def test_updates_continue_under_new_scheme(self, db):
        db.add_attribute("emp", Attribute("dept", STRING), "cs")
        wider = db.current_scheme("emp")
        db.modify_state(
            "emp",
            Union(
                Rollback("emp"),
                Const(emp_state(wider, ["cat", "math"])),
            ),
        )
        assert len(db.rollback("emp")) == 3

    def test_historical_relation_scheme_change(self):
        ev = EvolvingDatabase()
        k = Schema([Attribute("k", INTEGER)])
        ev.define_relation("h", "temporal", k)
        ev.modify_state(
            "h",
            Const(HistoricalState.from_rows(k, [([1], [(0, 5)])])),
        )
        ev.add_attribute("h", Attribute("tag", STRING), "none")
        current = ev.rollback("h")
        (t,) = current.tuples
        assert t.value.values == (1, "none")
        assert t.valid_time.covers(3)
