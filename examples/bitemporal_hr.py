#!/usr/bin/env python3
"""Bitemporal scenario: an HR system with retroactive corrections.

A *temporal* relation records both when facts held in the real world
(valid time) and when the database learned them (transaction time) —
Section 4 of the paper.  The scenario:

* txn 2 — HR records that ann chaired the committee during [10, 20).
* txn 3 — bob is recorded as chair from 20 onward.
* txn 4 — a retroactive correction: ann actually served until 25, so
  bob's chairship started at 25.

With ``ρ̂`` (rollback) and ``δ`` (valid-time selection) we can answer all
four bitemporal question shapes, and we show the paper's claim that
Ben-Zvi's Time-View operator is the special case ``δ(ρ̂(...))`` followed
by a timeslice.

Run:  python examples/bitemporal_hr.py
"""

from repro import (
    Attribute,
    Const,
    DefineRelation,
    Derive,
    FOREVER,
    HistoricalState,
    ModifyState,
    NOW,
    Rollback,
    STRING,
    Schema,
    run,
)
from repro.historical.predicates import ValidAt
from repro.historical.temporal_exprs import ValidTime

CHAIRS = Schema([Attribute("who", STRING)])


def history(*rows):
    return Const(HistoricalState.from_rows(CHAIRS, list(rows)))


def main() -> None:
    database = run(
        [
            DefineRelation("chairs", "temporal"),  # txn 1
            # txn 2: ann chaired during [10, 20)
            ModifyState("chairs", history((["ann"], [(10, 20)]))),
            # txn 3: bob becomes chair from 20 on
            ModifyState(
                "chairs",
                history(
                    (["ann"], [(10, 20)]),
                    (["bob"], [(20, FOREVER)]),
                ),
            ),
            # txn 4: retroactive correction — ann served until 25
            ModifyState(
                "chairs",
                history(
                    (["ann"], [(10, 25)]),
                    (["bob"], [(25, FOREVER)]),
                ),
            ),
        ]
    )

    def who_chaired(valid_time, txn_time):
        """Time-View in the paper's language: δ_{valid at v}(ρ̂(R, t))."""
        expression = Derive(
            Rollback("chairs", txn_time),
            predicate=ValidAt(ValidTime(), valid_time),
        )
        state = expression.evaluate(database)
        return sorted(t["who"] for t in state.tuples)

    print("Who chaired at real-world time 22 ...")
    print(f"  ... according to the database as of txn 3: "
          f"{who_chaired(22, 3)}")
    print(f"  ... according to the database now:         "
          f"{who_chaired(22, NOW)}")
    print()
    print("The correction at txn 4 changed history *as recorded*, but the")
    print("pre-correction belief is still rollback-accessible — nothing is")
    print("ever overwritten in a temporal relation.")
    print()

    # Full bitemporal matrix.
    print("belief matrix (rows: transaction time; cols: valid time):")
    valid_probes = [12, 18, 22, 27]
    header = "  txn | " + " | ".join(f"v={v:2d}" for v in valid_probes)
    print(header)
    print("  " + "-" * (len(header) - 2))
    for txn in (2, 3, 4):
        cells = []
        for v in valid_probes:
            names = who_chaired(v, txn)
            cells.append((names[0] if names else "—").ljust(4))
        print(f"   {txn}  | " + " | ".join(cells))

    # The richer answer our language gives: the full valid-time period,
    # not just membership at one chronon.
    print()
    current = Rollback("chairs", NOW).evaluate(database)
    print("current belief with full valid times:")
    for row in current.sorted_rows():
        print(f"  {row[0]}: {row[1]}")


if __name__ == "__main__":
    main()
