#!/usr/bin/env python3
"""Choosing a physical representation for a rollback relation.

The paper stores a full state per transaction — simple semantics, heavy
storage.  This example pushes an identical synthetic update history
through all five backends, verifies they are observation-equivalent, and
prints the space/latency trade-offs so a user can pick a representation
for their workload.

Run:  python examples/storage_tradeoffs.py
"""

import time

from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    backends_agree,
)
from repro.workloads import churn_stream, populate_backends

HISTORY = 200          # transactions
CARDINALITY = 150      # tuples per state
CHURN = 0.05           # fraction of tuples changed per transaction


def time_probe(backend, txn, repeat=30) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        backend.state_at("r", txn)
    return (time.perf_counter() - start) / repeat * 1e6  # µs


def main() -> None:
    print(
        f"workload: {HISTORY} transactions, ~{CARDINALITY} tuples/state, "
        f"{CHURN:.0%} churn"
    )
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=7
    )
    backends = [
        FullCopyBackend(),
        DeltaBackend(),
        ReverseDeltaBackend(),
        CheckpointDeltaBackend(16),
        TupleTimestampBackend(),
    ]
    populate_backends(backends, states)

    probes = [("r", txn) for txn in range(1, HISTORY + 2, 9)]
    backends_agree(backends, probes)
    print(f"all {len(backends)} backends agree on {len(probes)} probes\n")

    total_logical_atoms = sum(len(s) for s in states)
    print(
        f"logical content: {total_logical_atoms} tuple-versions across "
        "the history\n"
    )
    header = (
        f"{'backend':18s} {'stored atoms':>12s} {'vs full':>8s} "
        f"{'read current':>13s} {'read oldest':>12s}"
    )
    print(header)
    print("-" * len(header))
    full_atoms = backends[0].stored_atoms()
    for backend in backends:
        atoms = backend.stored_atoms()
        current_us = time_probe(backend, HISTORY + 1)
        oldest_us = time_probe(backend, 2)
        print(
            f"{backend.name:18s} {atoms:12d} {atoms / full_atoms:7.1%} "
            f"{current_us:10.0f} µs {oldest_us:9.0f} µs"
        )

    print(
        "\nreading: full-copy is O(1) everywhere; forward deltas pay to"
        "\nread recent states, reverse deltas pay to read old ones;"
        "\ncheckpoints bound the replay; tuple timestamping scans the"
        "\nrelation's episodes regardless of depth."
    )


if __name__ == "__main__":
    main()
