#!/usr/bin/env python3
"""Quickstart: the paper's language in five minutes.

Builds a rollback relation, updates it through several transactions, then
uses the new rollback operator ρ to ask "what did the database say at
transaction N?" — the query a conventional (snapshot) database cannot
answer.

Run:  python examples/quickstart.py
"""

from repro import (
    Attribute,
    Comparison,
    Const,
    DefineRelation,
    ModifyState,
    NOW,
    Project,
    Rollback,
    STRING,
    Schema,
    Select,
    SnapshotState,
    Union,
    attr,
    lit,
    run,
)
from repro.lang import Session


def constructed_api() -> None:
    """The programmatic API: commands and expressions as Python objects."""
    print("=" * 64)
    print("1. Programmatic API")
    print("=" * 64)

    faculty = Schema([Attribute("name", STRING), Attribute("rank", STRING)])

    def state(*rows):
        return Const(SnapshotState(faculty, [list(r) for r in rows]))

    # A sentence: commands evaluated in order against the empty database.
    database = run(
        [
            # txn 1: create an (empty) rollback relation
            DefineRelation("faculty", "rollback"),
            # txn 2: merrie is hired as an assistant professor
            ModifyState("faculty", state(("merrie", "assistant"))),
            # txn 3: tom joins as a full professor — an *append*, phrased
            # as ρ(faculty, now) ∪ {new tuple}
            ModifyState(
                "faculty",
                Union(Rollback("faculty", NOW), state(("tom", "full"))),
            ),
            # txn 4: merrie is promoted — a *replace*
            ModifyState(
                "faculty",
                state(("merrie", "associate"), ("tom", "full")),
            ),
        ]
    )

    print(f"database is now at transaction {database.transaction_number}")

    # The rollback operator ρ retrieves any past state.
    for txn in (2, 3, 4):
        past = Rollback("faculty", txn).evaluate(database)
        print(f"  ρ(faculty, {txn}) = {past.sorted_rows()}")

    # ρ(I, ∞) — spelled NOW — retrieves the current state.
    current = Rollback("faculty", NOW).evaluate(database)
    print(f"  ρ(faculty, ∞) = {current.sorted_rows()}")

    # Ordinary algebra composes over rollback: who was an assistant
    # professor as of transaction 2?
    question = Project(
        Select(
            Rollback("faculty", 2),
            Comparison(attr("rank"), "=", lit("assistant")),
        ),
        ["name"],
    )
    print(f"  assistants as of txn 2: {question.evaluate(database).sorted_rows()}")

    # Crucially: none of those queries changed the database.
    assert database.transaction_number == 4


def concrete_syntax() -> None:
    """The same story in the concrete syntax, via a Session."""
    print()
    print("=" * 64)
    print("2. Concrete syntax")
    print("=" * 64)

    session = Session()
    session.execute(
        """
        define_relation(faculty, rollback);
        modify_state(faculty,
            state (name: string, rank: string)
                  { ("merrie", "assistant") });
        modify_state(faculty,
            rollback(faculty, now)
            union state (name: string, rank: string) { ("tom", "full") });
        modify_state(faculty,
            state (name: string, rank: string)
                  { ("merrie", "associate"), ("tom", "full") });
        """
    )

    print(session.display("faculty"))
    print()
    print(session.display("faculty", 2))
    print()
    result = session.query(
        'project [name] (select [rank = "full"] (rollback(faculty, now)))'
    )
    print(f"full professors now: {result.sorted_rows()}")


if __name__ == "__main__":
    constructed_api()
    concrete_syntax()
