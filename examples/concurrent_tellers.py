#!/usr/bin/env python3
"""Concurrent tellers over one rollback database.

The paper requires implementations that permit concurrent transactions to
"preserve the semantics of sequential update with a monotonically
increasing transaction time" (Section 3.2).  This example runs four
tellers whose transactions interleave randomly, some conflicting on a
shared accounts relation; the transaction manager aborts and retries the
conflicting ones.  At the end we verify the committed database is
identical to replaying the committed transactions serially, in commit
order — the sequential semantics, preserved.

Run:  python examples/concurrent_tellers.py
"""

from repro import (
    Attribute,
    Const,
    DefineRelation,
    INTEGER,
    ModifyState,
    NOW,
    Rollback,
    STRING,
    Schema,
    SnapshotState,
    Union,
)
from repro.concurrency import (
    ClientScript,
    InterleavedScheduler,
    serial_execution,
)

LEDGER = Schema(
    [Attribute("teller", STRING), Attribute("entry", INTEGER)]
)


def post_entry(teller: str, entry: int):
    """A transaction body: append one ledger entry."""

    def body(txn):
        txn.stage(DefineRelation("ledger", "rollback"))
        txn.stage(
            ModifyState(
                "ledger",
                Union(
                    Rollback("ledger", NOW),
                    Const(SnapshotState(LEDGER, [[teller, entry]])),
                ),
            )
        )

    return body


def main() -> None:
    tellers = [
        ClientScript(
            name,
            [post_entry(name, 10 * i + offset) for i in range(5)],
        )
        for offset, name in enumerate(["amy", "ben", "cia", "dev"])
    ]
    # every teller hammers the same relation, so give the optimistic
    # manager a generous retry budget
    scheduler = InterleavedScheduler(
        tellers, seed=2024, overlap=0.75, max_retries=100
    )
    final = scheduler.run()

    print(
        f"committed {scheduler.manager.commit_count} transactions with "
        f"{scheduler.manager.abort_count} aborts/retries"
    )

    replay = serial_execution(scheduler.committed_scripts)
    assert final == replay
    print("serial-replay check: committed database == sequential semantics")

    ledger = Rollback("ledger", NOW).evaluate(final)
    print(f"\nledger holds {len(ledger)} entries; per teller:")
    for name in ["amy", "ben", "cia", "dev"]:
        entries = sorted(
            t["entry"] for t in ledger.tuples if t["teller"] == name
        )
        print(f"  {name}: {entries}")

    # And because the ledger is a rollback relation, the whole posting
    # history is queryable.
    relation = final.require("ledger")
    print(
        f"\nledger recorded {relation.history_length} states at "
        f"transactions {list(relation.transaction_numbers)[:6]}..."
    )
    mid_txn = relation.transaction_numbers[len(relation.rstate) // 2]
    mid = Rollback("ledger", mid_txn).evaluate(final)
    print(f"half-way through (txn {mid_txn}) it held {len(mid)} entries")


if __name__ == "__main__":
    main()
