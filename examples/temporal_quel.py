#!/usr/bin/env python3
"""Temporal updates through the calculus.

The TQuel-flavored statements ``append ... valid``, ``delete`` and
``terminate ... at`` translate to single ``modify_state`` commands over
the historical algebra — the calculus→algebra mapping of the paper's
Section 1, extended to valid time per Section 4.

Scenario: project assignments with retroactive corrections.

Run:  python examples/temporal_quel.py
"""

from repro import Attribute, DefineRelation, NOW, Rollback, STRING, Schema, run
from repro.quel import TemporalQuelTranslator, parse_temporal_statement

ASSIGNMENTS = Schema(
    [Attribute("person", STRING), Attribute("mission", STRING)]
)

HISTORY = [
    # initial plan
    'append to assignments (person = "ann", mission = "apollo") '
    "valid [0, forever)",
    'append to assignments (person = "bob", mission = "apollo") '
    "valid [5, 40)",
    'append to assignments (person = "cat", mission = "borealis") '
    "valid [10, forever)",
    # apollo winds down: everyone on it rolls off at 30
    'terminate assignments where mission = "apollo" at 30',
    # bob's record turns out to be wrong root and branch
    'delete from assignments where person = "bob"',
    # ann moves to borealis after apollo
    'append to assignments (person = "ann", mission = "borealis") '
    "valid [30, forever)",
]


def show(db, txn, label):
    print(f"{label} (transaction {txn!r}):")
    state = Rollback("assignments", txn).evaluate(db)
    for row in state.sorted_rows():
        print(f"  {row[0]:5s} on {row[1]:9s} during {row[2]}")
    print()


def main() -> None:
    translator = TemporalQuelTranslator({"assignments": ASSIGNMENTS})
    commands = [DefineRelation("assignments", "temporal")]
    print("statements executed:")
    for source in HISTORY:
        print(f"  {source}")
        commands.append(
            translator.translate(parse_temporal_statement(source))
        )
    print()
    db = run(commands)

    show(db, 4, "as recorded before the wind-down")
    show(db, NOW, "current belief")

    # bitemporal probe: who did the db think was on apollo at time 35,
    # before vs after the terminate?
    def on_apollo_at(valid_time, txn_time):
        state = Rollback("assignments", txn_time).evaluate(db)
        return sorted(
            t["person"]
            for t in state.snapshot_at(valid_time).tuples
            if t["mission"] == "apollo"
        )

    print("on apollo at real-world time 35:")
    print(f"  believed at txn 4 : {on_apollo_at(35, 4)}")
    print(f"  believed now      : {on_apollo_at(35, NOW)}")


if __name__ == "__main__":
    main()
