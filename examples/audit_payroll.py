#!/usr/bin/env python3
"""Audit scenario: a payroll rollback database.

A payroll relation is updated through Quel-style statements (the calculus
the paper says should map onto the algebra).  Because the relation is a
*rollback* relation, every past payroll state remains queryable — exactly
what an auditor needs to answer "what did the books say when the Q2 report
was filed?", and to detect after-the-fact tampering.

The same history is persisted through two physical backends (the paper's
full-copy semantics and a forward-delta representation) and the example
verifies they answer every audit probe identically — the paper's
correctness criterion for optimized implementations.

Run:  python examples/audit_payroll.py
"""

from repro import Attribute, DefineRelation, INTEGER, NOW, Rollback, STRING, Schema
from repro.quel import QuelTranslator, parse_statement
from repro.core.sentences import run
from repro.storage import (
    DeltaBackend,
    FullCopyBackend,
    VersionedDatabase,
    backends_agree,
)

PAYROLL = Schema(
    [
        Attribute("employee", STRING),
        Attribute("role", STRING),
        Attribute("salary", INTEGER),
    ]
)

# The update history, as the payroll clerk typed it.
STATEMENTS = [
    'append to payroll (employee = "ann", role = "engineer", salary = 95000)',
    'append to payroll (employee = "bob", role = "analyst", salary = 70000)',
    'append to payroll (employee = "cat", role = "engineer", salary = 98000)',
    # Q2 report filed here (transaction 4)
    'replace payroll (salary = 105000) where employee = "ann"',
    'replace payroll (role = "senior analyst", salary = 82000) '
    'where employee = "bob"',
    'delete from payroll where employee = "cat"',
]

Q2_REPORT_TXN = 4


def main() -> None:
    translator = QuelTranslator({"payroll": PAYROLL})
    commands = [DefineRelation("payroll", "rollback")]
    print("update history:")
    for source in STATEMENTS:
        print(f"  {source}")
        commands.append(translator.translate(parse_statement(source)))

    database = run(commands)
    print(f"\ndatabase is at transaction {database.transaction_number}")

    # -- the auditor's questions ------------------------------------------
    print("\nwhat did the books say when the Q2 report was filed (txn 4)?")
    q2 = Rollback("payroll", Q2_REPORT_TXN).evaluate(database)
    for row in q2.sorted_rows():
        print(f"  {row}")

    print("\nwhat do the books say now?")
    now = Rollback("payroll", NOW).evaluate(database)
    for row in now.sorted_rows():
        print(f"  {row}")

    print("\nwho appears in the Q2 filing but not in the current books?")
    departed = q2.tuples - now.tuples
    for t in sorted(departed, key=lambda t: t.values):
        print(f"  {t.values}  (removed or changed after filing)")

    # -- salary drift per transaction ---------------------------------------
    print("\ntotal salary per transaction (the audit trail):")
    for txn in range(2, database.transaction_number + 1):
        state = Rollback("payroll", txn).evaluate(database)
        total = sum(t["salary"] for t in state.tuples)
        print(f"  txn {txn}: {len(state)} employees, total {total}")

    # -- physical-representation check ---------------------------------------
    print("\nverifying optimized storage against the paper's semantics ...")
    backends = [FullCopyBackend(), DeltaBackend()]
    for backend in backends:
        vdb = VersionedDatabase(backend)
        vdb.execute_all(commands)
    probes = [
        ("payroll", txn)
        for txn in range(0, database.transaction_number + 1)
    ]
    assert backends_agree(backends, probes)
    full, delta = backends
    print(
        f"  agreement on {len(probes)} probes; stored atoms: "
        f"full-copy={full.stored_atoms()}, "
        f"forward-delta={delta.stored_atoms()}"
    )


if __name__ == "__main__":
    main()
