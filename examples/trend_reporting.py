#!/usr/bin/env python3
"""Trend reporting over transaction time.

A rollback database makes *trends over the recorded history* a pure
query: aggregate each past state (reached with ρ) and line the results
up by transaction number.  This example builds a small order book,
reports order-count and revenue trends across its history, then saves
the database to JSON and proves the restored copy answers identically.

Run:  python examples/trend_reporting.py
"""

import io

from repro import (
    Attribute,
    DefineRelation,
    INTEGER,
    NOW,
    Rollback,
    STRING,
    Schema,
    run,
)
from repro.persistence import dumps, loads
from repro.quel import QuelTranslator, parse_statement
from repro.snapshot.aggregates import aggregate

ORDERS = Schema(
    [
        Attribute("order_id", INTEGER),
        Attribute("customer", STRING),
        Attribute("amount", INTEGER),
    ]
)

HISTORY = [
    'append to orders (order_id = 1, customer = "acme", amount = 120)',
    'append to orders (order_id = 2, customer = "bolt", amount = 80)',
    'append to orders (order_id = 3, customer = "acme", amount = 200)',
    'replace orders (amount = 150) where order_id = 1',   # price fix
    'append to orders (order_id = 4, customer = "cody", amount = 60)',
    'delete from orders where customer = "bolt"',         # cancellation
    'append to orders (order_id = 5, customer = "acme", amount = 310)',
]


def main() -> None:
    translator = QuelTranslator({"orders": ORDERS})
    commands = [DefineRelation("orders", "rollback")]
    commands += [
        translator.translate(parse_statement(source))
        for source in HISTORY
    ]
    database = run(commands)

    print("revenue trend across the recorded history:")
    print(f"  {'txn':>4s} {'orders':>7s} {'revenue':>8s} {'top customer':>13s}")
    for txn in range(2, database.transaction_number + 1):
        state = Rollback("orders", txn).evaluate(database)
        totals = aggregate(
            state, [], {"n": ("count", None), "rev": ("sum", "amount")}
        )
        ((n, revenue),) = totals.sorted_rows() or ((0, 0),)
        by_customer = aggregate(
            state, ["customer"], {"rev": ("sum", "amount")}
        )
        top = max(
            by_customer.sorted_rows(), key=lambda row: row[1]
        )[0] if len(by_customer) else "—"
        print(f"  {txn:4d} {n:7d} {revenue:8d} {top:>13s}")

    # -- persistence round trip ------------------------------------------
    payload = dumps(database, indent=2)
    restored = loads(payload)
    assert restored == database
    same = (
        Rollback("orders", NOW).evaluate(restored)
        == Rollback("orders", NOW).evaluate(database)
    )
    print(
        f"\nsaved {len(payload)} bytes of JSON; reloaded copy identical: "
        f"{same and restored == database}"
    )

    # -- per-customer lifetime view ----------------------------------------
    print("\nper-customer revenue, then vs now:")
    then = aggregate(
        Rollback("orders", 4).evaluate(database),
        ["customer"],
        {"rev": ("sum", "amount")},
    )
    now = aggregate(
        Rollback("orders", NOW).evaluate(database),
        ["customer"],
        {"rev": ("sum", "amount")},
    )
    then_map = {row[0]: row[1] for row in then.sorted_rows()}
    now_map = {row[0]: row[1] for row in now.sorted_rows()}
    for customer in sorted(set(then_map) | set(now_map)):
        print(
            f"  {customer:6s} txn4={then_map.get(customer, 0):5d}  "
            f"now={now_map.get(customer, 0):5d}"
        )


if __name__ == "__main__":
    main()
