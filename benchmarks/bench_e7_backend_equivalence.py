"""E7 — observation equivalence of every backend with the paper's
semantics (claim C6), over randomized snapshot *and* historical update
streams, plus the cost of running the check itself.
"""

from __future__ import annotations

import time

from repro.core.relation import RelationType
from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
    backends_agree,
)
from repro.workloads import churn_stream, populate_backends


def backend_set():
    return [
        FullCopyBackend(),
        DeltaBackend(),
        ReverseDeltaBackend(),
        CheckpointDeltaBackend(8),
        TupleTimestampBackend(),
    ]


def equivalence_sweep(
    seeds=range(6), history=40, cardinality=30
):
    """Measured rows: (kind, seed, churn, probes checked)."""
    rows = []
    for seed in seeds:
        churn = 0.05 + 0.18 * (seed % 5)
        for historical in (False, True):
            states = churn_stream(
                history,
                cardinality=cardinality,
                churn=churn,
                seed=seed,
                historical=historical,
            )
            backends = backend_set()
            rtype = (
                RelationType.TEMPORAL
                if historical
                else RelationType.ROLLBACK
            )
            populate_backends(backends, states, rtype=rtype)
            probes = [("r", txn) for txn in range(0, history + 3)]
            backends_agree(backends, probes)
            rows.append(
                (
                    "historical" if historical else "snapshot",
                    seed,
                    churn,
                    len(probes) * (len(backends) - 1),
                )
            )
    return rows


def report() -> str:
    lines = ["E7 — backend observation equivalence (claim C6)"]
    start = time.perf_counter()
    rows = equivalence_sweep()
    elapsed = time.perf_counter() - start
    total = sum(row[3] for row in rows)
    kinds = {row[0] for row in rows}
    lines.append(
        f"  {len(rows)} randomized streams ({', '.join(sorted(kinds))}), "
        f"{total} backend-probe comparisons, all equal"
    )
    lines.append(f"  total check time: {elapsed:.2f} s")
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_equivalence_check_snapshot(benchmark):
    states = churn_stream(40, cardinality=30, churn=0.2, seed=5)
    backends = backend_set()
    populate_backends(backends, states)
    probes = [("r", txn) for txn in range(0, 43)]
    assert benchmark(backends_agree, backends, probes)


def bench_equivalence_check_historical(benchmark):
    states = churn_stream(
        25, cardinality=15, churn=0.2, seed=5, historical=True
    )
    backends = backend_set()
    populate_backends(
        backends, states, rtype=RelationType.TEMPORAL
    )
    probes = [("r", txn) for txn in range(0, 28)]
    assert benchmark(backends_agree, backends, probes)


if __name__ == "__main__":
    print(report())
