"""Ablation A3 — coalescing historical states.

DESIGN.md keeps historical states *coalesced*: no two tuples share a
value part.  The ablation compares against an uncoalesced representation
(a bag of (value, period) fragments) under repeated unions:

* correctness: uncoalesced states lose canonical equality — two
  representations of the same information compare unequal — which breaks
  every equivalence check in the reproduction;
* space: fragments accumulate linearly with the number of unions, while
  the coalesced state stays at one tuple per distinct value;
* query cost: timeslices must scan every fragment.
"""

from __future__ import annotations

import time

from repro.historical.operators import historical_union
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema

KV = Schema([Attribute("k", INTEGER)])


def fragment_stream(rounds: int, values: int = 20):
    """Per round, one single-chronon fragment per value."""
    for r in range(rounds):
        yield [
            HistoricalTuple(
                [v], PeriodSet([(r * 2, r * 2 + 1)]), schema=KV
            )
            for v in range(values)
        ]


def run_coalesced(rounds: int, values: int = 20):
    state = HistoricalState.empty(KV)
    for fragments in fragment_stream(rounds, values):
        state = historical_union(
            state, HistoricalState(KV, fragments)
        )
    return state


def run_uncoalesced(rounds: int, values: int = 20):
    bag: list[HistoricalTuple] = []
    for fragments in fragment_stream(rounds, values):
        bag.extend(fragments)  # no merging: fragments pile up
    return bag


def uncoalesced_timeslice(bag, chronon: int):
    return {
        t.value for t in bag if t.valid_time.covers(chronon)
    }


def representation_sizes(rounds=(10, 50, 200)):
    """Measured rows: (rounds, coalesced tuples, fragments)."""
    rows = []
    for r in rounds:
        coalesced = run_coalesced(r)
        bag = run_uncoalesced(r)
        rows.append((r, len(coalesced), len(bag)))
    return rows


def canonical_equality_demo() -> bool:
    """Two ways to state the same history compare equal only when
    coalesced."""
    a = HistoricalState.from_rows(KV, [([1], [(0, 10)])])
    b = historical_union(
        HistoricalState.from_rows(KV, [([1], [(0, 5)])]),
        HistoricalState.from_rows(KV, [([1], [(5, 10)])]),
    )
    coalesced_equal = a == b
    fragments = [
        HistoricalTuple([1], PeriodSet([(0, 5)]), schema=KV),
        HistoricalTuple([1], PeriodSet([(5, 10)]), schema=KV),
    ]
    single = [HistoricalTuple([1], PeriodSet([(0, 10)]), schema=KV)]
    uncoalesced_equal = set(fragments) == set(single)
    return coalesced_equal and not uncoalesced_equal


def report() -> str:
    lines = ["A3 — historical-state coalescing (ablation)"]
    assert canonical_equality_demo()
    lines.append(
        "  correctness: value-equivalent fragments compare equal only "
        "under coalescing (canonical form)"
    )
    lines.append(
        f"  {'rounds':>7s} {'coalesced tuples':>17s} {'fragments':>10s}"
    )
    for rounds, coalesced, fragments in representation_sizes():
        lines.append(f"  {rounds:7d} {coalesced:17d} {fragments:10d}")

    state = run_coalesced(200)
    bag = run_uncoalesced(200)
    start = time.perf_counter()
    for _ in range(50):
        state.snapshot_at(199)
    coalesced_slice = (time.perf_counter() - start) / 50
    start = time.perf_counter()
    for _ in range(50):
        uncoalesced_timeslice(bag, 199)
    fragment_slice = (time.perf_counter() - start) / 50
    lines.append(
        f"  timeslice at 200 rounds: coalesced "
        f"{coalesced_slice * 1e6:.0f} µs vs fragments "
        f"{fragment_slice * 1e6:.0f} µs"
    )
    return "\n".join(lines)


def bench_union_coalesced_100(benchmark):
    benchmark(run_coalesced, 100)


def bench_timeslice_coalesced(benchmark):
    state = run_coalesced(200)
    benchmark(state.snapshot_at, 199)


def bench_timeslice_fragments(benchmark):
    bag = run_uncoalesced(200)
    benchmark(uncoalesced_timeslice, bag, 199)


if __name__ == "__main__":
    print(report())
