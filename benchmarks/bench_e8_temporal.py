"""E8 — orthogonality of valid time and transaction time (claim C5).

Correctness: the *same* command stream (same shape, same lengths) applied
to a rollback relation of snapshot states and to a temporal relation of
historical states yields isomorphic transaction-time structure — same
transaction numbers, same history length, rollback behaving identically.
Performance: cost of the combined bitemporal query δ(ρ̂(R, t)) as history
and state size grow.
"""

from __future__ import annotations

import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Derive, Rollback
from repro.core.sentences import run
from repro.historical.predicates import ValidAt
from repro.historical.temporal_exprs import ValidTime
from repro.workloads import UpdateStream, command_history


def build_pair(history: int, cardinality: int, seed: int = 17):
    """A rollback database and a temporal database built from streams of
    identical shape."""
    snapshot_stream = UpdateStream(
        history, cardinality=cardinality, churn=0.2, seed=seed
    )
    historical_stream = UpdateStream(
        history,
        cardinality=cardinality,
        churn=0.2,
        seed=seed,
        historical=True,
    )
    rollback_db = run(command_history(snapshot_stream, "r"))
    temporal_db = run(command_history(historical_stream, "r"))
    return rollback_db, temporal_db


def verify_orthogonality(history: int = 30, cardinality: int = 20):
    """Transaction-time structure is identical across the two kinds."""
    rollback_db, temporal_db = build_pair(history, cardinality)
    r1 = rollback_db.require("r")
    r2 = temporal_db.require("r")
    assert r1.transaction_numbers == r2.transaction_numbers
    assert (
        rollback_db.transaction_number == temporal_db.transaction_number
    )
    # rollback itself behaves identically: present exactly when present
    for txn in range(0, history + 3):
        s1 = r1.find_state(txn)
        s2 = r2.find_state(txn)
        from repro.core.relation import EMPTY_STATE

        assert (s1 is EMPTY_STATE) == (s2 is EMPTY_STATE)
    return history + 3


def bitemporal_query_cost(histories=(20, 80, 200), cardinality=40):
    """Measured rows: (history, seconds per δ(ρ̂) query)."""
    rows = []
    for history in histories:
        _, temporal_db = build_pair(history, cardinality)
        query = Derive(
            Rollback("r", history // 2),
            predicate=ValidAt(ValidTime(), 50),
        )
        start = time.perf_counter()
        repeat = 20
        for _ in range(repeat):
            query.evaluate(temporal_db)
        rows.append((history, (time.perf_counter() - start) / repeat))
    return rows


def report() -> str:
    lines = ["E8 — valid time ⊥ transaction time (claim C5)"]
    probes = verify_orthogonality()
    lines.append(
        "  correctness: rollback/temporal pairs share identical "
        f"transaction-time structure over {probes} probes"
    )
    lines.append(f"  {'history':>8s} {'δ(ρ̂) query':>12s}")
    for history, seconds in bitemporal_query_cost():
        lines.append(f"  {history:8d} {seconds * 1e6:9.0f} µs")
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_temporal_rollback(benchmark):
    _, temporal_db = build_pair(80, 40)
    query = Rollback("r", 40)
    benchmark(query.evaluate, temporal_db)


def bench_bitemporal_slice(benchmark):
    _, temporal_db = build_pair(80, 40)
    query = Derive(
        Rollback("r", 40), predicate=ValidAt(ValidTime(), 50)
    )
    benchmark(query.evaluate, temporal_db)


def bench_snapshot_rollback_same_shape(benchmark):
    rollback_db, _ = build_pair(80, 40)
    query = Rollback("r", 40)
    benchmark(query.evaluate, rollback_db)


if __name__ == "__main__":
    print(report())
