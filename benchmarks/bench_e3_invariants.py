"""E3 — the strictly-increasing transaction-number invariant (claim C4)
holds under long, adversarial command streams, and sentence execution
scales linearly in stream length.
"""

from __future__ import annotations

import random
import time

from repro.core.commands import Command, DefineRelation, ModifyState, sequence
from repro.core.database import EMPTY_DATABASE, Database
from repro.core.expressions import Const, Rollback, Union
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def random_commands(length: int, seed: int = 0) -> list[Command]:
    """Random define/modify streams over a handful of identifiers,
    including deliberate no-ops (redefinitions, modifies of unbound
    names)."""
    rng = random.Random(seed)
    identifiers = [f"r{i}" for i in range(5)]
    commands: list[Command] = []
    for _ in range(length):
        identifier = rng.choice(identifiers)
        roll = rng.random()
        if roll < 0.2:
            rtype = rng.choice(["rollback", "snapshot"])
            commands.append(DefineRelation(identifier, rtype))
        else:
            state = Const(
                SnapshotState(KV, [[rng.randrange(50)]])
            )
            if roll < 0.6:
                commands.append(ModifyState(identifier, state))
            else:
                commands.append(
                    ModifyState(
                        identifier, Union(Rollback(identifier), state)
                    )
                )
    return commands


def check_invariants(database: Database) -> tuple[int, int]:
    """Returns (#relations checked, #state records checked); raises on
    any violation."""
    relations = 0
    records = 0
    for identifier in database.state:
        relation = database.require(identifier)
        txns = relation.transaction_numbers
        assert list(txns) == sorted(set(txns)), identifier
        assert all(
            t <= database.transaction_number for t in txns
        ), identifier
        if not relation.rtype.keeps_history:
            assert relation.history_length <= 1
        relations += 1
        records += len(txns)
    return relations, records


def run_stream(length: int, seed: int = 0) -> Database:
    return sequence(random_commands(length, seed)).execute(
        EMPTY_DATABASE
    )


def report() -> str:
    lines = ["E3 — transaction-number invariant (claim C4)"]
    total_records = 0
    for seed in range(5):
        database = run_stream(2000, seed)
        relations, records = check_invariants(database)
        total_records += records
    lines.append(
        "  correctness: 5 × 2000-command random streams; "
        f"{total_records} state records all strictly increasing"
    )
    lines.append(f"  {'commands':>9s} {'total time':>11s} {'per command':>12s}")
    for length in (100, 1000, 5000):
        start = time.perf_counter()
        database = run_stream(length, seed=9)
        elapsed = time.perf_counter() - start
        check_invariants(database)
        lines.append(
            f"  {length:9d} {elapsed * 1e3:8.1f} ms "
            f"{elapsed / length * 1e6:9.1f} µs"
        )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_stream_500(benchmark):
    program = sequence(random_commands(500, seed=4))
    database = benchmark(program.execute, EMPTY_DATABASE)
    check_invariants(database)


def bench_stream_2000(benchmark):
    program = sequence(random_commands(2000, seed=4))
    database = benchmark(program.execute, EMPTY_DATABASE)
    check_invariants(database)


if __name__ == "__main__":
    print(report())
