#!/usr/bin/env python3
"""Compare fresh ``BENCH_<name>.json`` sidecars against the committed
baseline and fail on an optimizer-path regression.

Usage:
    python -m benchmarks.check_bench BASELINE_DIR FRESH_DIR [names...]
    python -m benchmarks.check_bench . fresh e2 e4 e13 e16 --tolerance 0.2

For every measurement of kind ``speedup`` the fresh value must be

* at least ``(1 - tolerance)`` of the committed baseline value
  (default tolerance 20%), **and**
* at least the measurement's absolute ``floor`` when one is recorded
  (the repeated-query measurements commit to the >=5x acceptance bar).

Ratios rather than absolute latencies are compared so the check is
stable across machines: both sides of each speedup are timed in the
same process on the same host.
"""

from __future__ import annotations

import json
import os
import sys

DEFAULT_NAMES = ["e2", "e4", "e13", "e16"]
DEFAULT_TOLERANCE = 0.20


def _load(directory: str, name: str) -> dict:
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def check(
    baseline_dir: str,
    fresh_dir: str,
    names: list[str],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures: list[str] = []
    for name in names:
        baseline = _load(baseline_dir, name)["measurements"]
        fresh = _load(fresh_dir, name)["measurements"]
        for key, committed in baseline.items():
            if committed.get("kind") != "speedup":
                continue
            if key not in fresh:
                failures.append(
                    f"{name}.{key}: measurement missing from fresh run"
                )
                continue
            value = fresh[key]["value"]
            required = committed["value"] * (1.0 - tolerance)
            floor = committed.get("floor")
            print(
                f"  {name}.{key}: committed {committed['value']:.2f}x, "
                f"fresh {value:.2f}x "
                f"(required >= {required:.2f}x"
                + (f", floor {floor:.1f}x)" if floor else ")")
            )
            if value < required:
                failures.append(
                    f"{name}.{key}: {value:.2f}x regressed more than "
                    f"{tolerance:.0%} from committed "
                    f"{committed['value']:.2f}x"
                )
            if floor is not None and value < floor:
                failures.append(
                    f"{name}.{key}: {value:.2f}x is below the "
                    f"{floor:.1f}x acceptance floor"
                )
    return failures


def main(argv: list[str]) -> int:
    args = list(argv)
    tolerance = DEFAULT_TOLERANCE
    if "--tolerance" in args:
        index = args.index("--tolerance")
        try:
            tolerance = float(args[index + 1])
        except (IndexError, ValueError):
            print("--tolerance requires a numeric argument")
            return 2
        del args[index : index + 2]
    if len(args) < 2:
        print(__doc__)
        return 2
    baseline_dir, fresh_dir = args[0], args[1]
    names = [name.lower() for name in args[2:]] or DEFAULT_NAMES
    failures = check(baseline_dir, fresh_dir, names, tolerance)
    if failures:
        print("\nBENCH REGRESSION:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nall {len(names)} bench sidecars within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
