"""E12 — durability: WAL append throughput and recovery latency.

Two questions the durability subsystem answers empirically:

* what each fsync policy costs on the append path — commands/second
  through a :class:`DurableDatabase` over a real directory, where
  ``always`` pays one fsync per command, ``batch`` amortizes it, and
  ``never`` defers it entirely; and
* how recovery latency scales with the length of the WAL tail past the
  last checkpoint — replay is linear in the tail, so checkpoints bound
  restart time at the checkpoint interval.

``--smoke`` shrinks the workload for CI; with ``REPRO_METRICS_JSON``
set, the sidecar carries the ``wal.*`` counters (records appended,
fsyncs, rotations, checkpoints, recovery replay lengths).
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const
from repro.durability import DurableDatabase
from repro.workloads import StateGenerator

POLICIES = ("always", "batch(32, 100)", "never")

FULL = dict(appends=600, tails=(0, 100, 300, 600), repeat=3)
SMOKE = dict(appends=120, tails=(0, 40, 120), repeat=1)


def command_stream(length: int, seed: int = 3):
    """``define_relation`` plus ``length − 1`` constant-state updates."""
    generator = StateGenerator(seed=seed, key_space=64)
    commands = [DefineRelation("r", "rollback")]
    for _ in range(length - 1):
        commands.append(
            ModifyState("r", Const(generator.snapshot_state(3)))
        )
    return commands


def append_throughput(length: int, policy: str) -> float:
    """Commands/second through a DurableDatabase on a real directory."""
    commands = command_stream(length)
    with tempfile.TemporaryDirectory(prefix="repro-e12-") as tmp:
        with DurableDatabase(
            tmp, fsync=policy, checkpoint_every=0
        ) as ddb:
            start = time.perf_counter()
            for command in commands:
                ddb.execute(command)
            ddb.sync()
            elapsed = time.perf_counter() - start
    return length / elapsed


def recovery_latency(
    tail: int, total: int, checkpointed: bool
) -> tuple[float, int]:
    """Open-time recovery cost after a log with ``tail`` un-checkpointed
    records; returns (seconds, records replayed)."""
    commands = command_stream(total)
    with tempfile.TemporaryDirectory(prefix="repro-e12-") as tmp:
        with DurableDatabase(
            tmp, fsync="never", checkpoint_every=0
        ) as ddb:
            for index, command in enumerate(commands):
                ddb.execute(command)
                if checkpointed and index == total - tail - 1:
                    ddb.checkpoint()
        start = time.perf_counter()
        recovered = DurableDatabase(tmp, checkpoint_every=0)
        seconds = time.perf_counter() - start
        result = recovered.last_recovery
        assert recovered.transaction_number == total
        recovered.close()
    return seconds, result.replayed


def throughput_table(config) -> list:
    return [
        (
            policy,
            max(
                append_throughput(config["appends"], policy)
                for _ in range(config["repeat"])
            ),
        )
        for policy in POLICIES
    ]


def recovery_table(config) -> list:
    total = max(config["tails"])
    rows = []
    for tail in config["tails"]:
        seconds, replayed = recovery_latency(
            tail, total, checkpointed=tail < total
        )
        rows.append((tail, replayed, seconds))
    return rows


def report(smoke: bool = False) -> str:
    config = SMOKE if smoke else FULL
    lines = [
        f"E12 — durability ({config['appends']} commands; "
        f"{'smoke' if smoke else 'full'} run)"
    ]
    lines.append("  append throughput (commands/s) by fsync policy:")
    for policy, rate in throughput_table(config):
        lines.append(f"    {policy:16s} {rate:10.0f}")
    lines.append(
        "  recovery latency vs un-checkpointed WAL tail "
        f"(total history {max(config['tails'])}):"
    )
    for tail, replayed, seconds in recovery_table(config):
        lines.append(
            f"    tail {tail:5d}  replayed {replayed:5d}  "
            f"{seconds * 1000.0:8.1f} ms"
        )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_append_always(benchmark):
    benchmark(append_throughput, 60, "always")


def bench_append_batch(benchmark):
    benchmark(append_throughput, 60, "batch(16, 100)")


def bench_append_never(benchmark):
    benchmark(append_throughput, 60, "never")


def bench_recovery_replay(benchmark):
    benchmark(recovery_latency, 60, 60, False)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e12_durability"):
        print(report(smoke="--smoke" in sys.argv[1:]))
