"""E9 — Ben-Zvi's Time-View vs the paper's δ(ρ̂(...)) (claim C7).

Correctness: the two answer every (valid time, transaction time) probe
identically on shared histories.  Performance: Time-View scans all tuple
versions per query (flat in rollback depth), while δ(ρ̂) pays FINDSTATE
plus a state scan; we measure both across history length.
"""

from __future__ import annotations

import time

from repro.benzvi import apply_operations, time_view, time_view_expression
from repro.core.expressions import is_empty_set
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.workloads import random_operation_stream

K = Schema([Attribute("k", INTEGER)])


def build_models(operations_count: int, seed: int = 0):
    operations = random_operation_stream(
        operations_count, fact_space=30, horizon=200, seed=seed
    )
    return apply_operations(K, operations)


def verify_equivalence(operations_count: int = 60, seed: int = 1) -> int:
    """Probe the full (tv × tt) grid; returns number of probes."""
    trm, database = build_models(operations_count, seed)
    probes = 0
    for txn_time in range(0, database.transaction_number + 2, 3):
        for valid_time in range(0, 200, 23):
            benzvi = time_view(trm, valid_time, txn_time)
            historical = time_view_expression(
                "r", valid_time, txn_time
            ).evaluate(database)
            ours = (
                SnapshotState.empty(K)
                if is_empty_set(historical)
                else historical.snapshot_at(valid_time)
            )
            assert benzvi == ours
            probes += 1
    return probes


def query_cost_by_history(history_sizes=(50, 200, 500)):
    """Measured rows: (history, time_view s, δ(ρ̂) s)."""
    rows = []
    for count in history_sizes:
        trm, database = build_models(count, seed=3)
        txn_probe = count // 2
        valid_probe = 100

        start = time.perf_counter()
        repeat = 30
        for _ in range(repeat):
            time_view(trm, valid_probe, txn_probe)
        benzvi_seconds = (time.perf_counter() - start) / repeat

        expression = time_view_expression("r", valid_probe, txn_probe)
        start = time.perf_counter()
        for _ in range(repeat):
            state = expression.evaluate(database)
            if not is_empty_set(state):
                state.snapshot_at(valid_probe)
        ours_seconds = (time.perf_counter() - start) / repeat

        rows.append((count, benzvi_seconds, ours_seconds))
    return rows


def storage_comparison(operations_count: int = 200):
    """(TRM stored versions, temporal relation stored tuples)."""
    trm, database = build_models(operations_count, seed=5)
    relation = database.require("r")
    temporal_atoms = sum(
        len(state) for state, _ in relation.rstate
    )
    return trm.stored_versions(), temporal_atoms


def report() -> str:
    lines = ["E9 — Time-View vs δ(ρ̂(...)) (claim C7)"]
    probes = verify_equivalence()
    lines.append(
        f"  correctness: {probes} (valid, transaction) probes — "
        "Time-View ≡ timeslice ∘ δ ∘ ρ̂ everywhere"
    )
    lines.append(
        f"  {'history':>8s} {'Time-View':>10s} {'δ(ρ̂)+slice':>12s}"
    )
    for count, benzvi_s, ours_s in query_cost_by_history():
        lines.append(
            f"  {count:8d} {benzvi_s * 1e6:7.0f} µs {ours_s * 1e6:9.0f} µs"
        )
    versions, atoms = storage_comparison()
    lines.append(
        f"  storage for 200 updates: TRM {versions} tuple versions vs "
        f"paper semantics {atoms} stored tuples (full states)"
    )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_time_view(benchmark):
    trm, _ = build_models(200, seed=3)
    result = benchmark(time_view, trm, 100, 100)
    assert result is not None


def bench_delta_rho_slice(benchmark):
    _, database = build_models(200, seed=3)
    expression = time_view_expression("r", 100, 100)

    def query():
        state = expression.evaluate(database)
        return (
            None
            if is_empty_set(state)
            else state.snapshot_at(100)
        )

    benchmark(query)


if __name__ == "__main__":
    print(report())
