"""E19 — self-healing: dedup replay, failover MTTR, retries under chaos.

Three sections, one per seam the self-healing stack added:

* **dedup replay** — the headline: a retransmitted ``(session, seq)``
  answers from the server's dedup table instead of re-running the
  sentence, so the replay path must be decisively cheaper than a fresh
  execute.  The committed acceptance bar is a ≥1.5× median speedup —
  in practice the gap is much wider (a dict lookup vs parse + execute
  + journal), but the floor only commits to what eviction-window
  bookkeeping can never eat.
* **self-heal MTTR** — wall time from killing a primary's write path
  to the first write landing again, with the supervisor ticking the
  whole way (auto-failover, then resync + backfill of the replica
  set).  Informational: it measures this machine's failover cost, not
  a ratio, so it is not gated.
* **retries under failover** — a :class:`RetryingClient` keeps writing
  while the backing cluster loses a primary mid-run under a supervised
  server; reports writes landed and client-visible errors (the
  acceptance bar in EXPERIMENTS.md is zero).

``--smoke`` shrinks the workload for CI; with ``REPRO_METRICS_JSON``
set the run also exports the ``cluster.health.*`` counters the
supervisor-chaos CI job asserts on.
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.cluster import Cluster, ClusterConfig, ClusterSupervisor
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const
from repro.errors import ClusterDegradedError, ReproError
from repro.replication.retry import RetryPolicy
from repro.server.client import ReproClient, RetryingClient
from repro.server.server import ServerConfig, ThreadedServer
from repro.workloads.generators import StateGenerator

FULL = {
    "dedup_rounds": 60,
    "state_tuples": 24,
    "mttr_runs": 3,
    "chaos_writes": 40,
}
SMOKE = {
    "dedup_rounds": 12,
    "state_tuples": 24,
    "mttr_runs": 1,
    "chaos_writes": 10,
}


def _state_literal(tuples: int) -> str:
    rows = ", ".join(f"({i}, {i * 10})" for i in range(tuples))
    return f"state (k: integer, v: integer) {{ {rows} }}"


def dedup_replay(config: dict) -> "tuple[float, float]":
    """Median latency (seconds) of (fresh execute, cached replay) for
    the same stamped sentences over a real server."""
    statement = f"modify_state(r, {_state_literal(config['state_tuples'])})"
    fresh: "list[float]" = []
    replay: "list[float]" = []
    with ThreadedServer(ServerConfig(port=0, workers=2)) as handle:
        with ReproClient(handle.host, handle.port) as client:
            client.execute("define_relation(r, rollback)")
            for seq in range(1, config["dedup_rounds"] + 1):
                started = time.perf_counter()
                client.execute(statement, session="bench", seq=seq)
                fresh.append(time.perf_counter() - started)
                started = time.perf_counter()
                client.execute(statement, session="bench", seq=seq)
                replay.append(time.perf_counter() - started)
    return statistics.median(fresh), statistics.median(replay)


def selfheal_mttr(config: dict) -> "tuple[float, int, int]":
    """(median MTTR seconds, failovers, resyncs) across ``mttr_runs``
    kill-and-heal rounds on an in-process cluster.  Each round also
    condemns a replica so the tending pass exercises resync."""
    generator = StateGenerator(seed=19, key_space=40)
    durations: "list[float]" = []
    failovers = 0
    resyncs = 0
    for _ in range(config["mttr_runs"]):
        with Cluster(
            ClusterConfig(
                shards=1,
                replicas_per_shard=2,
                retry=RetryPolicy(
                    max_attempts=5, base_delay=0.0, max_delay=0.0
                ),
            )
        ) as cluster:
            supervisor = ClusterSupervisor(
                cluster, failure_threshold=1, sleep=lambda _s: None
            )
            cluster.execute(DefineRelation("r", "rollback"))
            cluster.execute(
                ModifyState("r", Const(generator.snapshot_state(3)))
            )
            cluster.catch_up()
            # condemn one replica: the post-failover tending pass must
            # rebuild it from the promoted primary's stream
            victim = cluster.replicas(0)[0]
            victim._diverged = True
            cluster.primaries[0].store.fail_writes()
            command = ModifyState(
                "r", Const(generator.snapshot_state(3))
            )
            started = time.perf_counter()
            for _attempt in range(50):
                try:
                    cluster.execute(command)
                    break
                except ClusterDegradedError:
                    report = supervisor.tick()
                    failovers += report.failovers
                    resyncs += report.resyncs
            else:
                raise AssertionError("supervisor never healed the shard")
            durations.append(time.perf_counter() - started)
            # settle: tend until the live set is whole again
            for _tick in range(20):
                report = supervisor.tick()
                failovers += report.failovers
                resyncs += report.resyncs
                live = [
                    r
                    for r in cluster.replicas(0)
                    if not r.diverged and not r.promoted
                ]
                if len(live) >= 2 and not cluster.degraded_shards:
                    break
    return statistics.median(durations), failovers, resyncs


def retries_under_failover(config: dict) -> "tuple[int, int, float]":
    """(writes landed, client-visible errors, wall seconds) for a
    retrying client writing through a supervised server while the
    backing primary dies mid-run."""
    errors = 0
    landed = 0
    with ThreadedServer(
        ServerConfig(
            port=0,
            workers=2,
            cluster=ClusterConfig(
                shards=1,
                replicas_per_shard=2,
                retry=RetryPolicy(
                    max_attempts=5, base_delay=0.0, max_delay=0.0
                ),
            ),
            supervise=True,
            supervise_interval=0.02,
            supervise_failures=1,
        )
    ) as handle:
        cluster = handle.server.store.cluster
        statement = f"modify_state(r, {_state_literal(4)})"
        started = time.perf_counter()
        with RetryingClient(
            handle.host,
            handle.port,
            retry=RetryPolicy(
                max_attempts=400, base_delay=0.01, max_delay=0.05
            ),
            timeout=10.0,
        ) as client:
            client.execute("define_relation(r, rollback)")
            kill_at = config["chaos_writes"] // 2
            for index in range(config["chaos_writes"]):
                if index == kill_at:
                    cluster.primaries[0].store.fail_writes()
                try:
                    client.execute(statement)
                    landed += 1
                except ReproError:
                    errors += 1
        wall = time.perf_counter() - started
    return landed, errors, wall


# -- reporting ---------------------------------------------------------------


def report(smoke: bool = False) -> str:
    config = SMOKE if smoke else FULL
    lines = [
        "E19 — self-healing: dedup replay, failover MTTR, retries "
        f"under chaos ({'smoke' if smoke else 'full'} run)"
    ]

    fresh, replay = dedup_replay(config)
    lines.append(
        f"  dedup replay ({config['dedup_rounds']} stamped sentences, "
        f"{config['state_tuples']}-tuple states): fresh "
        f"{fresh * 1e6:.0f}us vs replay {replay * 1e6:.0f}us median "
        f"-> {fresh / replay:.1f}x"
    )

    mttr, failovers, resyncs = selfheal_mttr(config)
    lines.append(
        f"  self-heal MTTR: {mttr * 1e3:.1f} ms median over "
        f"{config['mttr_runs']} kill-and-heal rounds "
        f"({failovers} auto-failovers, {resyncs} resyncs)"
    )

    landed, errors, wall = retries_under_failover(config)
    lines.append(
        f"  retries under failover: {landed}/{landed + errors} writes "
        f"landed through a mid-run primary kill in {wall:.2f}s, "
        f"{errors} client-visible errors"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e19.json``."""
    config = FULL
    fresh, replay = dedup_replay(config)
    mttr, failovers, resyncs = selfheal_mttr(config)
    landed, errors, _wall = retries_under_failover(config)
    return {
        "experiment": "e19",
        "description": (
            "self-healing: dedup-table replay vs fresh execute over "
            "the wire, supervisor failover MTTR, and exactly-once "
            "retries through a mid-run primary kill"
        ),
        "measurements": {
            "dedup_replay_speedup": {
                "kind": "speedup",
                "value": round(fresh / replay, 2),
                "floor": 1.5,
                "detail": (
                    f"median fresh execute {fresh * 1e6:.0f}us vs "
                    f"cached replay {replay * 1e6:.0f}us for the same "
                    "(session, seq) over the wire"
                ),
            },
            "selfheal_mttr_ms": {
                "kind": "latency_ms",
                "value": round(mttr * 1e3, 2),
                "detail": (
                    f"median over {config['mttr_runs']} kill-and-heal "
                    f"rounds; {failovers} auto-failovers, "
                    f"{resyncs} resyncs"
                ),
            },
            "client_errors_during_failover": {
                "kind": "count",
                "value": errors,
                "detail": (
                    f"{landed} writes landed through a mid-run primary "
                    "kill under a supervised server; the acceptance "
                    "bar is zero client-visible errors"
                ),
            },
        },
    }


# -- pytest-benchmark entry points -------------------------------------------


def bench_dedup_replay(benchmark):
    with ThreadedServer(ServerConfig(port=0, workers=2)) as handle:
        with ReproClient(handle.host, handle.port) as client:
            client.execute("define_relation(r, rollback)")
            client.execute(
                f"modify_state(r, {_state_literal(8)})",
                session="bench",
                seq=1,
            )
            benchmark(
                client.execute,
                f"modify_state(r, {_state_literal(8)})",
                session="bench",
                seq=1,
            )


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e19_selfhealing"):
        print(report(smoke="--smoke" in sys.argv[1:]))
