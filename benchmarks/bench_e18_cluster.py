"""E18 — cluster topology: replica fan-out reads and failover under load.

The cluster's read path round-robins each shard's replica set, so read
*capacity* should scale with the number of replicas per shard.  As in
E17, the node's service time is simulated explicitly: every node
(primary or replica) serves reads under a per-node lock with a fixed
``service_ms`` sleep inside it — one request at a time per node, the
regime where extra replicas pay off.  The Python-level evaluator cost
is microseconds, so without the simulated service time the benchmark
would measure the GIL, not the topology.

Three sections:

* **replica fan-out** — the headline: aggregate ρ(I, now) throughput
  for 0/1/2/3 replicas per shard at a fixed reader pool.  0 replicas
  serves every read from the shard primary (one node per shard); K
  replicas spread the same reads over K nodes per shard.  The
  committed acceptance bar is a ≥2× aggregate speedup for 3 replicas
  vs the single-primary floor.
* **failover blip** — reads keep flowing while one shard fails over
  mid-run; reports the failover wall time and that zero reads failed.
* **catch-up cost** — records/second a fresh replica replays while
  bootstrapping from a populated primary's stream.

``--smoke`` shrinks the workload for CI; with ``REPRO_METRICS_JSON``
set the run also exports the ``cluster.*`` observability counters the
cluster-chaos CI job asserts on.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.cluster import Cluster, ClusterConfig
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback
from repro.core.txn import NOW
from repro.workloads.generators import StateGenerator

IDENTIFIERS = ("alpha", "beta", "gamma", "delta")

FULL = {
    "shards": 2,
    "readers": 8,
    "reads": 50,
    "service_ms": 4.0,
    "states": 12,
    "catchup_states": 200,
}
SMOKE = {
    "shards": 2,
    "readers": 4,
    "reads": 12,
    "service_ms": 4.0,
    "states": 6,
    "catchup_states": 60,
}


def _populate(cluster: Cluster, states: int) -> None:
    generator = StateGenerator(seed=18, key_space=40)
    for identifier in IDENTIFIERS:
        cluster.execute(DefineRelation(identifier, "rollback"))
    for _ in range(states):
        for identifier in IDENTIFIERS:
            cluster.execute(
                ModifyState(
                    identifier, Const(generator.snapshot_state(3))
                )
            )
    cluster.catch_up()


def _throttle_nodes(cluster: Cluster, service_ms: float) -> None:
    """Wrap every node's ``evaluate`` in a per-node lock holding a
    ``service_ms`` sleep — one in-flight read per node, exactly the
    shape a real storage node's request queue imposes.  The sleep
    releases the GIL, so distinct nodes serve genuinely in parallel."""
    delay = service_ms / 1000.0

    def throttled(node):
        inner = node.evaluate
        lock = threading.Lock()

        def evaluate(expression):
            with lock:
                time.sleep(delay)
                return inner(expression)

        return evaluate

    for index in range(cluster.shard_count):
        primary = cluster.sharded.shards[index]
        primary.evaluate = throttled(primary)
        for replica in cluster.replicas(index):
            replica.evaluate = throttled(replica)


def _hammer(cluster: Cluster, readers: int, reads: int) -> float:
    """``readers`` threads each issuing ``reads`` ρ(I, now) fan-out
    reads; returns wall seconds.  Any read error fails the bench."""
    errors: "list[BaseException]" = []

    def one(offset: int) -> None:
        try:
            for position in range(reads):
                identifier = IDENTIFIERS[
                    (offset + position) % len(IDENTIFIERS)
                ]
                cluster.evaluate(Rollback(identifier, NOW))
        except BaseException as error:  # noqa: BLE001 — rethrown below
            errors.append(error)

    threads = [
        threading.Thread(target=one, args=(offset,))
        for offset in range(readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall


def replica_fanout(config: dict) -> "dict[int, float]":
    """Aggregate read throughput (req/s) per replicas-per-shard."""
    results: "dict[int, float]" = {}
    total = config["readers"] * config["reads"]
    for replicas in (0, 1, 2, 3):
        with Cluster(
            ClusterConfig(
                shards=config["shards"], replicas_per_shard=replicas
            )
        ) as cluster:
            _populate(cluster, config["states"])
            _throttle_nodes(cluster, config["service_ms"])
            wall = _hammer(
                cluster, config["readers"], config["reads"]
            )
            results[replicas] = total / wall
    return results


def failover_blip(config: dict) -> "tuple[int, float]":
    """Reads flow while shard 0 fails over mid-run; returns the number
    of reads completed and the failover wall time."""
    with Cluster(
        ClusterConfig(shards=config["shards"], replicas_per_shard=2)
    ) as cluster:
        _populate(cluster, config["states"])
        _throttle_nodes(cluster, config["service_ms"])
        done = threading.Event()
        completed = [0]

        def read_loop() -> None:
            while not done.is_set():
                cluster.evaluate(Rollback(IDENTIFIERS[0], NOW))
                completed[0] += 1

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            time.sleep(0.05)
            started = time.perf_counter()
            cluster.failover(0)
            failover_wall = time.perf_counter() - started
            time.sleep(0.05)
        finally:
            done.set()
            reader.join()
        assert completed[0] > 0, "no reads completed around failover"
        return completed[0], failover_wall


def catchup_rate(config: dict) -> "tuple[int, float]":
    """(records, records/s) for a fresh replica bootstrapping from a
    populated primary's stream."""
    with Cluster(
        ClusterConfig(shards=1, replicas_per_shard=0)
    ) as cluster:
        generator = StateGenerator(seed=81, key_space=40)
        cluster.execute(DefineRelation("bulk", "rollback"))
        for _ in range(config["catchup_states"]):
            cluster.execute(
                ModifyState("bulk", Const(generator.snapshot_state(3)))
            )
        started = time.perf_counter()
        cluster.add_replica(0)
        records = cluster.catch_up()
        wall = time.perf_counter() - started
        return records, records / wall


# -- reporting ---------------------------------------------------------------


def report(smoke: bool = False) -> str:
    config = SMOKE if smoke else FULL
    lines = [
        "E18 — cluster topology: sharded primaries x replica sets "
        f"({'smoke' if smoke else 'full'} run)"
    ]

    fanout = replica_fanout(config)
    base = fanout[0]
    lines.append(
        f"  replica fan-out ({config['shards']} shards, "
        f"{config['readers']} readers x {config['reads']} reads, "
        f"{config['service_ms']:.0f}ms simulated service time/node):"
    )
    for replicas, throughput in fanout.items():
        lines.append(
            f"    {replicas} replicas/shard: {throughput:8.0f} req/s  "
            f" speedup {throughput / base:5.2f}x"
        )

    completed, failover_wall = failover_blip(config)
    lines.append(
        f"  failover blip: {completed} reads completed around a "
        f"mid-run failover taking {failover_wall * 1e3:.1f} ms, "
        "zero read errors"
    )

    records, rate = catchup_rate(config)
    lines.append(
        f"  catch-up: fresh replica replayed {records} records at "
        f"{rate:.0f} records/s"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e18.json``."""
    config = FULL
    fanout = replica_fanout(config)
    completed, failover_wall = failover_blip(config)
    return {
        "experiment": "e18",
        "description": (
            "cluster topology: aggregate replica fan-out read "
            "throughput scaling with the per-shard replica set, vs "
            "the single-primary floor, under a simulated per-node "
            "service time"
        ),
        "measurements": {
            "replica_fanout_3v0_speedup": {
                "kind": "speedup",
                "value": round(fanout[3] / fanout[0], 2),
                "floor": 2.0,
                "detail": (
                    f"{fanout[0]:.0f} req/s @0 replicas -> "
                    f"{fanout[3]:.0f} req/s @3 replicas/shard "
                    f"({config['service_ms']:.0f}ms simulated "
                    "service time per node)"
                ),
            },
            "replica_fanout_2v0_speedup": {
                "kind": "speedup",
                "value": round(fanout[2] / fanout[0], 2),
                "floor": 1.4,
                "detail": f"{fanout[2]:.0f} req/s @2 replicas/shard",
            },
            "failover_blip": {
                "kind": "count",
                "value": completed,
                "detail": (
                    f"reads completed around a mid-run failover "
                    f"({failover_wall * 1e3:.1f} ms), zero errors"
                ),
            },
        },
    }


# -- pytest-benchmark entry points -------------------------------------------


def bench_cluster_fanout_read(benchmark):
    with Cluster(
        ClusterConfig(shards=2, replicas_per_shard=1)
    ) as cluster:
        _populate(cluster, 4)
        benchmark(cluster.evaluate, Rollback(IDENTIFIERS[0], NOW))


def bench_cluster_failover(benchmark):
    def failover_once():
        with Cluster(
            ClusterConfig(shards=1, replicas_per_shard=1)
        ) as cluster:
            _populate(cluster, 2)
            cluster.failover(0)

    benchmark(failover_once)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e18_cluster"):
        print(report(smoke="--smoke" in sys.argv[1:]))
