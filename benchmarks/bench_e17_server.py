"""E17 — the wire-protocol server: worker scaling, admission, shedding.

Three sections:

* **worker scaling** — the headline: aggregate cached-read throughput
  for 1/2/4/8 workers on the same workload.  Each query carries a
  simulated per-request I/O stall (``stall_ms``, the ``debug_ops``
  hook), the shape where a worker *pool* pays off: while one request
  stalls, seven others progress.  The committed acceptance bar is a
  ≥5× aggregate speedup for 8 workers vs 1.
* **concurrency sweep** — throughput and p50/p99 latency as the number
  of concurrent clients grows at a fixed pool size, over real sockets.
* **admission control** — a burst far beyond the queue's high watermark
  must be *shed* (``queue_full``) in bounded numbers, with the server
  still answering afterwards — overload degrades, never hangs.

``--smoke`` shrinks the workload for CI; with ``REPRO_METRICS_JSON``
set the run also exports the ``server.*`` observability counters the
server-smoke CI job asserts on.
"""

from __future__ import annotations

import asyncio
import socket
import sys
import time

from repro.lang.session import Session
from repro.server import protocol
from repro.server.client import AsyncReproClient, ReproClient
from repro.server.server import ServerConfig, ThreadedServer
from repro.server.store import render_state
from repro.server.admission import percentile

QUERY = "rollback(bench, now)"
SETUP = [
    "define_relation(bench, rollback)",
    "modify_state(bench, state (k: integer, v: integer) "
    "{ (1, 10), (2, 20), (3, 30), (4, 40) })",
]

FULL = {"clients": 16, "requests": 12, "stall_ms": 8.0, "burst": 64}
SMOKE = {"clients": 8, "requests": 6, "stall_ms": 8.0, "burst": 32}


# -- worker scaling -----------------------------------------------------------


async def _hammer(
    host: str, port: int, clients: int, requests: int, stall_ms: float
) -> "tuple[float, list[float]]":
    """``clients`` concurrent connections each issuing ``requests``
    cached reads; returns (wall seconds, per-request latencies)."""
    latencies: "list[float]" = []

    async def one() -> None:
        client = AsyncReproClient(host, port)
        await client.connect()
        try:
            for _ in range(requests):
                started = time.perf_counter()
                await client.query(QUERY, stall_ms=stall_ms)
                latencies.append(time.perf_counter() - started)
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(one() for _ in range(clients)))
    return time.perf_counter() - started, latencies


def _serve(workers: int, **overrides) -> ThreadedServer:
    config = ServerConfig(
        port=0,
        workers=workers,
        queue_high=1024,
        per_connection=64,
        debug_ops=True,
        **overrides,
    )
    return ThreadedServer(config)


def _setup_relation(handle: ThreadedServer) -> None:
    with ReproClient(handle.host, handle.port) as client:
        for sentence in SETUP:
            client.execute(sentence)
        # correctness before timing: the wire answer must equal the
        # in-process session's printed relation
        oracle = Session()
        for sentence in SETUP:
            oracle.execute(sentence)
        expected = render_state(oracle.query(QUERY))
        actual = client.query(QUERY)
        assert actual == expected, "wire result diverged from session"


def worker_scaling(config: dict) -> "dict[int, float]":
    """Aggregate read throughput (req/s) per worker-pool size."""
    results: "dict[int, float]" = {}
    total = config["clients"] * config["requests"]
    for workers in (1, 2, 4, 8):
        handle = _serve(workers)
        try:
            _setup_relation(handle)
            wall, _ = asyncio.run(
                _hammer(
                    handle.host,
                    handle.port,
                    config["clients"],
                    config["requests"],
                    config["stall_ms"],
                )
            )
            results[workers] = total / wall
        finally:
            handle.stop()
    return results


# -- concurrency sweep --------------------------------------------------------


def concurrency_sweep(config: dict) -> "list[tuple[int, float, float, float]]":
    """(clients, throughput, p50 ms, p99 ms) at a fixed 8-worker pool."""
    rows = []
    handle = _serve(8)
    try:
        _setup_relation(handle)
        for clients in (1, config["clients"] // 2, config["clients"]):
            wall, latencies = asyncio.run(
                _hammer(
                    handle.host,
                    handle.port,
                    clients,
                    config["requests"],
                    config["stall_ms"],
                )
            )
            rows.append(
                (
                    clients,
                    clients * config["requests"] / wall,
                    percentile(latencies, 0.50) * 1e3,
                    percentile(latencies, 0.99) * 1e3,
                )
            )
    finally:
        handle.stop()
    return rows


# -- admission / shedding -----------------------------------------------------


def shed_burst(config: dict) -> "tuple[int, int, int]":
    """Overrun a tiny queue; returns (burst, shed, completed)."""
    handle = ThreadedServer(
        ServerConfig(
            port=0,
            workers=1,
            queue_high=8,
            queue_low=4,
            per_connection=1024,
            debug_ops=True,
        )
    )
    try:
        _setup_relation(handle)
        burst = config["burst"]
        messages = [
            protocol.request(1, "query", QUERY, stall_ms=200)
        ] + [
            protocol.request(i, "query", QUERY)
            for i in range(2, burst + 1)
        ]
        decoder = protocol.FrameDecoder()
        replies = []
        with socket.create_connection(
            (handle.host, handle.port), timeout=60
        ) as sock:
            sock.sendall(
                b"".join(protocol.encode_message(m) for m in messages)
            )
            while len(replies) < burst:
                chunk = sock.recv(65536)
                assert chunk, "server hung up mid-burst"
                replies.extend(
                    protocol.decode_message(p)
                    for p in decoder.feed(chunk)
                )
        shed = sum(
            1
            for r in replies
            if r["status"] == protocol.STATUS_QUEUE_FULL
        )
        completed = sum(
            1 for r in replies if r["status"] == protocol.STATUS_OK
        )
        # the server must still be fully responsive after the burst
        with ReproClient(handle.host, handle.port) as client:
            client.ping()
        return burst, shed, completed
    finally:
        handle.stop()


# -- reporting ---------------------------------------------------------------


def report(smoke: bool = False) -> str:
    config = SMOKE if smoke else FULL
    lines = [
        "E17 — wire-protocol server with admission control "
        f"({'smoke' if smoke else 'full'} run)"
    ]

    scaling = worker_scaling(config)
    base = scaling[1]
    lines.append(
        f"  worker scaling ({config['clients']} clients x "
        f"{config['requests']} cached reads, "
        f"{config['stall_ms']:.0f}ms simulated I/O each):"
    )
    for workers, throughput in scaling.items():
        lines.append(
            f"    {workers} worker{'s' if workers > 1 else ' '}: "
            f"{throughput:8.0f} req/s   "
            f"speedup {throughput / base:5.2f}x"
        )

    lines.append("  concurrency sweep (8 workers):")
    for clients, throughput, p50, p99 in concurrency_sweep(config):
        lines.append(
            f"    {clients:3d} clients: {throughput:8.0f} req/s   "
            f"p50 {p50:7.1f} ms   p99 {p99:7.1f} ms"
        )

    burst, shed, completed = shed_burst(config)
    lines.append(
        f"  admission: burst of {burst} against an 8-deep queue -> "
        f"{completed} served, {shed} shed (queue_full), "
        "server responsive throughout"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e17.json``."""
    config = FULL
    scaling = worker_scaling(config)
    burst, shed, completed = shed_burst(config)
    return {
        "experiment": "e17",
        "description": (
            "asyncio wire-protocol server: aggregate cached-read "
            "throughput scaling with the worker pool, plus bounded "
            "load-shedding under a queue-overrunning burst"
        ),
        "measurements": {
            "worker_scaling_8v1_speedup": {
                "kind": "speedup",
                "value": round(scaling[8] / scaling[1], 2),
                "floor": 5.0,
                "detail": (
                    f"{scaling[1]:.0f} req/s @1 worker -> "
                    f"{scaling[8]:.0f} req/s @8 workers "
                    f"({config['stall_ms']:.0f}ms simulated I/O "
                    "per cached read)"
                ),
            },
            "worker_scaling_4v1_speedup": {
                "kind": "speedup",
                "value": round(scaling[4] / scaling[1], 2),
                "floor": 2.5,
                "detail": f"{scaling[4]:.0f} req/s @4 workers",
            },
            "shed_burst": {
                "kind": "count",
                "value": shed,
                "detail": (
                    f"burst {burst} vs queue_high 8: {completed} "
                    f"served, {shed} shed, zero hung"
                ),
            },
        },
    }


# -- pytest-benchmark entry points -------------------------------------------


def bench_wire_ping(benchmark):
    handle = _serve(2)
    try:
        with ReproClient(handle.host, handle.port) as client:
            benchmark(client.ping)
    finally:
        handle.stop()


def bench_wire_cached_query(benchmark):
    handle = _serve(2)
    try:
        _setup_relation(handle)
        with ReproClient(handle.host, handle.port) as client:
            client.query(QUERY)  # warm the view's plan cache
            benchmark(client.query, QUERY)
    finally:
        handle.stop()


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e17_server"):
        print(report(smoke="--smoke" in sys.argv[1:]))
