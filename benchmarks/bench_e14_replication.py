"""E14 — replication: apply throughput, lag, and catch-up latency.

Three questions the WAL-shipping layer answers empirically:

* how fast a replica applies the shipped command log — records/second
  through the full fetch → decode → execute → own-WAL pipeline, for
  each replica-side fsync policy;
* what lag looks like when a replica tails a primary that is writing
  under batch fsync — sampled after every poll round at several
  poll cadences; and
* what recovery from a partition costs — catch-up seconds as a
  function of how many records the replica missed, including the
  re-snapshot path when the primary compacted the missed tail away.

``--smoke`` shrinks the workload for CI; with ``REPRO_METRICS_JSON``
set, the sidecar carries the ``repl.*`` counters (batches fetched,
records applied, resnapshots, retry traffic).
"""

from __future__ import annotations

import sys
import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const
from repro.durability import DurableDatabase, MemoryStore
from repro.replication import PrimaryStream, Replica, RetryPolicy
from repro.workloads import StateGenerator

FULL = dict(
    records=800,
    cadences=(1, 8, 32),
    partitions=(100, 300, 800),
    repeat=3,
)
SMOKE = dict(
    records=150,
    cadences=(1, 16),
    partitions=(40, 150),
    repeat=1,
)


def command_stream(length: int, seed: int = 3):
    generator = StateGenerator(seed=seed, key_space=64)
    commands = [DefineRelation("r", "rollback")]
    for _ in range(length - 1):
        commands.append(
            ModifyState("r", Const(generator.snapshot_state(3)))
        )
    return commands


def _primary(length: int, **kwargs) -> DurableDatabase:
    kwargs.setdefault("fsync", "never")
    kwargs.setdefault("checkpoint_every", 0)
    primary = DurableDatabase(MemoryStore(), **kwargs)
    for command in command_stream(length):
        primary.execute(command)
    return primary


def apply_throughput(length: int, fsync: str) -> float:
    """Records/second a replica applies while catching up a primary
    that already holds ``length`` records."""
    primary = _primary(length)
    replica = Replica(
        PrimaryStream(primary),
        fsync=fsync,
        retry=RetryPolicy.none(),
    )
    start = time.perf_counter()
    applied = replica.catch_up()
    elapsed = time.perf_counter() - start
    assert applied == length
    assert replica.database == primary.database
    return length / elapsed


def lag_distribution(length: int, cadence: int) -> tuple[int, float, int]:
    """Tail a primary writing under batch fsync, polling every
    ``cadence`` commands; returns (max, mean, final) observed lag in
    records, sampled *before* each poll round."""
    primary = DurableDatabase(
        MemoryStore(), fsync="batch(32, 100)", checkpoint_every=0
    )
    replica = Replica(
        PrimaryStream(primary), retry=RetryPolicy.none()
    )
    samples = []
    for index, command in enumerate(command_stream(length)):
        primary.execute(command)
        if (index + 1) % cadence == 0:
            samples.append(replica.lag())
            replica.poll()
    final = replica.lag()
    replica.catch_up()
    assert replica.database == primary.database
    mean = sum(samples) / len(samples) if samples else 0.0
    return max(samples, default=0), mean, final


def catchup_after_partition(
    missed: int, total: int, compacted: bool
) -> tuple[float, bool]:
    """Seconds to catch up after missing ``missed`` of ``total``
    records; with ``compacted`` the primary checkpoints and drops the
    missed tail first, forcing the re-snapshot path."""
    primary = DurableDatabase(
        MemoryStore(),
        fsync="never",
        checkpoint_every=0,
        keep_checkpoints=1,
        segment_bytes=4096,
    )
    commands = command_stream(total)
    for command in commands[: total - missed]:
        primary.execute(command)
    replica = Replica(
        PrimaryStream(primary), retry=RetryPolicy.none()
    )
    replica.catch_up()
    for command in commands[total - missed :]:  # the partition window
        primary.execute(command)
    if compacted:
        primary.checkpoint()
    resnapshot_possible = (
        compacted and primary.wal.first_lsn > replica.applied_lsn + 1
    )
    start = time.perf_counter()
    replica.catch_up()
    seconds = time.perf_counter() - start
    assert replica.database == primary.database
    return seconds, resnapshot_possible


def throughput_table(config) -> list:
    return [
        (
            fsync,
            max(
                apply_throughput(config["records"], fsync)
                for _ in range(config["repeat"])
            ),
        )
        for fsync in ("never", "batch(64, 100)", "always")
    ]


def lag_table(config) -> list:
    return [
        (cadence, *lag_distribution(config["records"], cadence))
        for cadence in config["cadences"]
    ]


def partition_table(config) -> list:
    rows = []
    total = max(config["partitions"])
    for missed in config["partitions"]:
        for compacted in (False, True):
            seconds, resnapshotted = catchup_after_partition(
                missed, total, compacted
            )
            rows.append((missed, compacted, resnapshotted, seconds))
    return rows


def report(smoke: bool = False) -> str:
    config = SMOKE if smoke else FULL
    lines = [
        f"E14 — replication ({config['records']} records; "
        f"{'smoke' if smoke else 'full'} run)"
    ]
    lines.append(
        "  replica apply throughput (records/s) by replica fsync:"
    )
    for fsync, rate in throughput_table(config):
        lines.append(f"    {fsync:16s} {rate:10.0f}")
    lines.append(
        "  lag tailing a batch-fsync primary, by poll cadence "
        "(records between polls):"
    )
    for cadence, worst, mean, final in lag_table(config):
        lines.append(
            f"    every {cadence:3d}  max lag {worst:4d}  "
            f"mean {mean:6.1f}  final {final:4d}"
        )
    lines.append("  catch-up after a partition (missed records):")
    for missed, compacted, resnapshotted, seconds in partition_table(
        config
    ):
        path = "re-snapshot" if resnapshotted else (
            "tail replay (compacted)" if compacted else "tail replay"
        )
        lines.append(
            f"    missed {missed:5d}  {path:23s} "
            f"{seconds * 1000.0:8.1f} ms"
        )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_apply_throughput(benchmark):
    benchmark(apply_throughput, 80, "never")


def bench_catchup_tail(benchmark):
    benchmark(catchup_after_partition, 40, 80, False)


def bench_catchup_resnapshot(benchmark):
    benchmark(catchup_after_partition, 40, 80, True)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e14_replication"):
        print(report(smoke="--smoke" in sys.argv[1:]))
