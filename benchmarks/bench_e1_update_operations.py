"""E1 — modify_state expresses append / delete / replace (claim C3).

Correctness: the rollback sequence after a scripted mix of update
operations matches a hand-maintained model.  Performance: cost of one
update command as a function of current state cardinality, per operation
kind.
"""

from __future__ import annotations

import random

from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import EMPTY_DATABASE
from repro.core.expressions import Const, Difference, Rollback, Select, Union
from repro.core.sentences import run
from repro.core.txn import NOW
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])


def _const(rows):
    return Const(SnapshotState(KV, [list(r) for r in rows]))


def _append(key):
    return ModifyState(
        "r", Union(Rollback("r", NOW), _const([(key, key)]))
    )


def _delete(key):
    doomed = Select(
        Rollback("r", NOW), Comparison(attr("k"), "=", lit(key))
    )
    return ModifyState("r", Difference(Rollback("r", NOW), doomed))


def _replace(key, value):
    matched = Select(
        Rollback("r", NOW), Comparison(attr("k"), "=", lit(key))
    )
    return ModifyState(
        "r",
        Union(
            Difference(Rollback("r", NOW), matched),
            _const([(key, value)]),
        ),
    )


def scripted_history(n_updates: int, seed: int = 0):
    """A mixed update script plus the hand-maintained expected states."""
    rng = random.Random(seed)
    commands = [DefineRelation("r", "rollback")]
    model: dict[int, int] = {}
    expected_states = []
    for i in range(n_updates):
        roll = rng.random()
        if model and roll < 0.25:
            key = rng.choice(sorted(model))
            commands.append(_delete(key))
            del model[key]
        elif model and roll < 0.5:
            key = rng.choice(sorted(model))
            value = rng.randrange(1000)
            commands.append(_replace(key, value))
            model[key] = value
        else:
            key = rng.randrange(10_000)
            while key in model:
                key = rng.randrange(10_000)
            commands.append(_append(key))
            model[key] = key
        expected_states.append(dict(model))
    return commands, expected_states


def verify_against_model(n_updates: int = 120, seed: int = 1) -> int:
    """Run the scripted history and check every recorded state against
    the hand-maintained model; returns number of states verified."""
    commands, expected_states = scripted_history(n_updates, seed)
    database = run(commands)
    for i, model in enumerate(expected_states):
        txn = i + 2  # define at 1, first update at 2
        state = Rollback("r", txn).evaluate(database)
        assert {t["k"]: t["v"] for t in state.tuples} == model, (
            f"state mismatch at txn {txn}"
        )
    return len(expected_states)


def update_latency_by_cardinality(cardinalities=(10, 100, 1000)):
    """Measured rows: (cardinality, op, seconds per command)."""
    import time

    rows = []
    for cardinality in cardinalities:
        base = [(k, k) for k in range(cardinality)]
        db = run(
            [DefineRelation("r", "rollback"), ModifyState("r", _const(base))]
        )
        for label, command in [
            ("append", _append(cardinality + 1)),
            ("delete", _delete(0)),
            ("replace", _replace(1, 999)),
        ]:
            start = time.perf_counter()
            repeat = 5
            for _ in range(repeat):
                command.execute(db)
            elapsed = (time.perf_counter() - start) / repeat
            rows.append((cardinality, label, elapsed))
    return rows


def report() -> str:
    lines = ["E1 — update operations via modify_state (claim C3)"]
    verified = verify_against_model()
    lines.append(
        f"  correctness: {verified} recorded states match the "
        "hand-maintained model"
    )
    lines.append(f"  {'cardinality':>11s} {'op':>8s} {'per command':>12s}")
    for cardinality, label, seconds in update_latency_by_cardinality():
        lines.append(
            f"  {cardinality:11d} {label:>8s} {seconds * 1e3:9.2f} ms"
        )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_append_100(benchmark):
    base = [(k, k) for k in range(100)]
    db = run(
        [DefineRelation("r", "rollback"), ModifyState("r", _const(base))]
    )
    command = _append(101)
    result = benchmark(command.execute, db)
    assert result.transaction_number == db.transaction_number + 1


def bench_replace_100(benchmark):
    base = [(k, k) for k in range(100)]
    db = run(
        [DefineRelation("r", "rollback"), ModifyState("r", _const(base))]
    )
    command = _replace(1, 999)
    result = benchmark(command.execute, db)
    assert result.transaction_number == db.transaction_number + 1


def bench_scripted_history_120(benchmark):
    commands, _ = scripted_history(120, seed=1)
    from repro.core.commands import sequence

    program = sequence(commands)
    database = benchmark(program.execute, EMPTY_DATABASE)
    assert database.transaction_number == 121


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e1_update_operations"):
        print(report())
