"""E16 — the cost-based optimizer and the compiled expression engine.

The read path introduced in this arc stacks three amortizations on the
repeated-query workload (the production shape: the same query text
issued over and over against a session):

* **plan cache** — parse once per normalized query text;
* **cost-guided rewrite** — keep a rule application only when
  ``estimate_cost`` under collected statistics drops, so σ/π sink
  toward the ρ leaves and products shrink before they materialize;
* **compiled plan** — flatten the optimized tree once into a
  topologically ordered step loop with common subexpressions hash-
  consed to a single step.

This experiment measures each layer in isolation (the sections also
feed E2/E4/E13's ``BENCH_*.json`` trajectory sidecars) and reports the
optimizer/engine observability counters for one optimized, repeatedly
executed query.  Every timed comparison first verifies the fast path's
result equals the plain ``evaluate`` result — C6's observation
equivalence, enforced exhaustively by
``tests/optimizer/test_compiled_differential.py``.
"""

from __future__ import annotations

from benchmarks.bench_e2_expression_eval import compiled_dag_comparison
from benchmarks.bench_e4_optimizer import compiled_join_comparison
from benchmarks.bench_e13_read_cache import compiled_session_comparison


def metrics_snapshot() -> dict:
    """Run one session workload under an enabled registry and return
    the ``optimizer.*`` / ``engine.*`` / ``lang.plan_cache.*`` counters
    it produced."""
    from benchmarks.bench_e13_read_cache import (
        SESSION_QUERY,
        _session_program,
    )
    from repro.lang.session import Session
    from repro.obsv import registry as obsv_registry
    from repro.obsv.registry import MetricsRegistry

    registry = obsv_registry.enable(MetricsRegistry())
    try:
        session = Session()
        session.execute(_session_program())
        for _ in range(10):
            session.query(SESSION_QUERY)
        counters = registry.snapshot()["counters"]
    finally:
        obsv_registry.disable()
    prefixes = ("optimizer.", "engine.", "lang.")
    return {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(prefixes)
    }


def report() -> str:
    lines = ["E16 — cost-based optimizer + compiled expression engine"]

    plain, compiled, steps, nodes = compiled_dag_comparison()
    lines.append(
        f"  CSE (DAG, {nodes} tree nodes -> {steps} steps): "
        f"plain {plain * 1e3:8.1f} ms   "
        f"compiled {compiled * 1e3:6.2f} ms   "
        f"speedup {plain / compiled:6.0f}x"
    )

    naive_s, comp_s, naive_cost, opt_cost = compiled_join_comparison()
    lines.append(
        f"  cost-guided join (est. {naive_cost:.0f} -> {opt_cost:.0f}): "
        f"naive {naive_s * 1e3:7.1f} ms   "
        f"compiled {comp_s * 1e3:6.2f} ms   "
        f"speedup {naive_s / comp_s:5.1f}x"
    )

    adhoc, cached = compiled_session_comparison()
    lines.append(
        f"  session repeated query: ad-hoc {adhoc * 1e6:8.1f}µs   "
        f"cached plan {cached * 1e6:7.2f}µs   "
        f"speedup {adhoc / cached:5.1f}x"
    )

    lines.append("  counters for 10 repeats of the session query:")
    for name, value in metrics_snapshot().items():
        lines.append(f"    {name} = {value}")
    lines.append(
        "  every fast path verified equal to plain evaluate before "
        "timing (C6)"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e16.json`` —
    all three layers of the repeated-query read path."""
    plain, compiled, steps, nodes = compiled_dag_comparison()
    naive_s, comp_s, naive_cost, opt_cost = compiled_join_comparison()
    adhoc, cached = compiled_session_comparison()
    return {
        "experiment": "e16",
        "description": (
            "compiled engine + cost-guided optimizer: CSE over a DAG, "
            "cost-guided join rewrite, and the session plan cache"
        ),
        "measurements": {
            "cse_dag_speedup": {
                "kind": "speedup",
                "value": round(plain / compiled, 2),
                "floor": 5.0,
                "detail": f"{nodes} tree nodes -> {steps} steps",
            },
            "cost_guided_join_speedup": {
                "kind": "speedup",
                "value": round(naive_s / comp_s, 2),
                "floor": 5.0,
                "detail": (
                    f"estimated cost {naive_cost:.0f} -> {opt_cost:.0f}"
                ),
            },
            "session_repeat_speedup": {
                "kind": "speedup",
                "value": round(adhoc / cached, 2),
                "floor": 5.0,
                "detail": (
                    f"ad-hoc {adhoc * 1e6:.1f}us vs cached "
                    f"{cached * 1e6:.2f}us per query"
                ),
            },
        },
    }


# -- pytest-benchmark entry points -----------------------------------------


def bench_compiled_plan_execution(benchmark):
    from benchmarks.bench_e2_expression_eval import (
        build_database,
        random_expression,
    )
    import random

    from repro.core.compile import compile_expression

    database = build_database()
    plan = compile_expression(random_expression(6, random.Random(0)))
    benchmark(plan, database)


def bench_cost_guided_rewrite(benchmark):
    from benchmarks.bench_e4_optimizer import CATALOG, join_query
    from repro.optimizer import optimize_with_cost

    query = join_query()
    stats = {"emp": 300, "dept": 60}
    benchmark(optimize_with_cost, query, CATALOG, stats)


def bench_cached_session_query(benchmark):
    from benchmarks.bench_e13_read_cache import (
        SESSION_QUERY,
        _session_program,
    )
    from repro.lang.session import Session

    session = Session()
    session.execute(_session_program())
    session.query(SESSION_QUERY)  # warm the plan cache
    benchmark(session.query, SESSION_QUERY)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e16_compiled_engine"):
        print(report())
