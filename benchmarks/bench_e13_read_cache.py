"""E13 — the read-path engine: hot reads and the version-aware state cache.

Two measurements on a forward-delta relation with 512 installed versions:

* ``ρ(R, now)`` latency with the engine on (O(1): the installed state is
  returned directly) vs. off (``hot_reads=False, cache_capacity=0`` — the
  pre-engine replay path reconstructs from the base through every delta).
  The acceptance bar is a ≥10× improvement; in practice the gap is the
  replay length, i.e. orders of magnitude.
* warm rollback reads: a working set of historical probes visited twice,
  showing the state-cache hit latency vs. the cold reconstruction, plus
  the cache hit rate reported by ``cache_info()``.

Observation equivalence of the fast paths is the subject of
``tests/storage/test_cache_differential.py``; this script measures the
latency those tests license us to claim.
"""

from __future__ import annotations

import time

from repro.storage import DeltaBackend
from repro.workloads import churn_stream, populate_backends

HISTORY = 512
CARDINALITY = 100
CHURN = 0.1

#: Historical probe working set: 16 distinct rollback depths, small
#: enough to fit the default cache, visited twice.
WORKING_SET = [32 * i + 5 for i in range(16)]


def _prepared(**read_options) -> DeltaBackend:
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=13
    )
    backend = DeltaBackend(**read_options)
    populate_backends([backend], states)
    return backend


def _latency(backend, txn, repeat) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        backend.state_at("r", txn)
    return (time.perf_counter() - start) / repeat


def hot_read_comparison() -> tuple[float, float]:
    """(replay-path seconds, engine seconds) for ρ(R, now)."""
    baseline = _prepared(hot_reads=False, cache_capacity=0)
    engine = _prepared()
    # "now" = any probe at or after the newest transaction
    probe = HISTORY + 1
    return (
        _latency(baseline, probe, repeat=20),
        _latency(engine, probe, repeat=2000),
    )


def warm_rollback_comparison() -> tuple[float, float, dict]:
    """(cold seconds/probe, warm seconds/probe, cache_info) over the
    historical working set, visited twice."""
    backend = _prepared()
    start = time.perf_counter()
    for txn in WORKING_SET:
        backend.state_at("r", txn)
    cold = (time.perf_counter() - start) / len(WORKING_SET)
    start = time.perf_counter()
    for txn in WORKING_SET:
        backend.state_at("r", txn)
    warm = (time.perf_counter() - start) / len(WORKING_SET)
    return cold, warm, backend.cache_info()


#: Session-layer repeated query.  The join term is the optimizer's
#: bread and butter — the single-relation conjunct ``dval > 90`` prunes
#: ``d`` *below* the product in the cached plan, while the ad-hoc path
#: re-parses the string and materializes the full cross product on
#: every call; the union-of-history probes amortize the parse.
SESSION_QUERY = (
    "project [key, a1] (select [key = dkey and dval > 90] "
    "(rollback(r, now) times rollback(d, now))) union "
    "select [a1 > 10] (rollback(r, now) union rollback(r, 5)) union "
    "project [key, a1] (select [key > 100] (rollback(r, 9))) union "
    "select [a1 < 90] (rollback(r, 3) union rollback(r, now))"
)


def _session_program(history: int = 12, cardinality: int = 8) -> str:
    import random

    rng = random.Random(13)
    parts = ["define_relation(r, rollback);"]
    for _ in range(history):
        rows = ", ".join(
            f"({rng.randrange(1000)}, {rng.randrange(100)})"
            for _ in range(cardinality)
        )
        parts.append(
            "modify_state(r, state (key: integer, a1: integer) "
            f"{{ {rows} }});"
        )
    dim_rows = ", ".join(
        f"({rng.randrange(1000)}, {rng.randrange(100)})"
        for _ in range(60)
    )
    parts.append("define_relation(d, rollback);")
    parts.append(
        "modify_state(d, state (dkey: integer, dval: integer) "
        f"{{ {dim_rows} }});"
    )
    return "\n".join(parts)


def compiled_session_comparison(repeats: int = 200):
    """(ad-hoc seconds/query, cached seconds/query) for the same query
    string issued repeatedly — the ad-hoc session re-parses and
    tree-walks every call; the cached session parses, optimizes and
    compiles once, then runs the stored plan.  Results are verified
    identical before timing."""
    import time as _time

    from repro.lang.session import Session

    program = _session_program()
    adhoc = Session(plan_cache_capacity=0, optimize=False)
    cached = Session()
    adhoc.execute(program)
    cached.execute(program)
    assert (
        adhoc.query(SESSION_QUERY).sorted_rows()
        == cached.query(SESSION_QUERY).sorted_rows()
    )
    start = _time.perf_counter()
    for _ in range(repeats):
        adhoc.query(SESSION_QUERY)
    adhoc_seconds = (_time.perf_counter() - start) / repeats
    start = _time.perf_counter()
    for _ in range(repeats):
        cached.query(SESSION_QUERY)
    cached_seconds = (_time.perf_counter() - start) / repeats
    return adhoc_seconds, cached_seconds


def report() -> str:
    lines = [
        f"E13 — read-path engine on forward deltas "
        f"(history {HISTORY}, churn {CHURN})"
    ]
    replay, hot = hot_read_comparison()
    lines.append(
        f"  rho(R, now): replay path {replay * 1e6:9.1f}µs   "
        f"engine {hot * 1e6:7.2f}µs   "
        f"speedup {replay / hot:8.0f}x"
    )
    cold, warm, info = warm_rollback_comparison()
    total = info["hits"] + info["misses"]
    rate = info["hits"] / total if total else 0.0
    lines.append(
        f"  rollback working set ({len(WORKING_SET)} probes x2): "
        f"cold {cold * 1e6:8.1f}µs   warm {warm * 1e6:7.2f}µs   "
        f"speedup {cold / warm:6.0f}x"
    )
    lines.append(
        f"  state cache: hits {info['hits']}  misses {info['misses']}  "
        f"evictions {info['evictions']}  hit rate {rate:.0%}  "
        f"(capacity {info['capacity']})"
    )
    lines.append(
        "  shape: the hot read never replays; the warm pass is pure "
        "cache hits (rate 50% because every probe was first a miss)"
    )
    adhoc, cached = compiled_session_comparison()
    lines.append(
        f"  session repeated query: ad-hoc {adhoc * 1e6:8.1f}µs   "
        f"cached compiled plan {cached * 1e6:7.2f}µs   "
        f"speedup {adhoc / cached:5.1f}x  (results verified identical)"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e13.json``."""
    adhoc, cached = compiled_session_comparison()
    return {
        "experiment": "e13",
        "description": (
            "repeated session query string: re-parse + tree walk per "
            "call vs the plan cache's optimized compiled plan"
        ),
        "measurements": {
            "session_repeat_speedup": {
                "kind": "speedup",
                "value": round(adhoc / cached, 2),
                "floor": 5.0,
                "detail": (
                    f"ad-hoc {adhoc * 1e6:.1f}us vs cached "
                    f"{cached * 1e6:.2f}us per query, results verified "
                    "identical before timing"
                ),
            }
        },
    }


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e13_read_cache"):
        print(report())
