"""E13 — the read-path engine: hot reads and the version-aware state cache.

Two measurements on a forward-delta relation with 512 installed versions:

* ``ρ(R, now)`` latency with the engine on (O(1): the installed state is
  returned directly) vs. off (``hot_reads=False, cache_capacity=0`` — the
  pre-engine replay path reconstructs from the base through every delta).
  The acceptance bar is a ≥10× improvement; in practice the gap is the
  replay length, i.e. orders of magnitude.
* warm rollback reads: a working set of historical probes visited twice,
  showing the state-cache hit latency vs. the cold reconstruction, plus
  the cache hit rate reported by ``cache_info()``.

Observation equivalence of the fast paths is the subject of
``tests/storage/test_cache_differential.py``; this script measures the
latency those tests license us to claim.
"""

from __future__ import annotations

import time

from repro.storage import DeltaBackend
from repro.workloads import churn_stream, populate_backends

HISTORY = 512
CARDINALITY = 100
CHURN = 0.1

#: Historical probe working set: 16 distinct rollback depths, small
#: enough to fit the default cache, visited twice.
WORKING_SET = [32 * i + 5 for i in range(16)]


def _prepared(**read_options) -> DeltaBackend:
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=13
    )
    backend = DeltaBackend(**read_options)
    populate_backends([backend], states)
    return backend


def _latency(backend, txn, repeat) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        backend.state_at("r", txn)
    return (time.perf_counter() - start) / repeat


def hot_read_comparison() -> tuple[float, float]:
    """(replay-path seconds, engine seconds) for ρ(R, now)."""
    baseline = _prepared(hot_reads=False, cache_capacity=0)
    engine = _prepared()
    # "now" = any probe at or after the newest transaction
    probe = HISTORY + 1
    return (
        _latency(baseline, probe, repeat=20),
        _latency(engine, probe, repeat=2000),
    )


def warm_rollback_comparison() -> tuple[float, float, dict]:
    """(cold seconds/probe, warm seconds/probe, cache_info) over the
    historical working set, visited twice."""
    backend = _prepared()
    start = time.perf_counter()
    for txn in WORKING_SET:
        backend.state_at("r", txn)
    cold = (time.perf_counter() - start) / len(WORKING_SET)
    start = time.perf_counter()
    for txn in WORKING_SET:
        backend.state_at("r", txn)
    warm = (time.perf_counter() - start) / len(WORKING_SET)
    return cold, warm, backend.cache_info()


def report() -> str:
    lines = [
        f"E13 — read-path engine on forward deltas "
        f"(history {HISTORY}, churn {CHURN})"
    ]
    replay, hot = hot_read_comparison()
    lines.append(
        f"  rho(R, now): replay path {replay * 1e6:9.1f}µs   "
        f"engine {hot * 1e6:7.2f}µs   "
        f"speedup {replay / hot:8.0f}x"
    )
    cold, warm, info = warm_rollback_comparison()
    total = info["hits"] + info["misses"]
    rate = info["hits"] / total if total else 0.0
    lines.append(
        f"  rollback working set ({len(WORKING_SET)} probes x2): "
        f"cold {cold * 1e6:8.1f}µs   warm {warm * 1e6:7.2f}µs   "
        f"speedup {cold / warm:6.0f}x"
    )
    lines.append(
        f"  state cache: hits {info['hits']}  misses {info['misses']}  "
        f"evictions {info['evictions']}  hit rate {rate:.0%}  "
        f"(capacity {info['capacity']})"
    )
    lines.append(
        "  shape: the hot read never replays; the warm pass is pure "
        "cache hits (rate 50% because every probe was first a miss)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e13_read_cache"):
        print(report())
