#!/usr/bin/env python3
"""Run the full experiment harness: every table/series in EXPERIMENTS.md.

Usage:
    python -m benchmarks.run_experiments           # all experiments
    python -m benchmarks.run_experiments e5 e6     # a subset
    python -m benchmarks.run_experiments --metrics-json out.json e1 e6 e10
        # additionally collect observability metrics and write a JSON
        # sidecar (see benchmarks.metrics_io for the format)
    python -m benchmarks.run_experiments --bench-json-dir . e2 e4 e13 e16
        # write BENCH_<name>.json perf-trajectory sidecars for every
        # selected experiment that defines bench_payload(); these are
        # the files committed at the repo root and regression-checked
        # in CI by benchmarks.check_bench
"""

from __future__ import annotations

import json
import os
import sys
import time

from benchmarks import (
    bench_e1_update_operations,
    bench_e2_expression_eval,
    bench_e3_invariants,
    bench_e4_optimizer,
    bench_e5_storage_growth,
    bench_e6_rollback_latency,
    bench_e7_backend_equivalence,
    bench_e8_temporal,
    bench_e9_benzvi,
    bench_e10_concurrency,
    bench_e11_update_optimization,
    bench_e12_durability,
    bench_e13_read_cache,
    bench_e14_replication,
    bench_e15_sharding,
    bench_e16_compiled_engine,
    bench_e17_server,
    bench_e18_cluster,
    bench_e19_selfhealing,
    bench_e20_mvcc,
    bench_a1_findstate,
    bench_a2_checkpoint_sweep,
    bench_a3_coalescing,
    bench_a4_indexes,
)

EXPERIMENTS = {
    "e1": bench_e1_update_operations,
    "e2": bench_e2_expression_eval,
    "e3": bench_e3_invariants,
    "e4": bench_e4_optimizer,
    "e5": bench_e5_storage_growth,
    "e6": bench_e6_rollback_latency,
    "e7": bench_e7_backend_equivalence,
    "e8": bench_e8_temporal,
    "e9": bench_e9_benzvi,
    "e10": bench_e10_concurrency,
    "e11": bench_e11_update_optimization,
    "e12": bench_e12_durability,
    "e13": bench_e13_read_cache,
    "e14": bench_e14_replication,
    "e15": bench_e15_sharding,
    "e16": bench_e16_compiled_engine,
    "e17": bench_e17_server,
    "e18": bench_e18_cluster,
    "e19": bench_e19_selfhealing,
    "e20": bench_e20_mvcc,
    "a1": bench_a1_findstate,
    "a2": bench_a2_checkpoint_sweep,
    "a3": bench_a3_coalescing,
    "a4": bench_a4_indexes,
}


def write_bench_sidecars(directory: str, selected: list[str]) -> int:
    """Write ``BENCH_<name>.json`` for every selected experiment with a
    ``bench_payload()``; returns the number of sidecars written."""
    os.makedirs(directory, exist_ok=True)
    written = 0
    for name in selected:
        payload_fn = getattr(EXPERIMENTS[name], "bench_payload", None)
        if payload_fn is None:
            continue
        payload = payload_fn()
        payload["unix_time"] = time.time()
        path = os.path.join(directory, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  [bench sidecar written to {path}]")
        written += 1
    return written


def main(argv: list[str]) -> int:
    metrics_path = None
    bench_dir = None
    args = list(argv)
    if "--metrics-json" in args:
        index = args.index("--metrics-json")
        try:
            metrics_path = args[index + 1]
        except IndexError:
            print("--metrics-json requires a path argument")
            return 2
        del args[index : index + 2]
    if "--bench-json-dir" in args:
        index = args.index("--bench-json-dir")
        try:
            bench_dir = args[index + 1]
        except IndexError:
            print("--bench-json-dir requires a directory argument")
            return 2
        del args[index : index + 2]
    selected = [name.lower() for name in args] or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {list(EXPERIMENTS)}")
        return 2
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("run_experiments", path=metrics_path):
        for name in selected:
            module = EXPERIMENTS[name]
            start = time.perf_counter()
            print(module.report())
            print(f"  [{name} completed in "
                  f"{time.perf_counter() - start:.1f} s]")
            print()
    if bench_dir is not None:
        write_bench_sidecars(bench_dir, selected)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
