"""E20 — multi-writer MVCC throughput vs the serial manager.

The workload every multi-writer design is built for: write sets are all
disjoint (writers append to their own hot relation, readers write their
own private relation), but every reader scans the hot relations.  Under
the serial :class:`TransactionManager`'s backward validation a reader
aborts whenever any hot writer committed during its window — each writer
pulse restarts the whole reader cohort, which re-reads everything
(classic OCC retry storms).  Under the :class:`MVCCManager` reads come
off the begin-time snapshot and never invalidate: with disjoint write
sets the first-committer-wins probe admits every transaction on its
first attempt.

Also measured: the SSI surcharge on the same workload (its
rw-antidependency analysis finds no pivot here, so it should track SI),
and abort parity under deliberate self-overlap — MVCC must refuse every
lost update the serial manager refuses (faster, not looser).
"""

from __future__ import annotations

import sys
import time

from repro.concurrency import MVCCManager, TransactionManager
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback
from repro.errors import ConcurrencyError
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

FULL = {
    "hot": 12,       # hot relations, one writer each per pulse
    "readers": 48,   # reader clients per wave
    "pulses": 4,     # writer pulses per wave (serial readers retry each)
    "waves": 6,
    "repeats": 3,
}
SMOKE = {
    "hot": 6,
    "readers": 12,
    "pulses": 3,
    "waves": 2,
    "repeats": 2,
}

V = Schema(["v"])


def _hot(j: int) -> str:
    return f"hot_{j}"


def _private(i: int) -> str:
    return f"private_{i}"


def _setup(manager, config) -> None:
    setup = manager.begin()
    names = [_hot(j) for j in range(config["hot"])]
    names += [_private(i) for i in range(config["readers"])]
    for name in names:
        setup.stage(DefineRelation(name, "rollback"))
        setup.stage(
            ModifyState(name, Const(SnapshotState(V, [("init",)])))
        )
    manager.commit(setup)


def _begin_reader(manager, config, i: int):
    """A reader: scans every hot relation, writes its own private one —
    a write set nobody else touches."""
    transaction = manager.begin()
    for j in range(config["hot"]):
        transaction.read(Rollback(_hot(j)))
    transaction.stage(
        ModifyState(
            _private(i), Const(SnapshotState(V, [(f"r{i}",)]))
        )
    )
    return transaction


def disjoint_tps(make_manager, config) -> tuple[float, int, int]:
    """Commits/second: per wave, the reader cohort begins, then writer
    pulses land on the hot relations with reader commit attempts after
    each pulse.  Every write set is disjoint, so an ideal multi-writer
    manager admits everything first try."""
    manager = make_manager()
    _setup(manager, config)
    committed = 0
    start = time.perf_counter()
    for wave in range(config["waves"]):
        readers = [
            (i, _begin_reader(manager, config, i))
            for i in range(config["readers"])
        ]
        for pulse in range(config["pulses"]):
            for j in range(config["hot"]):
                writer = manager.begin()
                writer.stage(
                    ModifyState(
                        _hot(j),
                        Const(SnapshotState(V, [(f"w{wave}.{pulse}",)])),
                    )
                )
                manager.commit(writer)
                committed += 1
            survivors = []
            for i, transaction in readers:
                try:
                    manager.commit(transaction)
                    committed += 1
                except ConcurrencyError:
                    survivors.append(
                        (i, _begin_reader(manager, config, i))
                    )
            readers = survivors
        for i, transaction in readers:  # no more writers: must land
            manager.commit(transaction)
            committed += 1
    elapsed = time.perf_counter() - start
    return committed / elapsed, committed, manager.abort_count


def best_tps(make_manager, config) -> tuple[float, int, int]:
    """Best of ``repeats`` runs (throughput benchmarks race the noise
    floor, not the mean); also returns commit/abort counts of the last
    run for sanity assertions."""
    best = 0.0
    committed = aborts = 0
    for _ in range(config["repeats"]):
        tps, committed, aborts = disjoint_tps(make_manager, config)
        best = max(best, tps)
    return best, committed, aborts


def lost_update_refusals(config) -> tuple[int, int]:
    """Both managers must abort one of two overlapping writers; returns
    (serial aborts, mvcc aborts) over ``readers`` contended pairs."""
    counts = []
    for make_manager in (TransactionManager, MVCCManager):
        manager = make_manager()
        _setup(manager, config)
        for i in range(config["readers"]):
            relation = _private(i)
            first = manager.begin()
            second = manager.begin()
            for transaction in (first, second):
                transaction.read(Rollback(relation))
                transaction.stage(
                    ModifyState(
                        relation,
                        Const(SnapshotState(V, [("race",)])),
                    )
                )
            manager.commit(first)
            try:
                manager.commit(second)
            except ConcurrencyError:
                pass
        counts.append(manager.abort_count)
    return counts[0], counts[1]


# -- reporting ---------------------------------------------------------------


def report(smoke: bool = False) -> str:
    config = SMOKE if smoke else FULL
    lines = [
        f"E20 — multi-writer MVCC vs the serial manager "
        f"({config['readers']} readers x {config['hot']} hot writers, "
        f"{'smoke' if smoke else 'full'} run)"
    ]
    serial_tps, committed, serial_aborts = best_tps(
        TransactionManager, config
    )
    si_tps, si_committed, si_aborts = best_tps(MVCCManager, config)
    ssi_tps, _, ssi_aborts = best_tps(
        lambda: MVCCManager(isolation="ssi"), config
    )
    assert committed == si_committed, "both must land every transaction"
    assert si_aborts == 0 and ssi_aborts == 0, (
        "disjoint write sets must never abort under MVCC"
    )
    lines.append(
        f"  serial manager: {serial_tps:,.0f} commits/s "
        f"({serial_aborts} reader retries per run: every writer pulse "
        "restarts the cohort)"
    )
    lines.append(
        f"  mvcc si:        {si_tps:,.0f} commits/s "
        f"-> {si_tps / serial_tps:.2f}x (snapshot reads never "
        "invalidate; 0 aborts)"
    )
    lines.append(
        f"  mvcc ssi:       {ssi_tps:,.0f} commits/s "
        f"-> {ssi_tps / serial_tps:.2f}x (rw-antidependency analysis "
        "finds no pivot)"
    )
    serial_refused, mvcc_refused = lost_update_refusals(config)
    lines.append(
        f"  lost-update refusals over {config['readers']} contended "
        f"pairs: serial {serial_refused}, mvcc {mvcc_refused} "
        "(faster, not looser)"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e20.json``."""
    config = FULL
    serial_tps, _, _ = best_tps(TransactionManager, config)
    si_tps, _, si_aborts = best_tps(MVCCManager, config)
    ssi_tps, _, _ = best_tps(
        lambda: MVCCManager(isolation="ssi"), config
    )
    serial_refused, mvcc_refused = lost_update_refusals(config)
    return {
        "experiment": "e20",
        "description": (
            "multi-writer MVCC: disjoint-write commit throughput vs "
            "the serial manager's backward validation (OCC reader "
            "retry storms), plus SSI and lost-update refusal parity"
        ),
        "measurements": {
            "mvcc_disjoint_speedup": {
                "kind": "speedup",
                "value": round(si_tps / serial_tps, 2),
                "floor": 2.0,
                "detail": (
                    f"{config['readers']} hot-scanning readers under "
                    f"{config['pulses']} writer pulses per wave: "
                    f"serial {serial_tps:,.0f} commits/s vs mvcc si "
                    f"{si_tps:,.0f} commits/s with {si_aborts} aborts"
                ),
            },
            "ssi_disjoint_speedup": {
                "kind": "speedup",
                "value": round(ssi_tps / serial_tps, 2),
                "floor": 0.9,
                "detail": (
                    "same workload with rw-antidependency tracking on: "
                    f"{ssi_tps:,.0f} commits/s"
                ),
            },
            "lost_update_refusal_gap": {
                "kind": "count",
                "value": abs(serial_refused - mvcc_refused),
                "detail": (
                    f"serial refused {serial_refused}, mvcc refused "
                    f"{mvcc_refused} of the same contended pairs; the "
                    "acceptance bar is identical refusal counts"
                ),
            },
        },
    }


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e20_mvcc"):
        print(report(smoke="--smoke" in sys.argv[1:]))
