"""Ablation A1 — FINDSTATE interpolation strategy.

DESIGN.md implements ``FINDSTATE`` with binary search over the strictly
increasing transaction numbers (the "interpolation" the paper notes is
possible).  The ablation compares it against the naive linear scan a
direct reading of the semantics would produce, across history lengths.
Expected shape: identical results everywhere; O(log n) vs O(n) probe
cost, diverging visibly past ~1k states.
"""

from __future__ import annotations

import time

from repro.core.relation import EMPTY_STATE, Relation, RelationType, find_state
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def linear_find_state(relation: Relation, txn: int):
    """The naive O(n) reading of the paper's FINDSTATE definition."""
    best = EMPTY_STATE
    for state, state_txn in relation.rstate:
        if state_txn <= txn:
            best = state
        else:
            break
    return best


def build_relation(history: int) -> Relation:
    states = [
        (SnapshotState(KV, [[i]]), 2 * i + 1) for i in range(history)
    ]
    return Relation(RelationType.ROLLBACK, states)


def verify_agreement(history: int = 500) -> int:
    relation = build_relation(history)
    probes = list(range(0, 2 * history + 3, 7))
    for txn in probes:
        assert find_state(relation, txn) == linear_find_state(
            relation, txn
        )
    return len(probes)


def probe_cost(histories=(100, 1000, 10_000)):
    """Measured rows: (history, binary µs, linear µs)."""
    rows = []
    for history in histories:
        relation = build_relation(history)
        probes = [
            (2 * history * k) // 10 for k in range(1, 10)
        ]
        start = time.perf_counter()
        for txn in probes:
            find_state(relation, txn)
        binary_seconds = (time.perf_counter() - start) / len(probes)

        start = time.perf_counter()
        for txn in probes:
            linear_find_state(relation, txn)
        linear_seconds = (time.perf_counter() - start) / len(probes)
        rows.append((history, binary_seconds, linear_seconds))
    return rows


def report() -> str:
    lines = ["A1 — FINDSTATE: binary search vs linear scan (ablation)"]
    probes = verify_agreement()
    lines.append(
        f"  correctness: {probes} probes agree between the two "
        "implementations"
    )
    lines.append(f"  {'history':>8s} {'binary':>8s} {'linear':>9s}")
    for history, binary_s, linear_s in probe_cost():
        lines.append(
            f"  {history:8d} {binary_s * 1e6:5.1f} µs "
            f"{linear_s * 1e6:6.1f} µs"
        )
    return "\n".join(lines)


def bench_findstate_binary_10k(benchmark):
    relation = build_relation(10_000)
    benchmark(find_state, relation, 9_999)


def bench_findstate_linear_10k(benchmark):
    relation = build_relation(10_000)
    benchmark(linear_find_state, relation, 9_999)


if __name__ == "__main__":
    print(report())
