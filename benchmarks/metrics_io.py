"""Metrics JSON sidecars for the benchmark scripts.

Every benchmark can emit a *sidecar* — a JSON file with the full metrics
snapshot collected while the benchmark ran — so successive PRs have a
perf trajectory to compare against instead of eyeballing stdout.

Two ways to ask for one:

* environment: ``REPRO_METRICS_JSON=1`` (default filename
  ``<script>.metrics.json`` in the working directory),
  ``REPRO_METRICS_JSON=/some/dir`` (that directory), or
  ``REPRO_METRICS_JSON=/some/file.json`` (that exact file);
* ``python -m benchmarks.run_experiments --metrics-json PATH`` for the
  whole harness.

With the variable unset (or set to ``0``/``false``/``no``/``off``) the
context manager is inert and the benchmark runs with metrics disabled —
the default, unobserved configuration.

Sidecar format::

    {
      "script": "bench_e1_update_operations",
      "unix_time": 1754000000.0,
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional

ENV_VAR = "REPRO_METRICS_JSON"

__all__ = ["ENV_VAR", "capture_metrics", "write_sidecar"]


def _path_from_env(script: str) -> Optional[str]:
    value = os.environ.get(ENV_VAR, "").strip()
    if not value or value.lower() in ("0", "false", "no", "off"):
        return None
    if value.lower() in ("1", "true", "yes"):
        return f"{script}.metrics.json"
    if value.endswith(".json"):
        return value
    return os.path.join(value, f"{script}.metrics.json")


def write_sidecar(path: str, script: str, registry) -> None:
    """Write the registry snapshot as a JSON sidecar at ``path``."""
    payload = {
        "script": script,
        "unix_time": time.time(),
        "metrics": registry.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@contextmanager
def capture_metrics(
    script: str, path: Optional[str] = None
) -> Iterator[object]:
    """Enable metrics for the duration of a benchmark run and write the
    sidecar on exit.

    ``path`` overrides the environment; when neither is given, this is
    a no-op (metrics stay disabled) and yields ``None``.
    """
    target = path if path is not None else _path_from_env(script)
    if target is None:
        yield None
        return
    from repro.obsv import registry as obsv_registry
    from repro.obsv.registry import MetricsRegistry

    registry = obsv_registry.enable(MetricsRegistry())
    try:
        yield registry
    finally:
        obsv_registry.disable()
        write_sidecar(target, script, registry)
        print(f"  [metrics sidecar written to {target}]")
