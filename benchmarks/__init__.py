"""Benchmark harness — one module per experiment in DESIGN.md Section 4.

Two ways to run:

* ``pytest benchmarks/ --benchmark-only`` — timed micro-benchmarks via
  pytest-benchmark (each ``bench_*`` function).
* ``python -m benchmarks.run_experiments`` — the full experiment harness:
  regenerates every table/series recorded in EXPERIMENTS.md, printing the
  same rows.
"""
