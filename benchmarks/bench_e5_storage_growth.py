"""E5 — storage growth: the paper's "quite inefficient" claim, quantified.

Stored atoms per backend as a function of history length and churn rate.
Expected shape: full-copy grows as Θ(history × cardinality) regardless of
churn; delta/timestamp designs grow as Θ(history × churn × cardinality);
at churn → 1 the delta advantage vanishes.
"""

from __future__ import annotations

from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
)
from repro.workloads import churn_stream, populate_backends


def backend_set():
    return [
        FullCopyBackend(),
        DeltaBackend(),
        ReverseDeltaBackend(),
        CheckpointDeltaBackend(16),
        TupleTimestampBackend(),
    ]


def growth_table(
    histories=(25, 100, 400),
    churns=(0.02, 0.2, 1.0),
    cardinality=100,
):
    """Measured rows: (history, churn, backend name, stored atoms)."""
    rows = []
    for history in histories:
        for churn in churns:
            states = churn_stream(
                history, cardinality=cardinality, churn=churn, seed=13
            )
            backends = backend_set()
            populate_backends(backends, states)
            for backend in backends:
                rows.append(
                    (history, churn, backend.name, backend.stored_atoms())
                )
    return rows


def report() -> str:
    lines = [
        "E5 — storage growth vs history length and churn "
        "(cardinality 100)"
    ]
    rows = growth_table()
    backends = ["full-copy", "forward-delta", "reverse-delta",
                "checkpoint-delta", "tuple-timestamp"]
    header = f"  {'history':>7s} {'churn':>6s} " + " ".join(
        f"{name:>17s}" for name in backends
    )
    lines.append(header)
    by_key: dict[tuple, dict[str, int]] = {}
    for history, churn, name, atoms in rows:
        by_key.setdefault((history, churn), {})[name] = atoms
    for (history, churn), cells in sorted(by_key.items()):
        lines.append(
            f"  {history:7d} {churn:6.2f} "
            + " ".join(f"{cells[name]:17d}" for name in backends)
        )
    lines.append(
        "  shape: full-copy ∝ history; deltas ∝ history × churn; "
        "advantage vanishes at churn 1.0"
    )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_install_full_copy(benchmark):
    states = churn_stream(50, cardinality=100, churn=0.1, seed=2)

    def install():
        populate_backends([FullCopyBackend()], states)

    benchmark(install)


def bench_install_forward_delta(benchmark):
    states = churn_stream(50, cardinality=100, churn=0.1, seed=2)

    def install():
        populate_backends([DeltaBackend()], states)

    benchmark(install)


def bench_install_tuple_timestamp(benchmark):
    states = churn_stream(50, cardinality=100, churn=0.1, seed=2)

    def install():
        populate_backends([TupleTimestampBackend()], states)

    benchmark(install)


if __name__ == "__main__":
    print(report())
