"""E10 — concurrent transactions preserve the sequential semantics
(paper Section 3.2).

Correctness: for client counts 2..16 and several seeds, the committed
database equals the serial replay of the committed transactions in commit
order.  Performance: commit throughput and abort rate vs contention.
"""

from __future__ import annotations

import time

from repro.concurrency import (
    ClientScript,
    InterleavedScheduler,
    serial_execution,
)
from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER)])


def appender(identifier: str, key: int):
    def body(txn):
        txn.stage(DefineRelation(identifier, "rollback"))
        txn.stage(
            ModifyState(
                identifier,
                Union(
                    Rollback(identifier),
                    Const(SnapshotState(KV, [[key]])),
                ),
            )
        )

    return body


def make_clients(n_clients: int, txns_each: int, hot_fraction: float):
    """`hot_fraction` of each client's transactions touch one shared
    relation (contention); the rest touch a private one."""
    clients = []
    for ci in range(n_clients):
        bodies = []
        for bi in range(txns_each):
            hot = (bi / max(1, txns_each)) < hot_fraction
            identifier = "hot" if hot else f"private_{ci}"
            bodies.append(appender(identifier, ci * 1000 + bi))
        clients.append(ClientScript(f"c{ci}", bodies))
    return clients


def run_scenario(n_clients: int, hot_fraction: float, seed: int):
    scheduler = InterleavedScheduler(
        make_clients(n_clients, 6, hot_fraction),
        seed=seed,
        overlap=0.7,
        max_retries=200,
    )
    start = time.perf_counter()
    final = scheduler.run()
    elapsed = time.perf_counter() - start
    replay = serial_execution(scheduler.committed_scripts)
    assert final == replay, "sequential semantics violated"
    return (
        scheduler.manager.commit_count,
        scheduler.manager.abort_count,
        elapsed,
    )


def contention_table(client_counts=(2, 4, 8, 16)):
    """Measured rows: (clients, hot fraction, commits, aborts, tps)."""
    rows = []
    for n_clients in client_counts:
        for hot_fraction in (0.0, 0.5, 1.0):
            commits, aborts, elapsed = run_scenario(
                n_clients, hot_fraction, seed=n_clients
            )
            rows.append(
                (
                    n_clients,
                    hot_fraction,
                    commits,
                    aborts,
                    commits / elapsed,
                )
            )
    return rows


def report() -> str:
    lines = ["E10 — concurrency preserves sequential semantics"]
    lines.append(
        f"  {'clients':>8s} {'hot':>5s} {'commits':>8s} "
        f"{'aborts':>7s} {'commits/s':>10s}"
    )
    for n_clients, hot, commits, aborts, tps in contention_table():
        lines.append(
            f"  {n_clients:8d} {hot:5.1f} {commits:8d} {aborts:7d} "
            f"{tps:9.0f}"
        )
    lines.append(
        "  every run verified equal to serial replay in commit order"
    )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_low_contention_8_clients(benchmark):
    def scenario():
        return run_scenario(8, 0.0, seed=1)

    commits, aborts, _ = benchmark(scenario)
    assert aborts == 0


def bench_high_contention_8_clients(benchmark):
    def scenario():
        return run_scenario(8, 1.0, seed=1)

    commits, _, _ = benchmark(scenario)
    assert commits == 8 * 6 + 0 or commits == 48


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e10_concurrency"):
        print(report())
