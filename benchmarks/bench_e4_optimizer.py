"""E4 — the snapshot algebra's optimization laws survive the extension
(claim C2): rewrites over expressions containing ρ preserve results and
reduce measured evaluation time.

The workload is the paper's own example of an optimization target:
selection over a product (a join), with a single-relation conjunct that
the optimizer pushes below the product.
"""

from __future__ import annotations

import random
import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.compile import compile_expression
from repro.core.expressions import Const, Product, Rollback, Select
from repro.core.sentences import run
from repro.optimizer import (
    collect_statistics,
    estimate_cost,
    optimize,
    optimize_with_cost,
)
from repro.optimizer.equivalence import states_equal
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import And, Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

EMP = Schema([Attribute("eid", INTEGER), Attribute("dept", INTEGER)])
DEPT = Schema([Attribute("did", INTEGER), Attribute("floor", INTEGER)])
CATALOG = {"emp": EMP, "dept": DEPT}


def build_database(emp_card: int, dept_card: int, seed: int = 0):
    rng = random.Random(seed)
    emp_rows = [
        [i, rng.randrange(dept_card)] for i in range(emp_card)
    ]
    dept_rows = [[i, rng.randrange(10)] for i in range(dept_card)]
    return run(
        [
            DefineRelation("emp", "rollback"),
            ModifyState("emp", Const(SnapshotState(EMP, emp_rows))),
            DefineRelation("dept", "rollback"),
            ModifyState("dept", Const(SnapshotState(DEPT, dept_rows))),
        ]
    )


def join_query():
    """σ_{dept=did ∧ floor=3}(emp × dept) — naive plan."""
    return Select(
        Product(Rollback("emp"), Rollback("dept")),
        And(
            Comparison(attr("dept"), "=", attr("did")),
            Comparison(attr("floor"), "=", lit(3)),
        ),
    )


def speedup_by_cardinality(cardinalities=(50, 150, 400)):
    """Measured rows: (|emp|, |dept|, naive s, optimized s, speedup)."""
    rows = []
    for emp_card in cardinalities:
        dept_card = max(10, emp_card // 5)
        database = build_database(emp_card, dept_card)
        naive = join_query()
        optimized = optimize(naive, CATALOG)
        assert states_equal(
            naive.evaluate(database), optimized.evaluate(database)
        )

        start = time.perf_counter()
        naive.evaluate(database)
        naive_seconds = time.perf_counter() - start

        start = time.perf_counter()
        optimized.evaluate(database)
        optimized_seconds = time.perf_counter() - start

        rows.append(
            (
                emp_card,
                dept_card,
                naive_seconds,
                optimized_seconds,
                naive_seconds / optimized_seconds,
            )
        )
    return rows


def compiled_join_comparison(
    emp_card: int = 300, dept_card: int = 60, repeats: int = 5
):
    """Repeated-query workload: the naive join plan re-evaluated every
    run vs the cost-guided rewrite compiled once and executed per run.

    Returns ``(naive seconds/run, compiled seconds/run, naive cost,
    optimized cost)``; results are verified equal before timing.
    """
    database = build_database(emp_card, dept_card)
    naive = join_query()
    stats = collect_statistics(database)
    optimized = optimize_with_cost(naive, CATALOG, stats)
    plan = compile_expression(optimized)
    assert states_equal(naive.evaluate(database), plan(database))
    start = time.perf_counter()
    for _ in range(repeats):
        naive.evaluate(database)
    naive_seconds = (time.perf_counter() - start) / repeats
    start = time.perf_counter()
    for _ in range(repeats):
        plan(database)
    compiled_seconds = (time.perf_counter() - start) / repeats
    return (
        naive_seconds,
        compiled_seconds,
        estimate_cost(naive, stats),
        estimate_cost(optimized, stats),
    )


def report() -> str:
    lines = ["E4 — optimizer over the extended algebra (claim C2)"]
    naive = join_query()
    optimized = optimize(naive, CATALOG)
    stats = {"emp": 400, "dept": 80}
    lines.append(
        f"  estimated cost: naive={estimate_cost(naive, stats):.0f}, "
        f"optimized={estimate_cost(optimized, stats):.0f}"
    )
    lines.append(
        f"  {'|emp|':>6s} {'|dept|':>7s} {'naive':>9s} "
        f"{'optimized':>10s} {'speedup':>8s}"
    )
    for emp_card, dept_card, naive_s, opt_s, speedup in (
        speedup_by_cardinality()
    ):
        lines.append(
            f"  {emp_card:6d} {dept_card:7d} {naive_s * 1e3:6.1f} ms "
            f"{opt_s * 1e3:7.1f} ms {speedup:7.1f}x"
        )
    lines.append(
        "  every rewritten plan verified equal to the naive plan"
    )
    naive_s, compiled_s, naive_cost, opt_cost = compiled_join_comparison()
    lines.append(
        f"  cost-guided + compiled (300x60, repeated): "
        f"naive {naive_s * 1e3:7.1f} ms   "
        f"compiled {compiled_s * 1e3:6.2f} ms   "
        f"speedup {naive_s / compiled_s:5.1f}x   "
        f"(est. cost {naive_cost:.0f} -> {opt_cost:.0f})"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e4.json``."""
    naive_s, compiled_s, naive_cost, opt_cost = compiled_join_comparison()
    return {
        "experiment": "e4",
        "description": (
            "repeated join query: naive plan re-evaluated per run vs "
            "cost-guided rewrite compiled once and executed per run"
        ),
        "measurements": {
            "cost_guided_join_speedup": {
                "kind": "speedup",
                "value": round(naive_s / compiled_s, 2),
                "floor": 5.0,
                "detail": (
                    f"estimated cost {naive_cost:.0f} -> {opt_cost:.0f}; "
                    f"naive {naive_s * 1e3:.2f} ms vs compiled "
                    f"{compiled_s * 1e3:.3f} ms per run, result verified "
                    "identical before timing"
                ),
            }
        },
    }


# -- pytest-benchmark entry points -----------------------------------------


def bench_naive_join_150(benchmark):
    database = build_database(150, 30)
    query = join_query()
    benchmark(query.evaluate, database)


def bench_optimized_join_150(benchmark):
    database = build_database(150, 30)
    query = optimize(join_query(), CATALOG)
    benchmark(query.evaluate, database)


def bench_rewrite_itself(benchmark):
    query = join_query()
    benchmark(optimize, query, CATALOG)


if __name__ == "__main__":
    print(report())
