"""Ablation A2 — the checkpoint-interval knob.

Sweeps :class:`CheckpointDeltaBackend`'s interval across a fixed workload
and reports the (stored atoms, worst-case probe latency) frontier:
interval 1 degenerates to full-copy, large intervals degenerate to pure
forward deltas.  The interesting output is the knee of the curve.
"""

from __future__ import annotations

import time

from repro.storage import CheckpointDeltaBackend
from repro.workloads import churn_stream, populate_backends

HISTORY = 240
CARDINALITY = 120
CHURN = 0.08


def sweep(intervals=(1, 2, 4, 8, 16, 32, 64, 240)):
    """Measured rows: (interval, stored atoms, worst probe µs)."""
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=33
    )
    rows = []
    for interval in intervals:
        backend = CheckpointDeltaBackend(interval)
        populate_backends([backend], states)
        worst = 0.0
        for txn in range(2, HISTORY + 2, HISTORY // 12):
            start = time.perf_counter()
            for _ in range(5):
                backend.state_at("r", txn)
            probe = (time.perf_counter() - start) / 5
            worst = max(worst, probe)
        rows.append((interval, backend.stored_atoms(), worst))
    return rows


def report() -> str:
    lines = [
        f"A2 — checkpoint interval sweep "
        f"(history {HISTORY}, churn {CHURN})"
    ]
    lines.append(
        f"  {'interval':>9s} {'stored atoms':>13s} {'worst probe':>12s}"
    )
    for interval, atoms, worst in sweep():
        lines.append(
            f"  {interval:9d} {atoms:13d} {worst * 1e6:9.0f} µs"
        )
    lines.append(
        "  interval 1 ≈ full-copy space / flat reads; large intervals "
        "≈ delta space / linear replay"
    )
    return "\n".join(lines)


def bench_checkpoint_interval_4(benchmark):
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=33
    )
    backend = CheckpointDeltaBackend(4)
    populate_backends([backend], states)
    benchmark(backend.state_at, "r", HISTORY // 2)


def bench_checkpoint_interval_64(benchmark):
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=33
    )
    backend = CheckpointDeltaBackend(64)
    populate_backends([backend], states)
    benchmark(backend.state_at, "r", HISTORY // 2)


if __name__ == "__main__":
    print(report())
