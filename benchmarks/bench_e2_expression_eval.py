"""E2 — expression evaluation is side-effect-free (claim C1) and its
cost scales with tree depth.

Correctness: evaluating randomized expression trees (with rollback
leaves) never changes the database value.  Performance: evaluation time
as a function of expression depth.
"""

from __future__ import annotations

import random
import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.compile import compile_expression
from repro.core.expressions import (
    Const,
    Difference,
    Expression,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.sentences import run
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.predicates import Comparison, attr, lit
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.workloads import churn_stream

KV = Schema([Attribute("key", INTEGER), Attribute("a1", INTEGER)])


def build_database(history: int = 20, cardinality: int = 50):
    """A rollback relation with `history` recorded states."""
    schema = Schema(
        [Attribute("key", INTEGER), Attribute("a1", INTEGER)]
    )
    rng = random.Random(7)
    commands = [DefineRelation("r", "rollback")]
    for _ in range(history):
        rows = [
            [rng.randrange(1000), rng.randrange(100)]
            for _ in range(cardinality)
        ]
        commands.append(
            ModifyState("r", Const(SnapshotState(schema, rows)))
        )
    return run(commands)


def random_expression(depth: int, rng: random.Random) -> Expression:
    """A random expression tree of the given depth over ρ(r, ·) leaves."""
    if depth == 0:
        txn = rng.choice([2, 5, 10, None])
        from repro.core.txn import NOW

        return Rollback("r", NOW if txn is None else txn)
    choice = rng.random()
    if choice < 0.3:
        return Union(
            random_expression(depth - 1, rng),
            random_expression(depth - 1, rng),
        )
    if choice < 0.5:
        return Difference(
            random_expression(depth - 1, rng),
            random_expression(depth - 1, rng),
        )
    if choice < 0.8:
        return Select(
            random_expression(depth - 1, rng),
            Comparison(attr("key"), ">", lit(rng.randrange(1000))),
        )
    return Project(random_expression(depth - 1, rng), ["key", "a1"])


def verify_purity(trials: int = 40, depth: int = 6, seed: int = 3) -> int:
    """Evaluate random trees and check the database is unchanged."""
    database = build_database()
    reference = database
    rng = random.Random(seed)
    for _ in range(trials):
        expression = random_expression(rng.randrange(1, depth), rng)
        expression.evaluate(database)
        assert database == reference
    return trials


def eval_time_by_depth(depths=(1, 2, 4, 6, 8, 10)):
    """Measured rows: (depth, mean seconds per evaluation)."""
    database = build_database()
    rng = random.Random(11)
    rows = []
    for depth in depths:
        expressions = [
            random_expression(depth, rng) for _ in range(8)
        ]
        start = time.perf_counter()
        for expression in expressions:
            expression.evaluate(database)
        elapsed = (time.perf_counter() - start) / len(expressions)
        rows.append((depth, elapsed))
    return rows


def compiled_dag_comparison(doublings: int = 8, repeats: int = 50):
    """Repeated-query workload over a DAG-shaped tree: the compiled
    plan evaluates each *distinct* subtree once per run, while plain
    evaluation re-walks every occurrence.

    Returns ``(plain seconds, compiled seconds/run, step_count,
    tree_node_count)``; the compiled result is verified equal to the
    plain result before anything is timed.
    """
    database = build_database()
    expression = random_expression(3, random.Random(5))
    for _ in range(doublings):
        expression = Union(expression, expression)
    plan = compile_expression(expression)
    assert plan(database) == expression.evaluate(database)
    # best-of-3 on both sides: the ratio is huge (hundreds of x), so a
    # single noisy sample would dominate the recorded speedup
    plain = min(
        _timed(expression.evaluate, database, 1) for _ in range(3)
    )
    compiled = min(
        _timed(plan, database, repeats) for _ in range(3)
    )
    return plain, compiled, plan.step_count, plan.node_count


def _timed(fn, database, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn(database)
    return (time.perf_counter() - start) / repeats


def report() -> str:
    lines = ["E2 — expression evaluation (claim C1)"]
    trials = verify_purity()
    lines.append(
        f"  correctness: {trials} random expression trees evaluated; "
        "database value unchanged every time"
    )
    lines.append(f"  {'depth':>6s} {'per evaluation':>15s}")
    for depth, seconds in eval_time_by_depth():
        lines.append(f"  {depth:6d} {seconds * 1e3:12.3f} ms")
    plain, compiled, steps, nodes = compiled_dag_comparison()
    lines.append(
        f"  compiled DAG ({nodes} tree nodes, {steps} steps): "
        f"plain {plain * 1e3:8.1f} ms   "
        f"compiled {compiled * 1e3:6.2f} ms   "
        f"speedup {plain / compiled:6.0f}x  (result verified identical)"
    )
    return "\n".join(lines)


def bench_payload() -> dict:
    """Perf-trajectory record for the committed ``BENCH_e2.json``."""
    plain, compiled, steps, nodes = compiled_dag_comparison()
    return {
        "experiment": "e2",
        "description": (
            "repeated evaluation of a DAG-shaped expression: compiled "
            "plan (one step per distinct subtree) vs plain tree walk"
        ),
        "measurements": {
            "compiled_dag_speedup": {
                "kind": "speedup",
                "value": round(plain / compiled, 2),
                "floor": 5.0,
                "detail": (
                    f"{nodes} tree nodes collapse to {steps} steps; "
                    f"plain {plain * 1e3:.2f} ms vs compiled "
                    f"{compiled * 1e3:.3f} ms per run, result verified "
                    "identical before timing"
                ),
            }
        },
    }


# -- pytest-benchmark entry points -----------------------------------------


def bench_eval_depth_4(benchmark):
    database = build_database()
    expression = random_expression(4, random.Random(0))
    benchmark(expression.evaluate, database)


def bench_eval_depth_8(benchmark):
    database = build_database()
    expression = random_expression(8, random.Random(0))
    benchmark(expression.evaluate, database)


def bench_rollback_leaf(benchmark):
    database = build_database(history=100)
    expression = Rollback("r", 50)
    benchmark(expression.evaluate, database)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e2_expression_eval"):
        print(report())
