"""E15 — sharding: scatter-gather overhead and rebalance cost.

Four questions the coordinator answers empirically:

* what command throughput looks like as the shard count grows — the
  coordinator adds an owner-map lookup and a numeral-translation layer
  on top of each shard's own execute path;
* what a historical read (``ρ(I, N)`` at a past global transaction)
  costs through the owner-shard translation, by shard count;
* what cross-shard reads cost — a single-shard query against 2-way and
  4-way scatter-gather unions merged at the coordinator; and
* what a rebalance costs as a function of how many identifiers move,
  split into the WAL-replay and state-copy strategies.

``--smoke`` shrinks the workload for CI; with ``REPRO_METRICS_JSON``
set, the sidecar carries the ``shard.*`` counters (commands routed vs
coordinated, query fan-out, rebalance move strategies).
"""

from __future__ import annotations

import random
import sys
import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.txn import NOW
from repro.sharding import HashPartitioner, ShardedDatabase
from repro.workloads import StateGenerator

FULL = dict(
    commands=600,
    identifiers=16,
    shard_counts=(1, 2, 4, 8),
    queries=300,
    repeat=3,
)
SMOKE = dict(
    commands=150,
    identifiers=8,
    shard_counts=(1, 4),
    queries=60,
    repeat=1,
)

IDENT = "rel{:02d}".format


def command_stream(length: int, identifiers: int, seed: int = 3):
    """Defines followed by modifies over ``identifiers`` rollback
    relations; one in eight modifies reads a *different* relation, so
    the coordinated (cross-shard) write path is always exercised."""
    rng = random.Random(seed)
    generator = StateGenerator(seed=seed, key_space=64)
    commands = [
        DefineRelation(IDENT(i), "rollback") for i in range(identifiers)
    ]
    while len(commands) < length:
        target = rng.randrange(identifiers)
        expression = Const(generator.snapshot_state(3))
        if rng.random() < 0.125:
            other = (target + 1) % identifiers
            expression = Union(Rollback(IDENT(other), NOW), expression)
        commands.append(ModifyState(IDENT(target), expression))
    return commands


def _loaded(shards: int, config) -> ShardedDatabase:
    sharded = ShardedDatabase(shards, partitioner=HashPartitioner())
    for command in command_stream(
        config["commands"], config["identifiers"]
    ):
        sharded.execute(command)
    return sharded


def command_throughput(shards: int, config) -> float:
    """Commands/second through the coordinator, by shard count."""
    commands = command_stream(
        config["commands"], config["identifiers"]
    )
    with ShardedDatabase(
        shards, partitioner=HashPartitioner()
    ) as sharded:
        start = time.perf_counter()
        for command in commands:
            sharded.execute(command)
        elapsed = time.perf_counter() - start
        assert sharded.transaction_number > 0
    return len(commands) / elapsed


def rollback_latency(shards: int, config) -> float:
    """Mean microseconds per historical ``ρ(I, N)`` read (global
    numeral translated to the owner shard's local numbering)."""
    rng = random.Random(11)
    with _loaded(shards, config) as sharded:
        horizon = sharded.transaction_number
        probes = [
            Rollback(
                IDENT(rng.randrange(config["identifiers"])),
                rng.randrange(1, horizon + 1),
            )
            for _ in range(config["queries"])
        ]
        start = time.perf_counter()
        for probe in probes:
            sharded.evaluate(probe)
        elapsed = time.perf_counter() - start
    return elapsed / len(probes) * 1e6


def query_latency(shards: int, fanout: int, config) -> float:
    """Mean microseconds per query unioning ``fanout`` relations (the
    coordinator merges whatever spreads across shard boundaries)."""
    with _loaded(shards, config) as sharded:
        expression = Rollback(IDENT(0), NOW)
        for index in range(1, fanout):
            expression = Union(
                expression, Rollback(IDENT(index), NOW)
            )
        start = time.perf_counter()
        for _ in range(config["queries"]):
            sharded.evaluate(expression)
        elapsed = time.perf_counter() - start
    return elapsed / config["queries"] * 1e6


def rebalance_cost(shards: int, config) -> tuple[int, int, int, float]:
    """(moved, wal_replayed, state_copied, milliseconds) for one
    rebalance under a re-salted partitioner."""
    with _loaded(shards, config) as sharded:
        start = time.perf_counter()
        report = sharded.rebalance(HashPartitioner(salt=97))
        elapsed = time.perf_counter() - start
        return (
            report.moved,
            report.wal_replayed,
            report.state_copied,
            elapsed * 1000.0,
        )


def report(smoke: bool = False) -> str:
    config = SMOKE if smoke else FULL
    lines = [
        f"E15 — sharding ({config['commands']} commands over "
        f"{config['identifiers']} relations; "
        f"{'smoke' if smoke else 'full'} run)"
    ]
    lines.append("  command throughput (commands/s) by shard count:")
    for shards in config["shard_counts"]:
        rate = max(
            command_throughput(shards, config)
            for _ in range(config["repeat"])
        )
        lines.append(f"    {shards:2d} shard(s) {rate:10.0f}")
    lines.append(
        "  historical read latency (µs per ρ(I, N)) by shard count:"
    )
    for shards in config["shard_counts"]:
        micros = min(
            rollback_latency(shards, config)
            for _ in range(config["repeat"])
        )
        lines.append(f"    {shards:2d} shard(s) {micros:10.1f}")
    widest = max(config["shard_counts"])
    lines.append(
        f"  query latency (µs) on {widest} shard(s), by union width:"
    )
    for fanout in (1, 2, 4):
        micros = min(
            query_latency(widest, fanout, config)
            for _ in range(config["repeat"])
        )
        lines.append(f"    {fanout}-way union {micros:10.1f}")
    lines.append("  rebalance cost after the full sentence:")
    for shards in config["shard_counts"]:
        if shards == 1:
            continue
        moved, replayed, copied, millis = rebalance_cost(shards, config)
        lines.append(
            f"    {shards:2d} shard(s)  moved {moved:3d} "
            f"(wal-replayed {replayed:3d}, state-copied {copied:3d}) "
            f"{millis:8.1f} ms"
        )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def bench_command_throughput(benchmark):
    benchmark(command_throughput, 4, SMOKE)


def bench_rollback_latency(benchmark):
    benchmark(rollback_latency, 4, SMOKE)


def bench_rebalance(benchmark):
    benchmark(rebalance_cost, 4, SMOKE)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e15_sharding"):
        print(report(smoke="--smoke" in sys.argv[1:]))
