"""Ablation A4 — index-aware selection vs σ scans on rollback queries.

The workload re-queries many past states of one rollback relation (the
"audit" access pattern).  Because states are immutable values, indexes
built per state are reusable across queries via the :class:`IndexPool`;
the ablation measures scan vs cold-index vs pooled-index selection.
"""

from __future__ import annotations

import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback
from repro.core.sentences import run
from repro.snapshot.indexes import IndexPool, select_eq
from repro.snapshot.operators import select
from repro.snapshot.predicates import Comparison, attr, lit
from repro.workloads import UpdateStream, command_history

HISTORY = 30
CARDINALITY = 600
QUERIES_PER_STATE = 20


def build_database():
    stream = UpdateStream(
        HISTORY, cardinality=CARDINALITY, churn=0.05, seed=44
    )
    return run(command_history(stream, "r"))


def run_scans(database) -> float:
    start = time.perf_counter()
    for txn in range(2, HISTORY + 2, 3):
        state = Rollback("r", txn).evaluate(database)
        for key in range(QUERIES_PER_STATE):
            select(state, Comparison(attr("key"), "=", lit(key)))
    return time.perf_counter() - start


def run_cold_indexes(database) -> float:
    start = time.perf_counter()
    for txn in range(2, HISTORY + 2, 3):
        state = Rollback("r", txn).evaluate(database)
        for key in range(QUERIES_PER_STATE):
            select_eq(state, "key", key)  # rebuilds per query
    return time.perf_counter() - start


def run_pooled_indexes(database) -> float:
    pool = IndexPool()
    start = time.perf_counter()
    for txn in range(2, HISTORY + 2, 3):
        state = Rollback("r", txn).evaluate(database)
        for key in range(QUERIES_PER_STATE):
            select_eq(state, "key", key, pool=pool)
    return time.perf_counter() - start


def verify_equal_results(database) -> int:
    pool = IndexPool()
    checked = 0
    for txn in range(2, HISTORY + 2, 5):
        state = Rollback("r", txn).evaluate(database)
        for key in range(0, 40, 7):
            scan = select(
                state, Comparison(attr("key"), "=", lit(key))
            )
            indexed = select_eq(state, "key", key, pool=pool)
            assert scan == indexed
            checked += 1
    return checked


def report() -> str:
    database = build_database()
    lines = ["A4 — indexed vs scan selection over rollback states"]
    checked = verify_equal_results(database)
    lines.append(
        f"  correctness: {checked} indexed selections equal their σ "
        "scans"
    )
    scan_s = run_scans(database)
    cold_s = run_cold_indexes(database)
    pooled_s = run_pooled_indexes(database)
    total_queries = len(range(2, HISTORY + 2, 3)) * QUERIES_PER_STATE
    lines.append(
        f"  {total_queries} point queries over "
        f"{CARDINALITY}-tuple states:"
    )
    lines.append(f"    σ scan          {scan_s * 1e3:8.1f} ms")
    lines.append(f"    index per query {cold_s * 1e3:8.1f} ms")
    lines.append(
        f"    pooled indexes  {pooled_s * 1e3:8.1f} ms "
        f"({scan_s / pooled_s:.1f}x vs scan)"
    )
    return "\n".join(lines)


def bench_scan_select(benchmark):
    database = build_database()
    state = Rollback("r", 10).evaluate(database)
    predicate = Comparison(attr("key"), "=", lit(5))
    benchmark(select, state, predicate)


def bench_pooled_index_select(benchmark):
    database = build_database()
    state = Rollback("r", 10).evaluate(database)
    pool = IndexPool()
    select_eq(state, "key", 5, pool=pool)  # warm the pool

    benchmark(select_eq, state, "key", 5, pool=pool)


if __name__ == "__main__":
    print(report())
