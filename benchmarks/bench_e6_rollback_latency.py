"""E6 — rollback latency ρ(R, k) vs rollback depth, per backend.

Expected shape: full-copy is flat (binary search + pointer); forward
deltas degrade as the probe moves *later* (longer replay from the base);
reverse deltas degrade as the probe moves *earlier*; checkpoints bound
the replay at the checkpoint interval; tuple timestamping is flat but
pays a full scan everywhere.
"""

from __future__ import annotations

import time

from repro.storage import (
    CheckpointDeltaBackend,
    DeltaBackend,
    FullCopyBackend,
    ReverseDeltaBackend,
    TupleTimestampBackend,
)
from repro.workloads import churn_stream, populate_backends

HISTORY = 300
CARDINALITY = 100
CHURN = 0.1


def backend_set():
    return [
        FullCopyBackend(),
        DeltaBackend(),
        ReverseDeltaBackend(),
        CheckpointDeltaBackend(16),
        TupleTimestampBackend(),
    ]


def prepared_backends():
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=21
    )
    backends = backend_set()
    populate_backends(backends, states)
    return backends


def latency_probe(backend, txn, repeat=15) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        backend.state_at("r", txn)
    return (time.perf_counter() - start) / repeat


def latency_table(depth_fractions=(0.02, 0.25, 0.5, 0.75, 1.0)):
    """Measured rows: (backend name, probe txn, seconds)."""
    backends = prepared_backends()
    rows = []
    for backend in backends:
        for fraction in depth_fractions:
            # fraction 1.0 = newest state; fraction ~0 = oldest state
            txn = max(2, int(fraction * HISTORY))
            rows.append((backend.name, txn, latency_probe(backend, txn)))
    return rows


def report() -> str:
    lines = [
        f"E6 — rollback latency vs probe depth "
        f"(history {HISTORY}, churn {CHURN})"
    ]
    rows = latency_table()
    by_backend: dict[str, list[tuple[int, float]]] = {}
    for name, txn, seconds in rows:
        by_backend.setdefault(name, []).append((txn, seconds))
    probes = sorted({txn for _, txn, _ in rows})
    lines.append(
        f"  {'backend':18s} "
        + " ".join(f"txn {txn:>4d}" for txn in probes)
    )
    for name, samples in by_backend.items():
        cells = {txn: seconds for txn, seconds in samples}
        lines.append(
            f"  {name:18s} "
            + " ".join(
                f"{cells[txn] * 1e6:7.0f}µ" for txn in probes
            )
        )
    lines.append(
        "  shape: forward-delta rises with txn; reverse-delta falls "
        "with txn; full-copy and checkpoint stay flat(ish)"
    )
    return "\n".join(lines)


# -- pytest-benchmark entry points -----------------------------------------


def _bench_backend(benchmark, backend_factory, txn):
    states = churn_stream(
        HISTORY, cardinality=CARDINALITY, churn=CHURN, seed=21
    )
    backend = backend_factory()
    populate_backends([backend], states)
    result = benchmark(backend.state_at, "r", txn)
    assert result is not None


def bench_full_copy_deep_rollback(benchmark):
    _bench_backend(benchmark, FullCopyBackend, 5)


def bench_forward_delta_deep_rollback(benchmark):
    # deep in delta terms = far from the base = recent txn
    _bench_backend(benchmark, DeltaBackend, HISTORY)


def bench_reverse_delta_deep_rollback(benchmark):
    _bench_backend(benchmark, ReverseDeltaBackend, 5)


def bench_checkpoint_deep_rollback(benchmark):
    _bench_backend(benchmark, lambda: CheckpointDeltaBackend(16), 5)


def bench_tuple_timestamp_rollback(benchmark):
    _bench_backend(benchmark, TupleTimestampBackend, HISTORY // 2)


if __name__ == "__main__":
    from benchmarks.metrics_io import capture_metrics

    with capture_metrics("bench_e6_rollback_latency"):
        print(report())
