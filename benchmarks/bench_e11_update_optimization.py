"""E11 — update optimization (the paper's Section 1 benefit).

"Update optimizations analogous to the retrieval optimizations ... can
now be investigated in a rigorous fashion."  The measured case is the
delete rewrite ``ρ − σ_F(ρ) → σ_{¬F}(ρ)`` over Quel-translated delete
statements: the optimized command evaluates one pass instead of two
evaluations plus a set difference.  Correctness: both command streams
build *identical* databases.
"""

from __future__ import annotations

import time

from repro.core.commands import DefineRelation, ModifyState
from repro.core.expressions import Const, Rollback, Union
from repro.core.sentences import run
from repro.optimizer import optimize_update
from repro.quel import QuelTranslator, parse_statement
from repro.snapshot.attributes import INTEGER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

KV = Schema([Attribute("k", INTEGER), Attribute("v", INTEGER)])
CATALOG = {"r": KV}


def build_commands(cardinality: int, deletes: int):
    """Seed the relation, then issue `deletes` selective deletions."""
    translator = QuelTranslator({"r": KV})
    base = SnapshotState(
        KV, [[i, i % 50] for i in range(cardinality)]
    )
    commands = [
        DefineRelation("r", "rollback"),
        ModifyState("r", Const(base)),
    ]
    for i in range(deletes):
        commands.append(
            translator.translate(
                parse_statement(f"delete from r where v = {i % 50}")
            )
        )
        # re-add some tuples so later deletes have work to do
        refill = SnapshotState(
            KV, [[cardinality + i * 7 + j, (i + j) % 50]
                 for j in range(5)]
        )
        commands.append(
            ModifyState("r", Union(Rollback("r"), Const(refill)))
        )
    return commands


def verify_identical(cardinality: int = 200, deletes: int = 10) -> bool:
    commands = build_commands(cardinality, deletes)
    plain = run(commands)
    optimized = run(
        [optimize_update(c, CATALOG) for c in commands]
    )
    assert plain == optimized
    return True


def _time(callable_, repeat=3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def speedup_table(cardinalities=(200, 800, 2000), deletes=15):
    """Measured rows for the *cheap source* case (delete from ρ leaf):
    (cardinality, naive s, optimized s, speedup)."""
    rows = []
    for cardinality in cardinalities:
        commands = build_commands(cardinality, deletes)
        optimized_commands = [
            optimize_update(c, CATALOG) for c in commands
        ]
        naive_seconds = _time(lambda: run(commands))
        optimized_seconds = _time(lambda: run(optimized_commands))
        rows.append(
            (
                cardinality,
                naive_seconds,
                optimized_seconds,
                naive_seconds / optimized_seconds,
            )
        )
    return rows


def expensive_source_commands(cardinality: int, deletes: int):
    """Deletes whose source is an *expensive* expression: a union of two
    rollback relations with a selection.  The naive form evaluates that
    source twice; the rewrite evaluates it once."""
    from repro.core.expressions import Difference, Select
    from repro.snapshot.predicates import Comparison, attr, lit

    half = cardinality // 2
    s1 = SnapshotState(KV, [[i, i % 50] for i in range(half)])
    s2 = SnapshotState(
        KV, [[i + half, i % 50] for i in range(half)]
    )
    commands = [
        DefineRelation("a", "rollback"),
        ModifyState("a", Const(s1)),
        DefineRelation("b", "rollback"),
        ModifyState("b", Const(s2)),
        DefineRelation("view", "rollback"),
        ModifyState("view", Union(Rollback("a"), Rollback("b"))),
    ]
    for i in range(deletes):
        source = Select(
            Union(Rollback("a"), Rollback("b")),
            Comparison(attr("v"), ">=", lit(0)),
        )
        doomed = Select(
            source, Comparison(attr("v"), "=", lit(i % 50))
        )
        commands.append(
            ModifyState("view", Difference(source, doomed))
        )
    return commands


def _memoized(commands):
    """The same commands with CSE evaluation enabled on every
    modify_state."""
    out = []
    for command in commands:
        if isinstance(command, ModifyState):
            out.append(
                ModifyState(
                    command.identifier,
                    command.expression,
                    strict=command.strict,
                    memoize=True,
                )
            )
        else:
            out.append(command)
    return out


def expensive_source_table(cardinalities=(400, 1200, 2400), deletes=10):
    catalog = {"a": KV, "b": KV, "view": KV}
    rows = []
    for cardinality in cardinalities:
        commands = expensive_source_commands(cardinality, deletes)
        optimized = [optimize_update(c, catalog) for c in commands]
        memoized = _memoized(commands)
        assert run(commands) == run(optimized) == run(memoized)
        naive_seconds = _time(lambda: run(commands))
        optimized_seconds = _time(lambda: run(optimized))
        memoized_seconds = _time(lambda: run(memoized))
        rows.append(
            (
                cardinality,
                naive_seconds,
                optimized_seconds,
                memoized_seconds,
            )
        )
    return rows


def report() -> str:
    lines = ["E11 — update optimization (delete rewrite)"]
    verify_identical()
    lines.append(
        "  correctness: naive and optimized command streams build "
        "identical databases"
    )
    lines.append("  cheap source (delete from a ρ leaf):")
    lines.append(
        f"  {'|R|':>6s} {'naive':>9s} {'optimized':>10s} {'speedup':>8s}"
    )
    for cardinality, naive_s, opt_s, speedup in speedup_table():
        lines.append(
            f"  {cardinality:6d} {naive_s * 1e3:6.1f} ms "
            f"{opt_s * 1e3:7.1f} ms {speedup:7.2f}x"
        )
    lines.append(
        "  expensive source (delete from a selected union view — the "
        "naive form evaluates it twice):"
    )
    lines.append(
        f"  {'|R|':>6s} {'naive':>9s} {'rewrite':>9s} {'CSE eval':>9s}"
    )
    for cardinality, naive_s, opt_s, memo_s in expensive_source_table():
        lines.append(
            f"  {cardinality:6d} {naive_s * 1e3:6.1f} ms "
            f"{opt_s * 1e3:6.1f} ms {memo_s * 1e3:6.1f} ms"
        )
    lines.append(
        "  shape: with compiled predicates and C-level set difference, "
        "the delete rewrite is ~neutral; common-subexpression "
        "evaluation (memoize=True) attacks the duplicated source "
        "directly — update optimization is investigable, exactly as "
        "the paper promises"
    )
    return "\n".join(lines)


def bench_naive_delete_stream(benchmark):
    commands = build_commands(500, 10)
    benchmark(run, commands)


def bench_optimized_delete_stream(benchmark):
    commands = [
        optimize_update(c, CATALOG) for c in build_commands(500, 10)
    ]
    benchmark(run, commands)


if __name__ == "__main__":
    print(report())
