"""Failover: promoting a replica to a standalone primary.

Promotion is deliberately small because the invariants were maintained
all along: a replica's own WAL *is* the primary's history up to its
applied LSN (the LSN spaces coincide by construction, and re-snapshots
rebase exactly like crash recovery does when a checkpoint outlives the
log).  Detaching therefore needs no log surgery — the replica's
:class:`~repro.durability.durable.DurableDatabase` simply stops being
fed shipped records and starts accepting commands of its own, with the
next LSN being ``applied_lsn + 1``.  No LSN is ever reused, so a
surviving old primary and the promoted one can be mechanically compared
record by record up to the promotion point.
"""

from __future__ import annotations

from repro.errors import DivergenceError, ReplicationError
from repro.durability.durable import DurableDatabase
from repro.obsv import hooks as _hooks

__all__ = ["promote"]


def promote(replica, *, checkpoint: bool = True) -> DurableDatabase:
    """Turn ``replica`` into a standalone primary and return its
    (now authoritative) :class:`DurableDatabase`.

    The replica must not have diverged — promoting a diverged replay
    would fork history.  After promotion the replica object refuses
    further stream applies; its read methods keep working, now serving
    the promoted primary directly.  With ``checkpoint=True`` (the
    default) a checkpoint is written at the promotion LSN, so the new
    primary's identity survives even an immediate crash under a lazy
    fsync policy.

    Promotion is atomic with respect to the checkpoint: the checkpoint
    is written *before* the replica detaches, so a failing checkpoint
    (a dying store, an injected fault) leaves the replica attached and
    still following — the caller sees the error, retries or gives up,
    and no half-promoted orphan that refuses both applies and commands
    is ever created.
    """
    if replica.diverged:
        raise DivergenceError(
            "refusing to promote a diverged replica: its history "
            "contradicts the primary's"
        )
    if replica.promoted:
        raise ReplicationError("replica is already promoted")
    if checkpoint:
        # raises -> the replica is still a follower, nothing changed
        replica.durable.checkpoint()
    durable = replica._detach()
    observer = _hooks.repl_observer()
    if observer is not None:
        observer.promoted()
    return durable
