"""WAL-shipping replication for the versioned database.

The paper models a database as the cumulative result of a command
sentence (Section 3.5); the durability layer already persists that
sentence as a CRC-framed WAL.  This package ships it: a primary
publishes its log through a :class:`~repro.replication.stream.PrimaryStream`,
and any number of :class:`~repro.replication.replica.Replica` objects
replay it into databases of their own — with retry/backoff
(:class:`~repro.replication.retry.RetryPolicy`), gap and divergence
detection, checkpoint re-snapshotting, bounded-staleness reads, and
:func:`~repro.replication.promote.promote` for failover.
"""

from repro.replication.promote import promote
from repro.replication.replica import Replica
from repro.replication.retry import RetryPolicy
from repro.replication.stream import (
    DEFAULT_BATCH_RECORDS,
    FaultyStream,
    PrimaryStream,
    ReplicationStream,
)

__all__ = [
    "DEFAULT_BATCH_RECORDS",
    "FaultyStream",
    "PrimaryStream",
    "Replica",
    "ReplicationStream",
    "RetryPolicy",
    "promote",
]
