"""Fault-tolerant read replicas over the shipped command log.

A :class:`Replica` consumes a :class:`~repro.replication.stream.ReplicationStream`
into its *own* :class:`~repro.durability.durable.DurableDatabase` (and,
optionally, its own :class:`~repro.storage.versioned_db.VersionedDatabase`
mirror): every shipped record is decoded with the command codec and
re-executed through :func:`repro.core.commands.execute`, so the replica
is the primary's equal by the paper's own definition of a database —
the cumulative result of the same command sentence.

Robustness is the design center:

* **Retry/backoff** — every fetch/apply round runs under a
  :class:`~repro.replication.retry.RetryPolicy`; transient stream
  errors, dropped batches and in-delivery reorders surface as
  :class:`~repro.errors.ReplicationError`/:class:`~repro.errors.StreamGapError`
  and are retried with capped exponential backoff and jitter until the
  budget or deadline runs out.
* **Gap detection** — a record that is not exactly ``applied_lsn + 1``
  never executes.  Records at or below ``applied_lsn`` are duplicate
  deliveries and are skipped idempotently; records further ahead raise
  a gap.  An *authoritative* gap (``compacted=True`` — the primary no
  longer retains the tail) triggers a re-snapshot from the primary's
  newest checkpoint; a delivery gap is simply re-fetched.
* **Divergence detection** — after each applied record the replica's
  transaction number must equal the one the record committed with on
  the primary.  A mismatch marks the replica *condemned*
  (:class:`~repro.errors.DivergenceError`): it refuses further applies
  and reads until rebuilt, because a diverged replay can never rejoin
  the primary's history.
* **Bounded staleness** — with ``max_lag`` configured, reads check the
  primary's published tail first and either reject
  (:class:`~repro.errors.StaleReadError`) or knowingly serve stale,
  per ``on_stale``.
* **Promotion** — :meth:`Replica.promote` turns the replica into a
  standalone primary anchored at its last applied LSN; its WAL is
  already rebased exactly as crash recovery rebases a log that a
  checkpoint outlived, so new commands extend the LSN space with no
  reuse.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.errors import (
    DivergenceError,
    ReplicationError,
    StaleReadError,
    StorageError,
    StreamGapError,
)
from repro.core.database import Database
from repro.core.expressions import Expression
from repro.core.txn import TransactionNumber
from repro.durability.checkpoint import write_checkpoint
from repro.durability.codec import decode_record
from repro.durability.durable import DurableDatabase
from repro.durability.faults import MemoryStore
from repro.durability.files import FileStore
from repro.durability.wal import FsyncPolicy
from repro.obsv import hooks as _hooks
from repro.replication.retry import RetryPolicy
from repro.replication.stream import (
    DEFAULT_BATCH_RECORDS,
    ReplicationStream,
)

__all__ = ["Replica"]


class Replica:
    """A read replica applying a primary's shipped WAL.

    ``store`` is the replica's *own* durable store (a fresh in-memory
    one by default; pass a directory path via ``DurableDatabase``'s
    conventions for a disk-backed replica).  Re-opening a ``Replica``
    over a store that already holds a partial copy resumes from its
    durable prefix — a crashed replica simply re-fetches what it lost.
    """

    def __init__(
        self,
        stream: ReplicationStream,
        *,
        store: Optional[FileStore] = None,
        fsync: "Union[str, FsyncPolicy]" = "batch(64, 100)",
        checkpoint_every: int = 256,
        backend=None,
        retry: Optional[RetryPolicy] = None,
        max_lag: Optional[int] = None,
        on_stale: str = "reject",
        batch_records: int = DEFAULT_BATCH_RECORDS,
    ) -> None:
        if on_stale not in ("reject", "serve"):
            raise ReplicationError(
                f"on_stale must be 'reject' or 'serve', got {on_stale!r}"
            )
        if max_lag is not None and max_lag < 0:
            raise ReplicationError(
                f"max_lag must be ≥ 0 records, got {max_lag}"
            )
        if batch_records < 1:
            raise ReplicationError(
                f"batch_records must be ≥ 1, got {batch_records}"
            )
        self._stream = stream
        self._store = store if store is not None else MemoryStore()
        self._fsync = fsync
        self._checkpoint_every = checkpoint_every
        self._backend = backend
        self._retry = retry if retry is not None else RetryPolicy()
        self._max_lag = max_lag
        self._on_stale = on_stale
        self._batch_records = batch_records
        self._diverged = False
        self._promoted = False
        self._durable = DurableDatabase(
            self._store,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            backend=backend,
        )

    # -- introspection -----------------------------------------------------

    @property
    def database(self) -> Database:
        """The replica's current semantic database value."""
        return self._durable.database

    @property
    def durable(self) -> DurableDatabase:
        """The replica's own durable database."""
        return self._durable

    @property
    def stream(self) -> ReplicationStream:
        return self._stream

    @property
    def applied_lsn(self) -> int:
        """The newest primary LSN this replica has applied.  By
        construction it equals the replica's own WAL tail — the two LSN
        spaces are the same sequence of commands."""
        return self._durable.wal.last_lsn

    @property
    def transaction_number(self) -> TransactionNumber:
        return self._durable.transaction_number

    @property
    def diverged(self) -> bool:
        """True once replay has been caught contradicting the primary;
        a condemned replica refuses applies and reads."""
        return self._diverged

    @property
    def promoted(self) -> bool:
        """True once :meth:`promote` has detached this replica."""
        return self._promoted

    def lag(self) -> int:
        """How many records behind the primary's published tail this
        replica is (0 when caught up or ahead of a rebased primary)."""
        lag = max(0, self._stream.last_lsn() - self.applied_lsn)
        observer = _hooks.repl_observer()
        if observer is not None:
            observer.lag(lag)
        return lag

    def caught_up(self) -> bool:
        return self.lag() == 0

    # -- the apply loop ----------------------------------------------------

    def poll(self) -> int:
        """One guarded fetch+apply round under the retry policy;
        returns the number of records applied (0 when caught up)."""
        self._check_live()
        target = self._stream.last_lsn()
        if self.applied_lsn >= target:
            return 0
        return self._retry.run(
            lambda: self._sync_round(target),
            no_retry_on=(DivergenceError,),
            describe="replica apply round",
        )

    def catch_up(self) -> int:
        """Apply rounds until the replica reaches the primary's
        published tail; returns the total records applied.  Each round
        runs under the retry policy, so a flaky stream costs backoff,
        not correctness; exhaustion raises
        :class:`~repro.errors.RetryExhaustedError`."""
        self._check_live()
        start = time.perf_counter()
        total = 0
        while True:
            target = self._stream.last_lsn()
            if self.applied_lsn >= target:
                break
            total += self._retry.run(
                lambda: self._sync_round(target),
                no_retry_on=(DivergenceError,),
                describe="replica catch-up round",
            )
        observer = _hooks.repl_observer()
        if observer is not None:
            observer.caught_up(time.perf_counter() - start)
        return total

    def _sync_round(self, target: int) -> int:
        """Fetch once and apply what arrived.  Raises
        :class:`ReplicationError` on zero progress while behind (a
        dropped delivery — the retry policy turns it into backoff), and
        handles an authoritative gap by re-snapshotting."""
        try:
            batch = self._stream.fetch(
                self.applied_lsn, self._batch_records
            )
        except StreamGapError as gap:
            observer = _hooks.repl_observer()
            if observer is not None:
                observer.gap()
            if gap.compacted:
                self._resnapshot()
                return 0
            raise
        applied = self._apply_batch(batch)
        if applied == 0 and self.applied_lsn < target:
            raise ReplicationError(
                "no progress: delivery was empty or all-duplicate while "
                f"{target - self.applied_lsn} record(s) behind"
            )
        return applied

    def _apply_batch(self, batch: list[tuple[int, bytes]]) -> int:
        observer = _hooks.repl_observer()
        start = time.perf_counter()
        applied = 0
        try:
            for lsn, payload in batch:
                last = self.applied_lsn
                if lsn <= last:
                    # duplicate delivery: the record is already part of
                    # the replica's history — skipping is idempotence
                    if observer is not None:
                        observer.duplicate()
                    continue
                if lsn != last + 1:
                    if observer is not None:
                        observer.gap()
                    raise StreamGapError(
                        f"delivery skipped LSNs {last + 1}..{lsn - 1}; "
                        "re-fetching",
                        expected=last + 1,
                        got=lsn,
                    )
                try:
                    command, txn = decode_record(payload)
                except StorageError as error:
                    raise ReplicationError(
                        f"undecodable shipped record at LSN {lsn}: "
                        f"{error}"
                    ) from error
                database = self._durable.execute(command)
                if database.transaction_number != txn:
                    self._diverged = True
                    if observer is not None:
                        observer.diverged()
                    raise DivergenceError(
                        f"replica diverged at LSN {lsn}: the record "
                        f"committed transaction {txn} on the primary "
                        f"but replay reached "
                        f"{database.transaction_number}"
                    )
                applied += 1
        finally:
            if observer is not None:
                observer.applied(applied, time.perf_counter() - start)
        return applied

    # -- re-snapshotting ---------------------------------------------------

    def _resnapshot(self) -> None:
        """Rebuild from the primary's newest checkpoint — the escape
        hatch when the tail this replica still needs has been compacted
        away.

        The checkpoint is written into the replica's own store and the
        stale WAL segments dropped; re-opening then recovers from it
        and *rebases* the replica's WAL to the checkpoint LSN (the
        checkpoint-outlived-the-log path recovery already handles), so
        the next applied record lands at exactly the right LSN.
        """
        lsn, database = self._stream.snapshot()
        backend = None
        if self._durable.versioned is not None:
            backend = self._durable.versioned.backend
        self._durable.close()
        for name in self._store.list():
            self._store.delete(name)
        write_checkpoint(self._store, database, lsn)
        self._durable = DurableDatabase(
            self._store,
            fsync=self._fsync,
            checkpoint_every=self._checkpoint_every,
            backend=backend if backend is not None else self._backend,
        )
        observer = _hooks.repl_observer()
        if observer is not None:
            observer.resnapshotted()

    def resync(
        self, stream: Optional[ReplicationStream] = None
    ) -> None:
        """Rebuild a *condemned* (diverged) replica from the primary's
        newest checkpoint and put it back in service — the health
        supervisor's quarantine-and-repair path.  Divergence means the
        replica's replayed history contradicts the primary's, so no
        suffix replay can ever rejoin it; the only honest repair is the
        same full re-snapshot an authoritative gap triggers.  Pass
        ``stream`` to re-home onto a replacement stream in the same
        step: a replica condemned *before* a failover still points at
        the dead primary's stream (``refollow`` refuses diverged
        replicas), so its repair must snapshot from the promoted
        successor instead.  Promoted replicas are refused: they *are*
        a primary now."""
        if self._promoted:
            raise ReplicationError(
                "cannot resync a promoted replica; it no longer "
                "follows the stream"
            )
        if stream is not None:
            self._stream = stream
        self._resnapshot()
        self._diverged = False

    # -- read path ---------------------------------------------------------

    def evaluate(self, expression: Expression):
        """Evaluate a side-effect-free expression against the replica
        (``ρ(R, N)`` answers for any N ≤ the applied transaction number
        exactly as the primary would), enforcing the staleness bound."""
        self._check_readable()
        return self._durable.evaluate(expression)

    def state_at(self, identifier: str, txn: TransactionNumber):
        """``FINDSTATE`` against the replica, staleness-guarded."""
        self._check_readable()
        return self._durable.state_at(identifier, txn)

    # -- failover ----------------------------------------------------------

    def promote(self, *, checkpoint: bool = True) -> DurableDatabase:
        """Promote to a standalone primary; see
        :func:`repro.replication.promote.promote`."""
        from repro.replication.promote import promote as _promote

        return _promote(self, checkpoint=checkpoint)

    def _detach(self) -> DurableDatabase:
        """Stop following the stream (promotion internals)."""
        self._promoted = True
        return self._durable

    def refollow(self, stream: ReplicationStream) -> None:
        """Point this replica at a replacement stream publishing the
        *same* LSN space — the post-failover re-homing step.  A promoted
        primary continues its predecessor's LSN sequence (no LSN is ever
        reused), so a sibling replica keeps its durable prefix and
        simply resumes fetching from the new stream; gap and divergence
        detection guard the seam exactly as they guard any delivery."""
        if self._promoted:
            raise ReplicationError(
                "cannot refollow: this replica was promoted and no "
                "longer applies shipped records"
            )
        if self._diverged:
            raise DivergenceError(
                "cannot refollow: this replica has diverged and must "
                "be rebuilt"
            )
        self._stream = stream

    def close(self) -> None:
        self._durable.close()

    def kill(self) -> None:
        """Crash-test hook: drop handles without flushing (see
        :meth:`DurableDatabase.kill`)."""
        self._durable.kill()

    def __enter__(self) -> "Replica":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- guards ------------------------------------------------------------

    def _check_live(self) -> None:
        if self._promoted:
            raise ReplicationError(
                "this replica was promoted; it no longer follows the "
                "stream"
            )
        if self._diverged:
            raise DivergenceError(
                "this replica has diverged from the primary and must "
                "be rebuilt"
            )

    def _check_readable(self) -> None:
        if self._diverged:
            raise DivergenceError(
                "refusing to serve reads from a diverged replica"
            )
        if self._promoted or self._max_lag is None:
            return
        lag = self.lag()
        if lag > self._max_lag:
            observer = _hooks.repl_observer()
            if self._on_stale == "reject":
                if observer is not None:
                    observer.stale_read(served=False)
                raise StaleReadError(
                    f"replica is {lag} records behind the primary, "
                    f"over the configured max_lag={self._max_lag}",
                    lag=lag,
                    max_lag=self._max_lag,
                )
            if observer is not None:
                observer.stale_read(served=True)

    def __repr__(self) -> str:
        status = (
            "promoted"
            if self._promoted
            else "diverged"
            if self._diverged
            else "following"
        )
        return (
            f"Replica(applied_lsn={self.applied_lsn}, "
            f"txn={self.transaction_number}, {status})"
        )
