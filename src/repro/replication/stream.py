"""The shipping surface between a primary and its replicas.

The paper defines a database as the cumulative result of a command
sentence evaluated from the empty database (Section 3.5), which makes
the primary's command WAL a *complete* replication stream: shipping the
commands — not states — and replaying them through the one semantic
function :func:`repro.core.commands.execute` reproduces the primary
exactly.  A :class:`ReplicationStream` is the narrow interface replicas
pull that stream through:

* :meth:`~ReplicationStream.fetch` — the next batch of CRC-verified
  ``(lsn, payload)`` records after a given LSN (backed by
  :meth:`repro.durability.wal.WriteAheadLog.read_from`);
* :meth:`~ReplicationStream.snapshot` — the primary's newest checkpoint,
  for replicas whose tail has been compacted away;
* :meth:`~ReplicationStream.first_lsn` / ``last_lsn`` — the retained
  range, which is how a replica distinguishes "nothing new yet" from
  "I have fallen off the log".

:class:`FaultyStream` decorates any stream with the scripted delivery
faults of a :class:`~repro.durability.faults.FaultPlan` — transient
fetch errors plus dropped/duplicated/reordered/truncated batches — so
the replica apply loop is chaos-tested end to end.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CheckpointError, ReplicationError
from repro.core.database import Database
from repro.durability.checkpoint import latest_checkpoint
from repro.durability.durable import DurableDatabase
from repro.durability.faults import FaultPlan
from repro.obsv import hooks as _hooks

__all__ = ["ReplicationStream", "PrimaryStream", "FaultyStream"]

#: Default records per fetch — small enough that a mangled delivery
#: loses little work, large enough to amortize the call overhead.
DEFAULT_BATCH_RECORDS = 256


class ReplicationStream:
    """What a replica needs from a primary, and nothing more."""

    def fetch(
        self, after_lsn: int, limit: int = DEFAULT_BATCH_RECORDS
    ) -> list[tuple[int, bytes]]:
        """Up to ``limit`` records with LSN > ``after_lsn``, in order.

        Raises :class:`~repro.errors.StreamGapError` with
        ``compacted=True`` when the records past ``after_lsn`` are no
        longer retained, and :class:`~repro.errors.ReplicationError`
        for transient transport failures.
        """
        raise NotImplementedError

    def snapshot(self) -> tuple[int, Database]:
        """The newest checkpoint ``(lsn, database)`` — guaranteed to
        cover every compacted record, so a replica restored from it can
        resume fetching at ``lsn + 1``."""
        raise NotImplementedError

    def first_lsn(self) -> int:
        """The oldest retained LSN (0 when the log holds no records)."""
        raise NotImplementedError

    def last_lsn(self) -> int:
        """The newest published LSN (what "caught up" means)."""
        raise NotImplementedError


class PrimaryStream(ReplicationStream):
    """A primary :class:`DurableDatabase` published as a stream.

    Fetches read the primary's own WAL through ``read_from`` — gap- and
    CRC-aware by construction.  Records are shipped as appended, not as
    fsynced: replication is asynchronous, and a replica may briefly know
    a suffix the primary's disk does not (the replica re-verifies
    against the stream after a primary restart via the usual gap
    machinery).
    """

    def __init__(self, primary: DurableDatabase) -> None:
        self._primary = primary

    @property
    def primary(self) -> DurableDatabase:
        return self._primary

    def fetch(
        self, after_lsn: int, limit: int = DEFAULT_BATCH_RECORDS
    ) -> list[tuple[int, bytes]]:
        batch = self._primary.wal.read_from(after_lsn + 1, limit=limit)
        observer = _hooks.repl_observer()
        if observer is not None:
            observer.fetched(len(batch))
        return batch

    def snapshot(self) -> tuple[int, Database]:
        """The newest valid checkpoint, writing one first if none exists
        (or only damaged ones survive) so a fresh replica can always
        bootstrap."""
        found = latest_checkpoint(self._primary.store)
        if found is None:
            self._primary.checkpoint()
            found = latest_checkpoint(self._primary.store)
            if found is None:  # pragma: no cover - store must be dying
                raise CheckpointError(
                    "primary cannot publish a snapshot: checkpoint "
                    "write did not survive validation"
                )
        return found

    def first_lsn(self) -> int:
        return self._primary.wal.first_lsn

    def last_lsn(self) -> int:
        return self._primary.wal.last_lsn


class FaultyStream(ReplicationStream):
    """A stream decorated with a :class:`FaultPlan`'s delivery faults.

    Fetches roll for a transient error first (raising
    :class:`ReplicationError`), then pass the clean batch through
    :meth:`FaultPlan.mangle_batch`.  Snapshot and range probes are
    passed through untouched: the chaos suite targets the *record*
    path, and a mangled snapshot would be detected by its CRC envelope
    anyway.
    """

    def __init__(
        self, inner: ReplicationStream, plan: Optional[FaultPlan] = None
    ) -> None:
        self._inner = inner
        self._plan = plan

    @property
    def inner(self) -> ReplicationStream:
        return self._inner

    def fetch(
        self, after_lsn: int, limit: int = DEFAULT_BATCH_RECORDS
    ) -> list[tuple[int, bytes]]:
        plan = self._plan
        if plan is not None and plan.stream_error_due():
            raise ReplicationError(
                "injected transient stream error (FaultPlan)"
            )
        batch = self._inner.fetch(after_lsn, limit)
        if plan is not None:
            batch = plan.mangle_batch(batch)
        return batch

    def snapshot(self) -> tuple[int, Database]:
        return self._inner.snapshot()

    def first_lsn(self) -> int:
        return self._inner.first_lsn()

    def last_lsn(self) -> int:
        return self._inner.last_lsn()
