"""Retry with deadline, capped exponential backoff and jitter.

Every loop in the replication layer that talks to a possibly-flaky
stream runs under a :class:`RetryPolicy`.  The policy is deliberately a
plain value — attempts, base/cap/multiplier, jitter fraction, optional
wall-clock deadline — with the two impure inputs (sleeping and reading
the clock) injected, so tests drive it deterministically and the chaos
suite replays schedules exactly.

The backoff for attempt *k* (0-based) is::

    delay = min(max_delay, base_delay * multiplier**k)
    delay *= 1 - jitter * rng.random()        # de-synchronize retriers

Jitter subtracts (never adds): the configured delay is an upper bound,
which keeps worst-case catch-up time analyzable while still spreading
simultaneous retriers apart.

When every attempt fails — or the deadline would be overrun before the
next one — :class:`~repro.errors.RetryExhaustedError` is raised with the
final underlying error chained as ``__cause__``.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.errors import ReplicationError, RetryExhaustedError
from repro.obsv import hooks as _hooks

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """How a replication operation retries: attempt budget, capped
    exponential backoff with subtractive jitter, optional deadline.

    ``sleep`` and ``clock`` default to the real ``time`` module; tests
    pass fakes.  The jitter RNG is seeded, so a policy value implies one
    exact delay sequence.
    """

    __slots__ = (
        "max_attempts",
        "base_delay",
        "max_delay",
        "multiplier",
        "jitter",
        "deadline",
        "_sleep",
        "_clock",
        "_rng",
    )

    def __init__(
        self,
        max_attempts: int = 8,
        base_delay: float = 0.01,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        deadline: Optional[float] = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ReplicationError(
                f"max_attempts must be ≥ 1, got {max_attempts}"
            )
        if base_delay < 0 or max_delay < 0 or base_delay > max_delay:
            raise ReplicationError(
                f"need 0 ≤ base_delay ≤ max_delay, got "
                f"base={base_delay}, max={max_delay}"
            )
        if multiplier < 1:
            raise ReplicationError(
                f"multiplier must be ≥ 1, got {multiplier}"
            )
        if not 0 <= jitter <= 1:
            raise ReplicationError(
                f"jitter must be a fraction in [0, 1], got {jitter}"
            )
        if deadline is not None and deadline <= 0:
            raise ReplicationError(
                f"deadline must be positive seconds, got {deadline}"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.deadline = deadline
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(seed)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt, no backoff — fail fast (test default)."""
        return cls(max_attempts=1, base_delay=0.0, max_delay=0.0)

    # -- the delay schedule ------------------------------------------------

    def delays(self) -> Iterator[float]:
        """The backoff delay *before* each retry (``max_attempts - 1``
        values; the first attempt is free)."""
        for attempt in range(self.max_attempts - 1):
            delay = min(
                self.max_delay,
                self.base_delay * self.multiplier ** attempt,
            )
            if self.jitter:
                delay *= 1.0 - self.jitter * self._rng.random()
            yield delay

    # -- driving an operation ----------------------------------------------

    def run(
        self,
        operation: Callable[[], object],
        *,
        retry_on: Tuple[Type[BaseException], ...] = (ReplicationError,),
        no_retry_on: Tuple[Type[BaseException], ...] = (),
        describe: str = "replication operation",
    ):
        """Call ``operation`` until it returns, retrying on ``retry_on``.

        Errors outside ``retry_on`` propagate immediately, as do errors
        matching ``no_retry_on`` even when they subclass a retryable
        type (a :class:`~repro.errors.DivergenceError` *is a*
        ``ReplicationError`` but must never be retried — callers exclude
        it explicitly).  Exhaustion raises :class:`RetryExhaustedError`
        carrying the attempt count and elapsed time, with the last
        error as ``__cause__``.
        """
        start = self._clock()
        last_error: Optional[BaseException] = None
        delays = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return operation()
            except retry_on as error:
                if no_retry_on and isinstance(error, no_retry_on):
                    raise
                last_error = error
                observer = _hooks.repl_observer()
                if observer is not None:
                    observer.transient_error()
                if attempt == self.max_attempts:
                    break
                delay = next(delays)
                if (
                    self.deadline is not None
                    and self._clock() - start + delay > self.deadline
                ):
                    break
                if observer is not None:
                    observer.retried(delay)
                if delay > 0:
                    self._sleep(delay)
        elapsed = self._clock() - start
        raise RetryExhaustedError(
            f"{describe} failed after {attempt} attempt(s) in "
            f"{elapsed:.3f}s: {last_error}",
            attempts=attempt,
            elapsed=elapsed,
        ) from last_error

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay:g}, "
            f"max_delay={self.max_delay:g}, "
            f"multiplier={self.multiplier:g}, jitter={self.jitter:g}, "
            f"deadline={self.deadline})"
        )
