"""The fixpoint rewriter.

Applies a rule set bottom-up over an expression tree until no rule fires,
with a generous pass bound as a safety net (the default rule set is
terminating: every rule strictly decreases a well-founded measure — the
sizes of predicates above operators and the heights of projections).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.expressions import (
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Select,
    Union,
)
from repro.optimizer.rules import DEFAULT_RULES, Rule
from repro.optimizer.schema_inference import Catalog

__all__ = ["Rewriter", "optimize"]

_MAX_PASSES = 100


class Rewriter:
    """Applies rules bottom-up to a fixpoint, recording a trace."""

    def __init__(
        self,
        rules: Sequence[Rule] = DEFAULT_RULES,
        catalog: Optional[Catalog] = None,
    ) -> None:
        self._rules = tuple(rules)
        self._catalog = catalog or {}
        #: (rule name, before repr, after repr) triples, for explainability.
        self.trace: list[tuple[str, str, str]] = []

    def rewrite(self, expression: Expression) -> Expression:
        """Rewrite to a fixpoint of the rule set."""
        self.trace = []
        current = expression
        for _ in range(_MAX_PASSES):
            rewritten = self._rewrite_once(current)
            if rewritten == current:
                return current
            current = rewritten
        return current

    def _rewrite_once(self, expression: Expression) -> Expression:
        """One bottom-up pass: rewrite children first, then try each rule
        at this node (first applicable rule wins)."""
        rebuilt = self._rebuild(expression)
        for rule in self._rules:
            result = rule.apply(rebuilt, self._catalog)
            if result is not None and result != rebuilt:
                self.trace.append((rule.name, repr(rebuilt), repr(result)))
                return result
        return rebuilt

    def _rebuild(self, expression: Expression) -> Expression:
        """Rewrite the children, preserving this node."""
        if isinstance(expression, Union):
            return Union(
                self._rewrite_once(expression.left),
                self._rewrite_once(expression.right),
            )
        if isinstance(expression, Difference):
            return Difference(
                self._rewrite_once(expression.left),
                self._rewrite_once(expression.right),
            )
        if isinstance(expression, Product):
            return Product(
                self._rewrite_once(expression.left),
                self._rewrite_once(expression.right),
            )
        if isinstance(expression, Project):
            return Project(
                self._rewrite_once(expression.operand), expression.names
            )
        if isinstance(expression, Select):
            return Select(
                self._rewrite_once(expression.operand),
                expression.predicate,
            )
        if isinstance(expression, Rename):
            return Rename(
                self._rewrite_once(expression.operand), expression.mapping
            )
        if isinstance(expression, Derive):
            return Derive(
                self._rewrite_once(expression.operand),
                expression.predicate,
                expression.expression,
            )
        return expression


def optimize(
    expression: Expression,
    catalog: Optional[Catalog] = None,
    rules: Sequence[Rule] = DEFAULT_RULES,
) -> Expression:
    """Rewrite ``expression`` with the given rules to a fixpoint."""
    return Rewriter(rules, catalog).rewrite(expression)
