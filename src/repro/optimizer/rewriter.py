"""The fixpoint rewriter and its cost-guided driver.

:class:`Rewriter` applies a rule set bottom-up over an expression tree
until no rule fires, with a generous pass bound as a safety net (the
default rule set is terminating: every rule strictly decreases a
well-founded measure — the sizes of predicates above operators and the
heights of projections).

:class:`CostGuidedRewriter` wraps that machinery in the paper's cost
argument: a rewrite is only *kept* when the statistics-driven
:func:`~repro.optimizer.cost.estimate_cost` of the **whole tree** drops.
Whole-tree comparison matters because several rules change estimates
above the rewrite site (splitting a conjunctive selection, say, lowers
the cardinality every ancestor sees), so a local comparison is unsound.
Rejected candidates are recorded in the trace — that record *is* the
EXPLAIN story the Session surfaces.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SchemaError
from repro.core.expressions import (
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Select,
    Union,
)
from repro.optimizer.cost import Stats, estimate_cost
from repro.optimizer.rules import (
    CombineSelects,
    DEFAULT_RULES,
    DeduplicateUnion,
    EXTENDED_RULES,
    Rule,
)
from repro.optimizer.schema_inference import Catalog

__all__ = ["CostGuidedRewriter", "Rewriter", "optimize", "optimize_with_cost"]

_MAX_PASSES = 100

#: Observability slot for the optimizer (``optimizer.*`` metrics),
#: installed by :func:`repro.obsv.hooks.install`; ``None`` while metrics
#: are disabled so the cost gate pays one load and an ``is None`` test.
_OBSERVER = None


class Rewriter:
    """Applies rules bottom-up to a fixpoint, recording a trace."""

    def __init__(
        self,
        rules: Sequence[Rule] = DEFAULT_RULES,
        catalog: Optional[Catalog] = None,
    ) -> None:
        self._rules = tuple(rules)
        self._catalog = catalog or {}
        #: (rule name, before repr, after repr) triples, for explainability.
        self.trace: list[tuple[str, str, str]] = []

    def rewrite(self, expression: Expression) -> Expression:
        """Rewrite to a fixpoint of the rule set."""
        self.trace = []
        current = expression
        for _ in range(_MAX_PASSES):
            rewritten = self._rewrite_once(current)
            if rewritten == current:
                return current
            current = rewritten
        return current

    def _rewrite_once(self, expression: Expression) -> Expression:
        """One bottom-up pass: rewrite children first, then try each rule
        at this node (first applicable rule wins)."""
        rebuilt = self._rebuild(expression)
        for rule in self._rules:
            result = rule.apply(rebuilt, self._catalog)
            if result is not None and result != rebuilt:
                self.trace.append((rule.name, repr(rebuilt), repr(result)))
                return result
        return rebuilt

    def _rebuild(self, expression: Expression) -> Expression:
        """Rewrite the children, preserving this node."""
        if isinstance(expression, Union):
            return Union(
                self._rewrite_once(expression.left),
                self._rewrite_once(expression.right),
            )
        if isinstance(expression, Difference):
            return Difference(
                self._rewrite_once(expression.left),
                self._rewrite_once(expression.right),
            )
        if isinstance(expression, Product):
            return Product(
                self._rewrite_once(expression.left),
                self._rewrite_once(expression.right),
            )
        if isinstance(expression, Project):
            return Project(
                self._rewrite_once(expression.operand), expression.names
            )
        if isinstance(expression, Select):
            return Select(
                self._rewrite_once(expression.operand),
                expression.predicate,
            )
        if isinstance(expression, Rename):
            return Rename(
                self._rewrite_once(expression.operand), expression.mapping
            )
        if isinstance(expression, Derive):
            return Derive(
                self._rewrite_once(expression.operand),
                expression.predicate,
                expression.expression,
            )
        return expression


def optimize(
    expression: Expression,
    catalog: Optional[Catalog] = None,
    rules: Sequence[Rule] = DEFAULT_RULES,
) -> Expression:
    """Rewrite ``expression`` with the given rules to a fixpoint."""
    return Rewriter(rules, catalog).rewrite(expression)


class CostGuidedRewriter:
    """A rewriter that keeps a rewrite only when estimated cost drops.

    Two phases, both gated on whole-tree
    :func:`~repro.optimizer.cost.estimate_cost` under the supplied
    statistics:

    1. **Fixpoint candidate** — run the plain :class:`Rewriter` over the
       (extended) rule set and accept the resulting plan as a block iff
       it prices strictly lower than the input.  This is where the
       enabling chains live (split a conjunction *so that* the halves
       push below a union): individually cost-raising steps are fine as
       long as the destination plan wins.
    2. **Greedy repair** — hill-climb with single-rule applications,
       including rules that are unsafe in a fixpoint set
       (``CombineSelects`` is the inverse of the split rule) but useful
       once, accepting only strict cost improvements.  Each candidate
       substitutes the rewritten subtree at *every* occurrence of the
       matched subtree — sound because equal expressions denote equal
       states — and is re-priced as a whole tree.

    Every considered rewrite lands in :attr:`trace` as
    ``(rule name, cost before, cost after, accepted)``; the Session's
    EXPLAIN renders it.  Statistics are advisory: every rule is a
    semantic identity, so stale stats cost performance, never
    correctness.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        catalog: Optional[Catalog] = None,
        stats: Optional[Stats] = None,
    ) -> None:
        self._rules = tuple(rules) if rules is not None else EXTENDED_RULES
        self._greedy_rules = self._rules + (
            CombineSelects(),
            DeduplicateUnion(),
        )
        self._catalog = catalog or {}
        self._stats = stats
        #: (rule name, cost before, cost after, accepted) per candidate.
        self.trace: list[tuple[str, float, float, bool]] = []
        self.baseline_cost = 0.0
        self.final_cost = 0.0

    def rewrite(self, expression: Expression) -> Expression:
        """Return the cheapest plan found; never costlier than the input."""
        observer = _OBSERVER
        self.trace = []
        best = expression
        best_cost = estimate_cost(expression, self._stats)
        self.baseline_cost = best_cost

        # Phase 1: the classical fixpoint plan, kept iff it prices lower.
        # An incomplete catalog (a ρ leaf the data dictionary cannot
        # type yet) aborts the fixpoint, not the query: schema-dependent
        # rules simply don't fire.
        try:
            candidate = Rewriter(self._rules, self._catalog).rewrite(
                expression
            )
        except SchemaError:
            candidate = expression
        if candidate != expression:
            cost = estimate_cost(candidate, self._stats)
            accepted = cost < best_cost
            self.trace.append(("fixpoint", best_cost, cost, accepted))
            if observer is not None:
                observer.rewrite(accepted)
            if accepted:
                best, best_cost = candidate, cost

        # Phase 2: greedy single-rule hill climbing (first improvement).
        for _ in range(_MAX_PASSES):
            step = self._improve_once(best, best_cost, observer)
            if step is None:
                break
            best, best_cost = step

        self.final_cost = best_cost
        if observer is not None:
            observer.optimized(self.baseline_cost, best_cost)
        return best

    def _improve_once(self, best, best_cost, observer):
        """Try every (node, rule) pair; commit the first cost drop."""
        for node in _postorder(best):
            for rule in self._greedy_rules:
                try:
                    rewritten = rule.apply(node, self._catalog)
                except SchemaError:
                    continue
                if rewritten is None or rewritten == node:
                    continue
                candidate = _substitute(best, node, rewritten)
                cost = estimate_cost(candidate, self._stats)
                accepted = cost < best_cost
                self.trace.append((rule.name, best_cost, cost, accepted))
                if observer is not None:
                    observer.rewrite(accepted)
                if accepted:
                    return candidate, cost
        return None


def optimize_with_cost(
    expression: Expression,
    catalog: Optional[Catalog] = None,
    stats: Optional[Stats] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> Expression:
    """Rewrite ``expression``, keeping only cost-reducing rewrites."""
    return CostGuidedRewriter(rules, catalog, stats).rewrite(expression)


def _postorder(expression: Expression) -> "list[Expression]":
    """Distinct subtrees, children before parents, iteratively."""
    order: list = []
    seen: set = set()
    stack: "list[tuple[Expression, bool]]" = [(expression, False)]
    while stack:
        node, children_done = stack.pop()
        if node in seen:
            continue
        children = node.children()
        if not children_done and children:
            stack.append((node, True))
            for child in children:
                if child not in seen:
                    stack.append((child, False))
            continue
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
    return order


def _substitute(
    root: Expression, target: Expression, replacement: Expression
) -> Expression:
    """Replace every occurrence of ``target`` in ``root`` (iteratively,
    sharing rebuilt subtrees, so deep chains neither recurse nor blow up
    on DAG-shaped trees)."""
    memo: "dict[Expression, Expression]" = {target: replacement}
    stack: "list[tuple[Expression, bool]]" = [(root, False)]
    while stack:
        node, children_done = stack.pop()
        if node in memo:
            continue
        children = node.children()
        if not children_done and children:
            stack.append((node, True))
            for child in children:
                if child not in memo:
                    stack.append((child, False))
            continue
        if node in memo:
            continue
        if not children:
            memo[node] = node
            continue
        new_children = tuple(memo[child] for child in children)
        if new_children == children:
            memo[node] = node
        else:
            memo[node] = _with_children(node, new_children)
    return memo[root]


def _with_children(
    node: Expression, children: "tuple[Expression, ...]"
) -> Expression:
    """A copy of ``node`` over new children."""
    if isinstance(node, Union):
        return Union(children[0], children[1])
    if isinstance(node, Difference):
        return Difference(children[0], children[1])
    if isinstance(node, Product):
        return Product(children[0], children[1])
    if isinstance(node, Project):
        return Project(children[0], node.names)
    if isinstance(node, Select):
        return Select(children[0], node.predicate)
    if isinstance(node, Rename):
        return Rename(children[0], node.mapping)
    if isinstance(node, Derive):
        return Derive(children[0], node.predicate, node.expression)
    return node
