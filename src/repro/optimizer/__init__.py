"""Algebraic optimization over the extended algebra.

The paper's claim C2 (Section 2): "we preserve all the properties of the
snapshot algebra (e.g., commutativity of select, distributivity of select
over join), permitting the full application of previously developed
algebraic optimizations."  This package makes that claim executable:

* :mod:`repro.optimizer.schema_inference` — static schema computation for
  expression trees (needed to decide rule applicability without
  evaluating);
* :mod:`repro.optimizer.rules` — the classical rewrite rules, each stated
  with the law it implements;
* :mod:`repro.optimizer.rewriter` — a fixpoint rewriter applying the rules
  bottom-up;
* :mod:`repro.optimizer.cost` — a simple cardinality-based cost model and
  plan explainer;
* :mod:`repro.optimizer.equivalence` — an evaluation-based equivalence
  checker used by the tests and benchmark E4 to verify every rewrite.

Because the rollback operator ``ρ`` is side-effect-free and opaque (a leaf
of the expression tree), every law holds verbatim with ``ρ`` sub-
expressions in place of base relations — which is exactly why the paper's
extension "did not compromise any of the useful properties of the snapshot
algebra".
"""

from repro.optimizer.schema_inference import infer_schema, Catalog
from repro.optimizer.rules import (
    Rule,
    SplitConjunctiveSelect,
    PushSelectBelowUnion,
    PushSelectBelowDifference,
    PushSelectBelowProduct,
    PushSelectBelowDerive,
    MergeProjects,
    PushProjectBelowUnion,
    PushProjectBelowSelect,
    PushProjectBelowProduct,
    EliminateIdentityProject,
    RewriteDeleteAsNegatedSelect,
    DeduplicateUnion,
    DEFAULT_RULES,
    EXTENDED_RULES,
    UPDATE_RULES,
)
from repro.optimizer.rewriter import (
    CostGuidedRewriter,
    Rewriter,
    optimize,
    optimize_with_cost,
)
from repro.optimizer.update_rewrites import ALL_UPDATE_RULES, optimize_update
from repro.optimizer.cost import (
    PlanAnalysis,
    analyze,
    estimate_cost,
    estimate_cardinality,
    explain,
)
from repro.optimizer.stats import Statistics, collect_statistics
from repro.optimizer.equivalence import expressions_equivalent

__all__ = [
    "infer_schema",
    "Catalog",
    "Rule",
    "SplitConjunctiveSelect",
    "PushSelectBelowUnion",
    "PushSelectBelowDifference",
    "PushSelectBelowProduct",
    "PushSelectBelowDerive",
    "MergeProjects",
    "PushProjectBelowUnion",
    "PushProjectBelowSelect",
    "PushProjectBelowProduct",
    "EliminateIdentityProject",
    "RewriteDeleteAsNegatedSelect",
    "DeduplicateUnion",
    "DEFAULT_RULES",
    "EXTENDED_RULES",
    "UPDATE_RULES",
    "ALL_UPDATE_RULES",
    "CostGuidedRewriter",
    "Rewriter",
    "optimize",
    "optimize_with_cost",
    "optimize_update",
    "PlanAnalysis",
    "analyze",
    "estimate_cost",
    "estimate_cardinality",
    "explain",
    "Statistics",
    "collect_statistics",
    "expressions_equivalent",
]
