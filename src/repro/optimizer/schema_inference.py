"""Static schema inference for expression trees.

Rewrite rules such as "push a selection below a product" are applicable
only when the predicate references attributes of one operand; deciding that
requires knowing each sub-expression's schema *without evaluating it*.  A
:class:`Catalog` supplies schemas for the ``ρ`` leaves (relation
identifiers); everything else is computed structurally.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import SchemaError
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
)
from repro.snapshot.schema import Schema

__all__ = ["Catalog", "infer_schema"]

Catalog = Mapping[str, Schema]


def infer_schema(
    expression: Expression, catalog: Optional[Catalog] = None
) -> Schema:
    """The schema the expression's result will have.

    ``catalog`` maps relation identifiers (the ``ρ`` leaves) to schemas.
    Raises :class:`SchemaError` when a leaf is unknown or an operator is
    mis-typed (mirroring the run-time checks, but statically).
    """
    catalog = catalog or {}
    if isinstance(expression, Const):
        return expression.state.schema
    if isinstance(expression, Rollback):
        schema = catalog.get(expression.identifier)
        if schema is None:
            raise SchemaError(
                f"catalog has no schema for relation "
                f"{expression.identifier!r}"
            )
        return schema
    if isinstance(expression, (Union, Difference)):
        left = infer_schema(expression.left, catalog)
        right = infer_schema(expression.right, catalog)
        left.require_compatible(right, type(expression).__name__.lower())
        return left
    if isinstance(expression, Product):
        left = infer_schema(expression.left, catalog)
        right = infer_schema(expression.right, catalog)
        return left.concat(right)
    if isinstance(expression, Project):
        inner = infer_schema(expression.operand, catalog)
        return inner.project(expression.names)
    if isinstance(expression, Select):
        return infer_schema(expression.operand, catalog)
    if isinstance(expression, Rename):
        inner = infer_schema(expression.operand, catalog)
        return inner.rename(expression.mapping)
    if isinstance(expression, Derive):
        return infer_schema(expression.operand, catalog)
    raise SchemaError(
        f"cannot infer a schema for expression {expression!r}"
    )
